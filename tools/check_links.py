#!/usr/bin/env python
"""Internal link check for the docs suite.

Scans README.md and docs/*.md for markdown links and inline code
references to repo files, and fails when a target doesn't exist:

- relative markdown links (``[text](docs/tuning.md)``,
  ``[text](../BENCH_e12.json)``) must resolve to a file or directory,
  and ``#fragment`` anchors on internal links must match a heading in
  the target document;
- external links (``http://``, ``https://``, ``mailto:``) are *not*
  fetched — CI stays offline — but are counted in the summary.

Exit status: 0 when every internal link resolves, 1 otherwise.
Run it from anywhere: paths resolve relative to the repo root.

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) — tolerates titles: [text](target "title")
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def slugify(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {slugify(match) for match in HEADING_RE.findall(path.read_text())}


def check_file(path: Path) -> tuple[list[str], int, int]:
    """Returns (problems, internal_count, external_count) for one file."""
    problems: list[str] = []
    internal = external = 0
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            external += 1
            continue
        internal += 1
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return problems, internal, external


def main() -> int:
    files = doc_files()
    if not files:
        print("error: no documentation files found", file=sys.stderr)
        return 1
    all_problems: list[str] = []
    internal = external = 0
    for path in files:
        problems, n_int, n_ext = check_file(path)
        all_problems.extend(problems)
        internal += n_int
        external += n_ext
    for problem in all_problems:
        print(problem, file=sys.stderr)
    verdict = "FAIL" if all_problems else "ok"
    print(
        f"{verdict}: {len(files)} files, {internal} internal links checked, "
        f"{external} external links skipped, {len(all_problems)} broken"
    )
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main())

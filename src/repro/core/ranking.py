"""Threshold-free subspace ranking (extension beyond the paper).

HOS-Miner's answer depends on a global threshold ``T``. Practitioners
often want the dual, threshold-free question: *which subspaces make
this point look most outlying, period?* Raw OD cannot rank across
dimensionalities — it grows monotonically with every added dimension,
so the full space would always win. This module ranks by **normalised
OD**:

* ``"sqrt_dim"`` — ``OD(p, s) / sqrt(|s|)``, the natural scaling for
  the Euclidean metric (adding an i.i.d. dimension grows distances by
  ~sqrt((m+1)/m));
* ``"dim"`` — ``OD(p, s) / |s|``, the natural scaling for L1;
* ``"zscore"`` — standardise OD within each dimensionality level
  against the level's own distribution for this point, which makes no
  metric assumption at all.

Normalised OD is **not monotone**, so the lattice pruning of the main
engine does not apply; ranking evaluates every subspace (optionally up
to ``max_level``) and is meant for moderate ``d`` or as a post-hoc
analysis after a thresholded query (it reuses the evaluator's cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.od import ODEvaluator
from repro.core.subspace import Subspace, masks_at_level, popcount

__all__ = ["RankedSubspace", "top_n_outlying_subspaces"]

_NORMALISERS = ("sqrt_dim", "dim", "zscore", "none")


@dataclass(frozen=True, slots=True)
class RankedSubspace:
    """One entry of a normalised-OD ranking."""

    subspace: Subspace
    od: float
    score: float

    def __repr__(self) -> str:
        return (
            f"RankedSubspace({self.subspace.notation()}, od={self.od:.4g}, "
            f"score={self.score:.4g})"
        )


def top_n_outlying_subspaces(
    evaluator: ODEvaluator,
    n: int,
    normalize: str = "sqrt_dim",
    max_level: int | None = None,
) -> list[RankedSubspace]:
    """The *n* subspaces with the highest normalised OD for one point.

    Parameters
    ----------
    evaluator:
        OD oracle of the point (a query-warmed one makes this cheap).
    n:
        Ranking length.
    normalize:
        ``"sqrt_dim"`` (default), ``"dim"``, ``"zscore"`` or ``"none"``
        (raw OD — degenerates to top levels; provided for completeness).
    max_level:
        Optionally restrict the ranking to subspaces of at most this
        dimensionality (low-dimensional answers are the interpretable
        ones, and the cost drops combinatorially).

    Ties break by (level, dims) order, so rankings are deterministic.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if normalize not in _NORMALISERS:
        raise ConfigurationError(
            f"normalize must be one of {_NORMALISERS}, got {normalize!r}"
        )
    d = evaluator.backend.d
    top = d if max_level is None else max_level
    if not 1 <= top <= d:
        raise ConfigurationError(f"max_level must be in [1, {d}], got {max_level}")

    masks: list[int] = []
    ods: list[float] = []
    for m in range(1, top + 1):
        for mask in masks_at_level(d, m):
            masks.append(mask)
            ods.append(evaluator.od(mask))
    od_array = np.asarray(ods)
    levels = np.array([popcount(mask) for mask in masks])

    if normalize == "none":
        scores = od_array.copy()
    elif normalize == "sqrt_dim":
        scores = od_array / np.sqrt(levels)
    elif normalize == "dim":
        scores = od_array / levels
    else:  # zscore within each level
        scores = np.empty_like(od_array)
        for m in range(1, top + 1):
            members = levels == m
            values = od_array[members]
            spread = values.std()
            if spread == 0.0 or values.size < 2:
                scores[members] = 0.0
            else:
                scores[members] = (values - values.mean()) / spread

    # Deterministic order: score desc, then (level, mask) asc.
    order = sorted(
        range(len(masks)), key=lambda i: (-scores[i], levels[i], masks[i])
    )[:n]
    return [
        RankedSubspace(
            subspace=Subspace(masks[i], d),
            od=float(od_array[i]),
            score=float(scores[i]),
        )
        for i in order
    ]

"""The dynamic subspace search engine — Section 3.3 of the paper.

The engine walks the subspace lattice level-set by level-set. At every
step it computes ``TSF(m, p)`` for each level that still contains
undecided subspaces and expands the level with the highest expected
saving. Evaluating one subspace triggers, via the OD monotonicity
properties, either

* **upward pruning** (``OD >= T``): every superset is immediately known
  outlying and joins the answer set unevaluated, or
* **downward pruning** (``OD < T``): every subset is immediately known
  non-outlying.

Because both inferences are exact consequences of monotonicity the
search is *lossless*: its answer set equals exhaustive enumeration's
(property-tested in ``tests/test_search_equivalence.py``). The TSF
ordering only changes how *few* OD evaluations are needed.

Two re-selection granularities are supported. ``"level"`` (paper
behaviour) finishes the chosen level before recomputing TSF;
``"evaluation"`` re-selects after every single OD computation, a finer
variant used by the ablation experiment E10.

Adaptive priors (extension beyond the paper)
--------------------------------------------
The paper applies the *dataset-average* priors ``p_up(m)``/``p_down(m)``
to every query point. When the learning sample is dominated by inliers
(the common case for rare-outlier data), those averages say "downward
pruning is almost certain", the search runs top-down, and a genuinely
outlying query point — whose upward-closed answer set is huge — gets
evaluated nearly exhaustively because outlying evaluations high in the
lattice prune nothing new. The optional ``adaptive=True`` mode keeps the
learned priors as a Bayesian prior and shrinks them toward the evidence
the *current* query's search has already produced (per-level decided
fractions, plus a capped global fraction as weak evidence for untouched
levels). The update never changes the answer — pruning stays lossless —
only the expansion order. Experiment E10 quantifies the effect; it is
off by default for paper fidelity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generator

from repro.core.exceptions import ConfigurationError, SearchBudgetExceeded
from repro.core.lattice import SubspaceLattice
from repro.core.od import ODEvaluator
from repro.core.priors import PruningPriors
from repro.core.savings import TSFInputs, total_saving_factor
from repro.core.subspace import Subspace

__all__ = ["SearchStats", "SearchOutcome", "DynamicSubspaceSearch"]


@dataclass(slots=True)
class SearchStats:
    """Machine-independent cost profile of one subspace search."""

    od_evaluations: int = 0
    upward_pruned: int = 0
    downward_pruned: int = 0
    #: Order in which levels were selected for expansion.
    level_schedule: list[int] = field(default_factory=list)
    #: OD evaluations per level.
    evaluations_by_level: dict[int, int] = field(default_factory=dict)
    #: Near-threshold exact re-verifications (GEMM kernel honesty
    #: counter; always 0 under the exact kernel).
    reverified: int = 0
    #: Scatter-gather rounds through the persistent shard pool (batch
    #: aggregate; 0 outside ``shard="rows"`` multi-worker batches).
    shard_round_trips: int = 0
    #: Bytes that crossed coordinator↔shard pipes (masks, query rows and
    #: k-prefix replies — never data rows, so independent of ``n``).
    bytes_shipped: int = 0
    #: Dead or hung shard workers respawned onto their existing
    #: shared-memory segments during this batch (0 on a healthy pool).
    worker_respawns: int = 0
    #: Respawn-and-replay attempts (each replays an in-flight round).
    retries: int = 0
    #: Reply deadlines (``timeout_s``) that expired on hung workers.
    timeouts: int = 0
    #: Shard-rounds served in-process after a shard became
    #: irrecoverable (graceful degradation; answers unchanged).
    degraded_rounds: int = 0
    wall_time_s: float = 0.0

    @property
    def decided_without_evaluation(self) -> int:
        """Subspaces settled by pruning instead of kNN work."""
        return self.upward_pruned + self.downward_pruned

    def as_dict(self) -> dict[str, float]:
        return {
            "od_evaluations": self.od_evaluations,
            "upward_pruned": self.upward_pruned,
            "downward_pruned": self.downward_pruned,
            "reverified": self.reverified,
            "shard_round_trips": self.shard_round_trips,
            "bytes_shipped": self.bytes_shipped,
            "worker_respawns": self.worker_respawns,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degraded_rounds": self.degraded_rounds,
            "wall_time_s": self.wall_time_s,
        }


@dataclass(slots=True)
class SearchOutcome:
    """Everything a finished search knows.

    ``outlying_masks`` contains *all* outlying subspaces (evaluated and
    inferred); the refinement filter reduces them to the minimal
    antichain later. The final lattice is kept so the learning pass can
    read exact per-level outlying fractions.
    """

    d: int
    threshold: float
    outlying_masks: list[int]
    stats: SearchStats
    lattice: SubspaceLattice

    @property
    def total_subspaces(self) -> int:
        return (1 << self.d) - 1

    @property
    def evaluated_fraction(self) -> float:
        """Share of the lattice that needed an actual OD computation."""
        return self.stats.od_evaluations / self.total_subspaces

    def outlying_subspaces(self) -> list[Subspace]:
        """Outlying subspaces as wrapper objects, in (level, lex) order."""
        return sorted(Subspace(mask, self.d) for mask in self.outlying_masks)

    def is_outlier_anywhere(self) -> bool:
        """Paper Section 1: the point is an outlier iff the answer set is
        non-empty."""
        return bool(self.outlying_masks)


class DynamicSubspaceSearch:
    """TSF-ordered lattice search for one query point.

    Parameters
    ----------
    evaluator:
        Cached OD oracle for the query point.
    threshold:
        The global distance threshold ``T``.
    priors:
        Per-level pruning priors (uniform for learning samples, learned
        averages for query points).
    reselect:
        ``"level"`` (default, paper behaviour) or ``"evaluation"``.
    adaptive:
        Enable the adaptive-prior extension (see module docstring).
    adaptive_prior_weight:
        Pseudo-count weight of the learned prior in the adaptive blend.
    max_evaluations:
        Optional hard budget of OD evaluations; exceeding it raises
        :class:`~repro.core.exceptions.SearchBudgetExceeded`. A safety
        valve for interactive use at large ``d`` — the search is exact
        or it fails loudly, never silently approximate.
    """

    def __init__(
        self,
        evaluator: ODEvaluator,
        threshold: float,
        priors: PruningPriors,
        reselect: str = "level",
        adaptive: bool = False,
        adaptive_prior_weight: float = 8.0,
        max_evaluations: int | None = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
        if priors.d != evaluator.backend.d:
            raise ConfigurationError(
                f"priors are for d={priors.d} but the data has d={evaluator.backend.d}"
            )
        if reselect not in ("level", "evaluation"):
            raise ConfigurationError(
                f"reselect must be 'level' or 'evaluation', got {reselect!r}"
            )
        if adaptive_prior_weight <= 0:
            raise ConfigurationError(
                f"adaptive_prior_weight must be positive, got {adaptive_prior_weight}"
            )
        if max_evaluations is not None and max_evaluations < 1:
            raise ConfigurationError(
                f"max_evaluations must be >= 1, got {max_evaluations}"
            )
        self.evaluator = evaluator
        self.threshold = threshold
        self.priors = priors
        self.reselect = reselect
        self.adaptive = adaptive
        self.adaptive_prior_weight = adaptive_prior_weight
        self.max_evaluations = max_evaluations

    def run(self) -> SearchOutcome:
        """Execute the search to completion and return the outcome.

        Each step evaluates the whole selected batch of masks through
        :meth:`ODEvaluator.od_many` — one level-wide kernel call under
        the evaluator's kernel (a single GEMM for ``kernel="gemm"``) —
        then replays the per-mask pruning decisions in order. Same-level
        subspaces cannot prune one another, so batch evaluation decides
        exactly what per-mask evaluation would have decided; passing the
        threshold lets ``od_many`` re-verify near-threshold GEMM values
        with the exact kernel, keeping the answer set identical across
        kernels.
        """
        start = time.perf_counter()
        lattice = SubspaceLattice(self.evaluator.backend.d)
        stats = SearchStats()

        cursors: dict[int, int] = {}
        while lattice.has_unknown():
            level, masks = self._next_step(lattice, stats, cursors)
            eval_masks = masks
            if self.max_evaluations is not None:
                # Never compute more ODs than the budget can record: the
                # loop below raises at mask `remaining`, so values past
                # it would be pure wasted (and unbounded) kernel work.
                remaining = self.max_evaluations - stats.od_evaluations
                eval_masks = masks[: max(0, remaining)]
            values = self.evaluator.od_many(eval_masks, threshold=self.threshold)
            for mask in masks:
                # The guard keeps the loop robust if same-level pruning
                # ever becomes possible.
                if lattice.is_unknown(mask):
                    self._check_budget(lattice, stats)
                    self._record(mask, values[mask], level, lattice, stats)
        return self._finish(lattice, stats, start)

    def run_stepped(
        self,
    ) -> Generator[list[int], "dict[int, float]", SearchOutcome]:
        """Coroutine form of :meth:`run` for drivers that supply OD values.

        Yields the masks whose OD the search needs next and expects a
        ``{mask: od}`` dict in return via ``send``; the generator's
        return value is the same :class:`SearchOutcome` :meth:`run`
        produces. In ``"level"`` mode one whole level is requested per
        step — same-level subspaces cannot prune one another, so
        deciding them from a pre-fetched batch replays the sequential
        decisions exactly; ``"evaluation"`` mode requests a single mask
        at a time. Level selection, pruning and statistics are shared
        with :meth:`run`, so the answer set, the level schedule and the
        logical cost counters are identical — only *who* computes the OD
        values changes, which is what lets a batch driver group requests
        across many concurrent searches into vectorised multi-query kNN
        calls.
        """
        start = time.perf_counter()
        lattice = SubspaceLattice(self.evaluator.backend.d)
        stats = SearchStats()

        cursors: dict[int, int] = {}
        while lattice.has_unknown():
            level, masks = self._next_step(lattice, stats, cursors)
            values = yield masks
            for mask in masks:
                if lattice.is_unknown(mask):
                    self._check_budget(lattice, stats)
                    self._record(mask, values[mask], level, lattice, stats)
        return self._finish(lattice, stats, start)

    # ------------------------------------------------------------------
    def _next_step(
        self, lattice: SubspaceLattice, stats: SearchStats, cursors: dict[int, int]
    ) -> tuple[int, list[int]]:
        """Select the next level and the masks this step will decide.

        One implementation serves :meth:`run` and :meth:`run_stepped`,
        which keeps the two entry points in lock-step by construction —
        the batched path's answers-identical guarantee depends on it.
        """
        level = self._select_level(lattice)
        stats.level_schedule.append(level)
        if self.reselect == "level":
            return level, lattice.unknown_masks_at_level(level)
        mask, position = lattice.first_unknown_at_level(level, cursors.get(level, 0))
        cursors[level] = position
        return level, [mask]

    def _finish(
        self, lattice: SubspaceLattice, stats: SearchStats, start: float
    ) -> SearchOutcome:
        stats.wall_time_s = time.perf_counter() - start
        stats.reverified = self.evaluator.reverifications
        return SearchOutcome(
            d=lattice.d,
            threshold=self.threshold,
            outlying_masks=lattice.outlying_masks(),
            stats=stats,
            lattice=lattice,
        )
    def _select_level(self, lattice: SubspaceLattice) -> int:
        """Level with the highest TSF; ties favour the lower level, which
        keeps the schedule deterministic and biases toward the small
        subspaces the final filter wants anyway."""
        best_level = -1
        best_tsf = -1.0
        for m in lattice.levels_with_unknown():
            p_up, p_down = self._effective_priors(m, lattice)
            tsf = total_saving_factor(
                TSFInputs(
                    m=m,
                    d=lattice.d,
                    p_up=p_up,
                    p_down=p_down,
                    remaining_below=lattice.remaining_workload_below(m),
                    remaining_above=lattice.remaining_workload_above(m),
                )
            )
            if tsf > best_tsf:
                best_level, best_tsf = m, tsf
        return best_level

    def _effective_priors(self, m: int, lattice: SubspaceLattice) -> tuple[float, float]:
        """Priors for level ``m``: learned values, optionally shrunk toward
        the evidence produced so far by this very search.

        The blend is a conjugate-style update: the learned prior counts as
        ``adaptive_prior_weight`` pseudo-observations, each already-decided
        subspace at level ``m`` counts as one real observation, and the
        global decided fraction contributes up to ``2 d`` weak observations
        so untouched levels still react when the search discovers the
        query point is (or is not) broadly outlying.
        """
        p_up, p_down = self.priors.at(m)
        if not self.adaptive:
            return p_up, p_down
        level_decided, level_outlying = lattice.decided_stats(m)
        global_decided, global_outlying = lattice.decided_stats_total()
        global_weight = min(global_decided, 2 * lattice.d)
        global_fraction = (
            global_outlying / global_decided if global_decided else 0.0
        )
        weight = self.adaptive_prior_weight
        estimate = (
            weight * p_up + level_outlying + global_weight * global_fraction
        ) / (weight + level_decided + global_weight)
        p_up_new, p_down_new = estimate, 1.0 - estimate
        # Preserve the structural boundary conventions of Section 3.2.
        if m == 1:
            p_down_new = 0.0
        if m == lattice.d:
            p_up_new = 0.0
        return p_up_new, p_down_new

    def _check_budget(self, lattice: SubspaceLattice, stats: SearchStats) -> None:
        if (
            self.max_evaluations is not None
            and stats.od_evaluations >= self.max_evaluations
        ):
            raise SearchBudgetExceeded(
                f"search exceeded its budget of {self.max_evaluations} OD "
                f"evaluations with {sum(lattice.remaining_count(m) for m in lattice.levels_with_unknown())} "
                "subspaces still undecided"
            )

    def _record(
        self,
        mask: int,
        od_value: float,
        level: int,
        lattice: SubspaceLattice,
        stats: SearchStats,
    ) -> None:
        """Apply one OD observation: mark the subspace and prune."""
        stats.od_evaluations += 1
        stats.evaluations_by_level[level] = stats.evaluations_by_level.get(level, 0) + 1
        if od_value >= self.threshold:
            lattice.mark_evaluated(mask, outlying=True)
            stats.upward_pruned += lattice.prune_supersets(mask)
        else:
            lattice.mark_evaluated(mask, outlying=False)
            stats.downward_pruned += lattice.prune_subsets(mask)

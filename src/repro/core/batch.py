"""Batched multi-query engine: many lattice searches, shared kNN work.

The paper's system answers one query point at a time; a traffic-serving
deployment receives *streams* of query points against one fitted model.
:class:`BatchQueryEngine` drives many
:class:`~repro.core.search.DynamicSubspaceSearch` runs concurrently in
lock-step rounds:

1. every still-active search announces (via its
   :meth:`~repro.core.search.DynamicSubspaceSearch.run_stepped`
   coroutine) the subspace masks it needs OD values for next;
2. requests already answered by the per-fit
   :class:`~repro.core.od.SharedODCache` are replayed for free —
   fit-time calibration and learning populate that cache, so querying a
   row the learning pass already searched costs zero new kNN work;
3. the remaining requests are scheduled **mask-major** when the fitted
   miner resolved the GEMM kernel: searches that request the *same*
   subspace list this round (the common case — concurrent searches
   walk the lattice in lock-step and expand the same levels) are fused
   into one stacked multi-query GEMM
   (:meth:`~repro.index.linear.LinearScanIndex.knn_distance_sums_batch`
   with ``C_batch`` component stacking), after coalescing identical
   query points so duplicates pay once; near-threshold GEMM values are
   re-verified with the exact kernel before any pruning decision is
   made on them. Under the exact kernel (or a backend without the
   level kernel) the engine falls back to the original scheduling:
   per-query ``knn_distance_sums`` gathers when masks outnumber
   distinct masks, else one vectorised
   :meth:`~repro.index.base.KnnBackend.knn_batch` call per mask.

Because ``run_stepped`` replays exactly the sequential decision process
and every supplied OD value is exactly what the backend would have
returned, the per-point results are **identical** to sequential
``query_point``/``query_row`` calls — element-wise, including tie
order — while the hot distance kernels run batch-wide and repeated work
is shared (property-tested in ``tests/test_batch.py``).

``workers=N`` (default from ``HOSMinerConfig.workers`` / the
``HOSMINER_WORKERS`` environment variable) adds multiprocessing under a
``shard=`` strategy knob:

``shard="rows"`` (default)
    The persistent scatter-gather engine (:mod:`repro.core.shard`): the
    fitted miner owns a worker pool spawned once and reused across
    every ``query_batch`` call, whose workers hold shared-memory row
    shards of the dataset. The round loop above runs unchanged on the
    coordinator, but each mask-major work unit is *scattered*: every
    shard answers with its local sorted k-nearest distance prefixes
    (under the fitted kernel/precision/top-k knobs) and the coordinator
    merges them exactly — OD additivity over data points makes the
    merged prefix identical to a full scan's. Near-threshold GEMM
    values re-verify through a sharded *exact* round. Only masks and
    query rows cross the pipe, so per-call shipped bytes are
    independent of ``n``; single-query batches ride the warm pool too
    (no silent drop to in-process). ``SearchStats`` gains
    ``shard_round_trips`` and ``bytes_shipped``.

``shard="queries"``
    The legacy query-split fallback: each worker runs the whole
    in-process engine over a slice of the targets against its own miner
    copy (cache sharing is per-worker). The executor is cached on the
    miner across calls — the miner is pickled to the workers once at
    pool creation, not per batch.

Answers are unaffected by either mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

import numpy as np

from repro.core.config import _SHARD_MODES
from repro.core.exceptions import ConfigurationError
from repro.core.od import ODEvaluator, SharedODCache, kth_bound, near_threshold
from repro.core.precision import reverify_rtol
from repro.core.result import BatchResult, OutlyingSubspaceResult
from repro.core.search import SearchOutcome, SearchStats
from repro.core.subspace import dims_of_mask
from repro.index.base import components32_from, validate_query_matrix

if TYPE_CHECKING:
    from repro.core.miner import HOSMiner
    from repro.core.shard import ShardPool

__all__ = ["BatchQueryEngine"]


@dataclass(slots=True)
class _SearchState:
    """Bookkeeping of one in-flight search inside the round loop."""

    gen: Generator[list[int], "dict[int, float]", SearchOutcome]
    evaluator: ODEvaluator
    pending: list[int] = field(default_factory=list)
    values: dict[int, float] = field(default_factory=dict)
    outcome: SearchOutcome | None = None
    #: Per-dimension distance contribution matrix (n, d), allocated
    #: lazily for eval-heavy searches and dropped on completion.
    components: np.ndarray | None = None
    #: Pre-transposed (d, n) float32 copy of ``components`` for the
    #: float32 GEMM tier; ``None`` outside the tier or on overflow.
    components32: np.ndarray | None = None


#: Ceiling on the memory held in per-state component matrices at any
#: moment. Components are only profitable for searches that evaluate
#: many subspaces, and those are exactly the searches that survive the
#: first rounds — typically a small fraction of the batch — so this
#: budget is rarely binding; when it is, the engine simply recomputes
#: distances the sequential way.
COMPONENT_BUDGET_BYTES = 256 * 2**20


# Worker-process state for the ``workers=N`` mode. The miner is shipped
# once per worker through the pool initializer (cheap under fork, one
# pickle under spawn) instead of once per task.
_WORKER_MINER: "HOSMiner | None" = None


def _init_worker(miner: "HOSMiner") -> None:
    global _WORKER_MINER
    _WORKER_MINER = miner


def _run_worker_chunk(
    queries: np.ndarray, excludes: "list[int | None]"
) -> tuple[list[OutlyingSubspaceResult], int, int]:
    # workers=1 explicitly: a config-level HOSMINER_WORKERS>1 default
    # must not make the chunk worker recurse into its own pool.
    engine = BatchQueryEngine(_WORKER_MINER, workers=1)
    return engine._run_inprocess(queries, excludes)


class BatchQueryEngine:
    """Drive many subspace searches against one fitted miner.

    Parameters
    ----------
    miner:
        A fitted :class:`~repro.core.miner.HOSMiner`.
    workers:
        Worker processes; ``None`` (default) reads the miner's
        ``config.workers``. 1 runs in-process; above 1 the batch runs
        through the engine selected by ``shard``.
    shard:
        Multi-worker strategy (``None`` reads ``config.shard``):
        ``"rows"`` scatters each work unit over the miner's persistent
        shared-memory shard pool, ``"queries"`` splits the batch across
        cached full-miner worker processes.
    """

    def __init__(
        self,
        miner: "HOSMiner",
        workers: "int | None" = None,
        shard: "str | None" = None,
    ) -> None:
        if workers is None:
            workers = miner.config.workers
        if shard is None:
            shard = miner.config.shard
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if shard not in _SHARD_MODES:
            raise ConfigurationError(
                f"shard must be one of {_SHARD_MODES}, got {shard!r}"
            )
        self.miner = miner
        self.workers = workers
        self.shard = shard

    # ------------------------------------------------------------------
    def run(self, targets) -> BatchResult:
        """Answer every target; see :meth:`HOSMiner.query_batch`."""
        start = time.perf_counter()
        queries, excludes = self._normalize_targets(targets)
        pool: "ShardPool | None" = None
        trips_before = bytes_before = 0
        respawns_before = retries_before = timeouts_before = degraded_before = 0
        if self.workers > 1 and self.shard == "rows" and queries.shape[0] > 0:
            # Single-query batches ride the warm pool too — the whole
            # point of a persistent engine is that small batches no
            # longer pay a spin-up, so there is nothing to dodge.
            pool = self.miner._ensure_shard_pool(self.workers)
            trips_before = pool.round_trips
            bytes_before = pool.bytes_shipped
            respawns_before = pool.respawns
            retries_before = pool.retries
            timeouts_before = pool.timeouts
            degraded_before = pool.degraded_rounds
            results, knn_evaluations, shared_hits = self._run_inprocess(
                queries, excludes, pool=pool
            )
            workers = pool.workers
        elif self.workers > 1 and queries.shape[0] > 1:
            results, knn_evaluations, shared_hits = self._run_query_split(
                queries, excludes
            )
            workers = min(self.workers, queries.shape[0])
        else:
            results, knn_evaluations, shared_hits = self._run_inprocess(
                queries, excludes
            )
            workers = 1
        stats = self._aggregate_stats(results)
        if pool is not None:
            stats.shard_round_trips = pool.round_trips - trips_before
            stats.bytes_shipped = pool.bytes_shipped - bytes_before
            stats.worker_respawns = pool.respawns - respawns_before
            stats.retries = pool.retries - retries_before
            stats.timeouts = pool.timeouts - timeouts_before
            stats.degraded_rounds = pool.degraded_rounds - degraded_before
        wall_time = time.perf_counter() - start
        stats.wall_time_s = wall_time
        return BatchResult(
            results=results,
            stats=stats,
            knn_evaluations=knn_evaluations,
            shared_cache_hits=shared_hits,
            wall_time_s=wall_time,
            workers=workers,
        )

    # ------------------------------------------------------------------
    def _normalize_targets(self, targets) -> tuple[np.ndarray, "list[int | None]"]:
        """Resolve a heterogeneous target spec into ``(queries, excludes)``.

        Accepted forms: a 2-D ``(m, d)`` matrix of external points, a
        1-D integer array / sequence of dataset row ids, a single 1-D
        float vector (one external point), or a mixed sequence of row
        ids and vectors. Validation happens here, once, up front —
        malformed targets raise
        :class:`~repro.core.exceptions.DataShapeError` (shapes) or
        :class:`~repro.core.exceptions.ConfigurationError` (row range)
        before any search starts.
        """
        miner = self.miner
        X = miner.backend_.data
        d = miner.d_

        if isinstance(targets, np.ndarray):
            if targets.ndim == 1 and np.issubdtype(targets.dtype, np.integer):
                targets = [int(row) for row in targets]
            elif targets.ndim == 1:
                targets = [targets]
            else:
                matrix = validate_query_matrix(targets, d)
                return matrix, [None] * matrix.shape[0]

        rows: list[np.ndarray] = []
        excludes: list[int | None] = []
        for target in targets:
            if isinstance(target, (int, np.integer)):
                row = int(target)
                if not 0 <= row < X.shape[0]:
                    raise ConfigurationError(
                        f"row {row} out of range for n={X.shape[0]}"
                    )
                rows.append(X[row])
                excludes.append(row)
            else:
                rows.append(ODEvaluator._validate_query(target, d))
                excludes.append(None)
        if not rows:
            return np.empty((0, d), dtype=np.float64), []
        return np.ascontiguousarray(np.vstack(rows)), excludes

    # ------------------------------------------------------------------
    def _run_inprocess(
        self,
        queries: np.ndarray,
        excludes: "list[int | None]",
        pool: "ShardPool | None" = None,
    ) -> tuple[list[OutlyingSubspaceResult], int, int]:
        miner = self.miner
        backend = miner.backend_
        cache = miner.od_cache_
        k = miner.config.k

        kernel = miner.kernel_
        threshold = miner.threshold_
        precision = miner.precision_
        use_f32 = kernel == "gemm" and precision == "float32"
        # One band for every search of the batch: same backend, same
        # resolved tier => same rigorous re-verification width.
        band_rtol = reverify_rtol(precision, backend.d)
        # Bound-inflation band for cached kth distances (delta cache
        # invalidation): GEMM kths carry kernel noise, exact ones none.
        prime_band = band_rtol if kernel == "gemm" else 0.0

        states: list[_SearchState] = []
        for query, exclude in zip(queries, excludes):
            evaluator = ODEvaluator(
                backend,
                query,
                k,
                exclude=exclude,
                shared_cache=cache,
                kernel=kernel,
                precision=precision,
            )
            states.append(
                _SearchState(
                    gen=miner._make_search(evaluator).run_stepped(),
                    evaluator=evaluator,
                )
            )

        active: list[int] = []
        for i, state in enumerate(states):
            # d >= 1 guarantees the first step always requests something.
            state.pending = next(state.gen)
            active.append(i)

        supports_sums = hasattr(backend, "knn_distance_sums")
        supports_components = hasattr(backend, "distance_components")
        # Mask-major group scheduling: always under the shard pool (the
        # scatter unit IS the group), else when the GEMM kernel can
        # stack the group into one multi-query product.
        use_groups = pool is not None or (
            kernel == "gemm" and hasattr(backend, "knn_distance_sums_batch")
        )
        component_bytes = 0
        dims_cache: dict[int, np.ndarray] = {}

        def dims_for(mask: int) -> np.ndarray:
            dims = dims_cache.get(mask)
            if dims is None:
                dims = np.asarray(dims_of_mask(mask), dtype=np.intp)
                dims_cache[mask] = dims
            return dims

        # Float64 components cost 8 bytes/element; the float32 tier
        # keeps a transposed float32 copy alongside (4 more).
        per_state_bytes = queries.shape[1] * backend.size * (12 if use_f32 else 8)

        def allocate_components(state: _SearchState) -> None:
            """Budget-gated per-state component matrix allocation."""
            nonlocal component_bytes
            if not supports_components or state.components is not None:
                return
            if component_bytes + per_state_bytes <= COMPONENT_BUDGET_BYTES:
                state.components = backend.distance_components(
                    state.evaluator.query
                )
                if state.components is not None:
                    component_bytes += per_state_bytes
                    if use_f32:
                        state.components32 = components32_from(state.components)

        def precision_kwargs(state: "_SearchState | None") -> dict:
            """Extra kwargs carrying the float32 tier into the backend
            sums kernels (empty outside the tier)."""
            if not use_f32:
                return {}
            if state is None:
                return {"precision": "float32"}
            return {"precision": "float32", "components32": state.components32}

        def reverified(
            state: _SearchState,
            i: int,
            mask: int,
            value: float,
            kth: "float | None" = None,
        ) -> "tuple[float, float | None]":
            """Replace a near-threshold GEMM value with the exact one.

            The single point where the engine enforces the kernel knob's
            answers-identical contract — every GEMM-computed value flows
            through here before a pruning decision can be made on it.
            Returns ``(value, safe kth bound)``: the exact kth after a
            re-verification, the band-inflated *kth* otherwise (``None``
            when the caller's kernel did not surface one — the stacked
            multi-query GEMM has no prefix variant).
            """
            if kernel == "gemm" and near_threshold(value, threshold, band_rtol):
                row = backend.knn_distance_prefix(
                    state.evaluator.query,
                    k,
                    [dims_for(mask)],
                    exclude=excludes[i],
                    components=state.components,
                    kernel="exact",
                )[0]
                value = float(row.sum())
                kth = float(row[-1])  # exact: already a safe bound
                state.evaluator.reverifications += 1
                stats = getattr(backend, "stats", None)
                if stats is not None:
                    stats.bump("reverified_masks")
                return value, kth
            if kth is not None:
                kth = kth_bound(kth, prime_band)
            return value, kth

        def serve_pool(members: "list[int]", masks: "list[int]") -> None:
            """Answer a mask-major group by scattering it over the
            persistent shard pool.

            Workers return per-shard sorted k-nearest distance prefixes
            under the fitted kernel/precision knobs; the coordinator's
            exact k-way merge makes the summed values bit-identical to
            the in-process kernels, so the same near-threshold band
            triggers the same exact re-verifications — served by a
            second scatter under ``kernel="exact"`` (itself bit-identical
            to a sequential exact evaluation). The coordinator backend's
            logical counters are bumped exactly as the in-process
            kernels would have charged them, so cost accounting is
            mode-independent.
            """
            dims = [dims_for(mask) for mask in masks]
            prefixes = pool.scatter_prefixes(
                queries[members],
                dims,
                k,
                [excludes[i] for i in members],
                kernel,
                precision,
            )
            # Ascending sums of the merged global k-prefixes — the same
            # accumulation order as the sequential kernels (hence the
            # same float64 values); the last prefix column is the kth
            # distance the delta cache invalidation needs as a bound.
            grid = prefixes.sum(axis=-1)
            kmax = prefixes[..., -1]
            q_count, m_count = len(members), len(masks)
            stats = getattr(backend, "stats", None)
            if stats is not None:
                stats.knn_queries += q_count * m_count
                if kernel == "gemm":
                    stats.bump(
                        "gemm_flops",
                        2 * backend.size * backend.d * m_count * q_count,
                    )
                    stats.bump("gemm_masks", m_count * q_count)
            if kernel == "gemm":
                for row, i in enumerate(members):
                    near = [
                        col
                        for col in range(m_count)
                        if near_threshold(
                            float(grid[row, col]), threshold, band_rtol
                        )
                    ]
                    if not near:
                        continue
                    exact = pool.scatter_prefixes(
                        queries[[i]],
                        [dims[col] for col in near],
                        k,
                        [excludes[i]],
                        "exact",
                        "float64",
                    )[0]
                    grid[row, near] = exact.sum(axis=-1)
                    kmax[row, near] = exact[:, -1]
                    states[i].evaluator.reverifications += len(near)
                    if stats is not None:
                        stats.knn_queries += len(near)
                        stats.bump("reverified_masks", len(near))
            for row, i in enumerate(members):
                state = states[i]
                for col, mask in enumerate(masks):
                    value = float(grid[row, col])
                    state.evaluator.prime(
                        mask, value, kth=kth_bound(float(kmax[row, col]), prime_band)
                    )
                    state.values[mask] = value

        def serve_with_sums(state: _SearchState, i: int, masks: "list[int]") -> None:
            """Answer one state's masks via its level prefix kernel
            (GEMM when the miner resolved it), with exact re-verification
            of near-threshold GEMM values. The prefix kernel rather than
            the sums kernel: the sums ARE ``prefix.sum(axis=1)``
            (documented on both backends), and the last prefix column is
            the kth-neighbour distance the delta cache invalidation
            needs as a bound — captured here for free."""
            if pool is not None:
                serve_pool([i], masks)
                return
            # Under the GEMM kernel the component matrix is consumed
            # every round (even single-mask rounds), so allocate it
            # regardless of the batch width.
            if len(masks) > 1 or kernel == "gemm":
                allocate_components(state)
            prefixes = backend.knn_distance_prefix(
                state.evaluator.query,
                k,
                [dims_for(mask) for mask in masks],
                exclude=excludes[i],
                components=state.components,
                kernel=kernel,
                **precision_kwargs(state),
            )
            sums = prefixes.sum(axis=1)
            kths = prefixes[:, -1]
            for col, mask in enumerate(masks):
                value, kth = reverified(
                    state, i, mask, float(sums[col]), float(kths[col])
                )
                state.evaluator.prime(mask, value, kth=kth)
                state.values[mask] = value

        def replay_duplicates(
            duplicates: "list[int]", needs_by_state: "dict[int, list[int]]"
        ) -> None:
            """Serve coalesced duplicate states from the shared cache."""
            for i in duplicates:
                state = states[i]
                leftovers = []
                for mask in needs_by_state[i]:
                    value = state.evaluator.cached_od(mask)
                    if value is None:
                        leftovers.append(mask)
                    else:
                        state.values[mask] = value
                if leftovers:
                    # Defensive: a duplicate whose trajectory diverged
                    # (should not happen) computes its own.
                    serve_with_sums(state, i, leftovers)

        while active:
            # Split each search's requests into cache replays and misses.
            # Misses are indexed both ways: by mask (cross-query axis)
            # and by search (cross-subspace axis).
            need_map: dict[int, list[int]] = {}
            needs_by_state: dict[int, list[int]] = {}
            for i in active:
                state = states[i]
                state.values = {}
                for mask in state.pending:
                    value = state.evaluator.cached_od(mask)
                    if value is None:
                        need_map.setdefault(mask, []).append(i)
                        needs_by_state.setdefault(i, []).append(mask)
                    else:
                        state.values[mask] = value

            # Pick the vectorisation axis. Under the GEMM kernel the
            # scheduling is mask-major: searches requesting the same
            # subspace list this round (concurrent searches walk the
            # lattice in lock-step, so most rounds are one big group)
            # fuse into a single stacked multi-query GEMM. Under the
            # exact kernel, keep the original heuristic: group masks per
            # query when masks outnumber distinct masks (late rounds),
            # else one multi-query knn_batch per mask (early rounds).
            by_state = supports_sums and 0 < len(needs_by_state) < len(need_map)

            if use_groups and needs_by_state:
                # Coalesce identical query points first: the first state
                # with a given point key computes, the rest replay
                # through the shared cache.
                seen_round_keys: set[tuple[str, object]] = set()
                duplicates: list[int] = []
                groups: dict[tuple[int, ...], list[int]] = {}
                for i, masks in needs_by_state.items():
                    state = states[i]
                    key = SharedODCache.point_key(state.evaluator.query, excludes[i])
                    if key in seen_round_keys:
                        duplicates.append(i)
                        continue
                    seen_round_keys.add(key)
                    groups.setdefault(tuple(masks), []).append(i)
                for signature, members in groups.items():
                    masks = list(signature)
                    if pool is not None:
                        serve_pool(members, masks)
                        continue
                    if len(members) == 1:
                        serve_with_sums(states[members[0]], members[0], masks)
                        continue
                    for i in members:
                        allocate_components(states[i])
                    batch_kwargs = {}
                    if use_f32:
                        batch_kwargs["precision"] = "float32"
                        batch_kwargs["components32_list"] = [
                            states[i].components32 for i in members
                        ]
                    # The prefix-grade batch kernel when the backend has
                    # one: the sums are prefix.sum(axis=2) and the last
                    # prefix column is each pair's kth distance — the
                    # delta-cache bound, harvested for free.
                    prefix_batch = getattr(
                        backend, "knn_distance_prefix_batch", None
                    )
                    batch_fn = prefix_batch or backend.knn_distance_sums_batch
                    grid = batch_fn(
                        queries[members],
                        k,
                        [dims_for(mask) for mask in masks],
                        excludes=[excludes[i] for i in members],
                        components_list=[states[i].components for i in members],
                        kernel="gemm",
                        **batch_kwargs,
                    )
                    kmax = None
                    if prefix_batch is not None:
                        kmax = grid[..., -1]
                        grid = grid.sum(axis=2)
                    for row, i in enumerate(members):
                        state = states[i]
                        for col, mask in enumerate(masks):
                            value, kth = reverified(
                                state,
                                i,
                                mask,
                                float(grid[row, col]),
                                None if kmax is None else float(kmax[row, col]),
                            )
                            state.evaluator.prime(mask, value, kth=kth)
                            state.values[mask] = value
                replay_duplicates(duplicates, needs_by_state)
            elif by_state:
                # Identical query points run in lockstep, so coalesce
                # them here too: the first state with a given point key
                # computes, the rest replay through the shared cache.
                seen_round_keys = set()
                duplicates = []
                for i, masks in needs_by_state.items():
                    state = states[i]
                    key = SharedODCache.point_key(state.evaluator.query, excludes[i])
                    if key in seen_round_keys:
                        duplicates.append(i)
                        continue
                    seen_round_keys.add(key)
                    serve_with_sums(state, i, masks)
                replay_duplicates(duplicates, needs_by_state)
            else:
                for mask, needers in need_map.items():
                    # Coalesce identical query points: one representative
                    # evaluation per distinct point, replayed to
                    # duplicates through the shared cache.
                    representatives: list[int] = []
                    seen_keys: set[tuple[str, object]] = set()
                    for i in needers:
                        key = SharedODCache.point_key(
                            states[i].evaluator.query, excludes[i]
                        )
                        if key not in seen_keys:
                            seen_keys.add(key)
                            representatives.append(i)
                    answers = backend.knn_batch(
                        queries[representatives],
                        k,
                        dims_for(mask),
                        excludes=[excludes[i] for i in representatives],
                    )
                    for i, (_, distances) in zip(representatives, answers):
                        value = float(distances.sum())
                        # knn_batch is exact; its kth distance is a safe
                        # bound as-is (short prefixes carry no bound).
                        kth = float(distances[-1]) if distances.size == k else None
                        states[i].evaluator.prime(mask, value, kth=kth)
                        states[i].values[mask] = value
                    for i in needers:
                        if mask not in states[i].values:
                            states[i].values[mask] = states[i].evaluator.cached_od(mask)

            still_active: list[int] = []
            for i in active:
                state = states[i]
                try:
                    state.pending = state.gen.send(state.values)
                    still_active.append(i)
                except StopIteration as stop:
                    state.outcome = stop.value
                    if state.components is not None:
                        component_bytes -= per_state_bytes
                        state.components = None
                        state.components32 = None
            active = still_active

        results = [
            miner._build_result(state.outcome, state.evaluator) for state in states
        ]
        knn_evaluations = sum(state.evaluator.evaluations for state in states)
        shared_hits = sum(state.evaluator.shared_hits for state in states)
        return results, knn_evaluations, shared_hits

    # ------------------------------------------------------------------
    def _run_query_split(
        self, queries: np.ndarray, excludes: "list[int | None]"
    ) -> tuple[list[OutlyingSubspaceResult], int, int]:
        """Legacy ``shard="queries"`` mode: split the batch across full
        miner copies. The executor (and the one-time miner pickle it
        paid at creation) is cached on the miner and reused by every
        subsequent call."""
        m = queries.shape[0]
        pool = self.miner._ensure_query_pool(self.workers)
        n_workers = min(self.workers, m)
        chunks = np.array_split(np.arange(m), n_workers)
        futures = [
            pool.submit(
                _run_worker_chunk,
                queries[chunk],
                [excludes[i] for i in chunk],
            )
            for chunk in chunks
        ]
        parts = [future.result() for future in futures]
        results: list[OutlyingSubspaceResult] = []
        knn_evaluations = 0
        shared_hits = 0
        for part_results, part_knn, part_hits in parts:
            results.extend(part_results)
            knn_evaluations += part_knn
            shared_hits += part_hits
        return results, knn_evaluations, shared_hits

    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate_stats(results: Sequence[OutlyingSubspaceResult]) -> SearchStats:
        """Sum the numeric cost fields over all per-point searches."""
        total = SearchStats()
        for result in results:
            total.od_evaluations += result.stats.od_evaluations
            total.upward_pruned += result.stats.upward_pruned
            total.downward_pruned += result.stats.downward_pruned
            total.reverified += result.stats.reverified
            for level, count in result.stats.evaluations_by_level.items():
                total.evaluations_by_level[level] = (
                    total.evaluations_by_level.get(level, 0) + count
                )
        return total

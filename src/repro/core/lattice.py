"""Materialised subspace-lattice state for one search run.

The dynamic subspace search needs, at every step:

* the status of each of the ``2**d - 1`` non-empty subspaces
  (unevaluated, evaluated-outlying, evaluated-non-outlying,
  pruned-outlying, pruned-non-outlying);
* fast bulk transitions "prune all subsets of s" / "prune all supersets
  of s";
* the per-level remaining workload sums ``C_down_left(m)`` and
  ``C_up_left(m)`` feeding ``f_down`` / ``f_up`` in the TSF formula.

A flat ``int8`` array indexed by bitmask provides all three. Memory is
``2**d`` bytes, so the width guard :data:`MAX_LATTICE_DIM` (20 → 1 MiB)
keeps accidental huge allocations out; the 2004 system targeted the same
"tens of dimensions" regime.

The lattice is *search-agnostic*: it never computes OD values, it only
records decisions, so the naive baselines in
:mod:`repro.baselines.naive_search` reuse it unchanged.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator

import numpy as np

from repro.core.exceptions import DimensionalityError
from repro.core.subspace import (
    iter_proper_submasks,
    iter_proper_supermasks,
    masks_at_level,
    popcount,
)

__all__ = ["SubspaceState", "SubspaceLattice", "MAX_LATTICE_DIM"]

#: Hard cap on the materialised lattice width; beyond this the state array
#: alone would exceed a mebibyte and submask enumeration becomes the real
#: bottleneck anyway.
MAX_LATTICE_DIM = 20


class SubspaceState(IntEnum):
    """Lifecycle of one subspace inside a search run."""

    UNKNOWN = 0
    #: OD was computed and found ``>= T``.
    EVALUATED_OUTLYING = 1
    #: OD was computed and found ``< T``.
    EVALUATED_NON_OUTLYING = 2
    #: Inferred outlying via upward pruning (a subset was outlying).
    PRUNED_OUTLYING = 3
    #: Inferred non-outlying via downward pruning (a superset was not).
    PRUNED_NON_OUTLYING = 4


_OUTLYING_STATES = (SubspaceState.EVALUATED_OUTLYING, SubspaceState.PRUNED_OUTLYING)

# Hoisted enum values: the pruning inner loops and per-evaluation state
# checks compare / assign raw int8 entries, and attribute access on an
# IntEnum class costs a dict lookup plus descriptor call per use —
# measurable at 2**d scale and in the per-mask hot path.
_UNKNOWN = int(SubspaceState.UNKNOWN)
_EVALUATED_OUTLYING = int(SubspaceState.EVALUATED_OUTLYING)
_EVALUATED_NON_OUTLYING = int(SubspaceState.EVALUATED_NON_OUTLYING)
_PRUNED_OUTLYING = int(SubspaceState.PRUNED_OUTLYING)
_PRUNED_NON_OUTLYING = int(SubspaceState.PRUNED_NON_OUTLYING)

#: Per-d cached index/popcount arrays shared by every lattice instance.
_MASKS_CACHE: dict[int, np.ndarray] = {}
_LEVELS_CACHE: dict[int, np.ndarray] = {}


def _masks_array(d: int) -> np.ndarray:
    """``np.arange(2**d)`` as uint32, cached per dimensionality."""
    arr = _MASKS_CACHE.get(d)
    if arr is None:
        arr = np.arange(1 << d, dtype=np.uint32)
        _MASKS_CACHE[d] = arr
    return arr


def _levels_array(d: int) -> np.ndarray:
    """Popcount of every mask in ``range(2**d)`` (SWAR, vectorised)."""
    arr = _LEVELS_CACHE.get(d)
    if arr is None:
        v = _masks_array(d).copy()
        v = v - ((v >> 1) & 0x55555555)
        v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F
        arr = ((v * 0x01010101) >> 24).astype(np.uint8)
        _LEVELS_CACHE[d] = arr
    return arr


#: Below this candidate count the python bit-trick enumeration beats a
#: full 2**d vectorised scan (the scan touches every mask regardless of
#: how few are candidates).
_ENUMERATION_CUTOFF_FRACTION = 64


class SubspaceLattice:
    """Mutable state of every non-empty subspace of a ``d``-wide space.

    Parameters
    ----------
    d:
        Ambient dimensionality, ``1 <= d <= MAX_LATTICE_DIM``.

    Notes
    -----
    All mutating operations keep two aggregates exact:

    * ``remaining_count[m]`` — number of UNKNOWN subspaces at level ``m``;
    * ``remaining_workload[m] = remaining_count[m] * m`` — their summed
      dimensionalities, the building block of ``C_down_left`` /
      ``C_up_left``.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise DimensionalityError(f"ambient dimensionality must be >= 1, got {d}")
        if d > MAX_LATTICE_DIM:
            raise DimensionalityError(
                f"d={d} exceeds the materialised-lattice cap of {MAX_LATTICE_DIM}; "
                "reduce the dimensionality (e.g. by feature selection) or use the "
                "naive frontier search for spot checks"
            )
        self.d = d
        self._state = np.zeros(1 << d, dtype=np.int8)
        self._full_mask = (1 << d) - 1
        from math import comb

        self._level_sizes = [comb(d, m) for m in range(d + 1)]
        self._remaining_count = list(self._level_sizes)
        self._remaining_count[0] = 0  # the empty subspace is not searched
        self._outlying_decided = [0] * (d + 1)
        self._level_masks_cache: dict[int, list[int]] = {}

    # -- queries ---------------------------------------------------------
    def state(self, mask: int) -> SubspaceState:
        """Current state of one subspace."""
        self._check_mask(mask)
        return SubspaceState(int(self._state[mask]))

    def is_unknown(self, mask: int) -> bool:
        return self._state[mask] == _UNKNOWN

    def is_outlying(self, mask: int) -> bool:
        """Whether the subspace is known outlying (evaluated or inferred)."""
        return int(self._state[mask]) in (_EVALUATED_OUTLYING, _PRUNED_OUTLYING)

    def has_unknown(self) -> bool:
        """Whether any subspace still awaits a decision."""
        return any(count > 0 for count in self._remaining_count[1:])

    def remaining_count(self, m: int) -> int:
        """Number of UNKNOWN subspaces at level ``m``."""
        return self._remaining_count[m]

    def remaining_workload_below(self, m: int) -> int:
        """``C_down_left(m)``: Σ dim(s) over UNKNOWN s with dim(s) < m."""
        return sum(i * self._remaining_count[i] for i in range(1, m))

    def remaining_workload_above(self, m: int) -> int:
        """``C_up_left(m)``: Σ dim(s) over UNKNOWN s with dim(s) > m."""
        return sum(i * self._remaining_count[i] for i in range(m + 1, self.d + 1))

    def levels_with_unknown(self) -> list[int]:
        """Levels that still contain UNKNOWN subspaces, ascending."""
        return [m for m in range(1, self.d + 1) if self._remaining_count[m] > 0]

    def decided_stats(self, m: int) -> tuple[int, int]:
        """``(decided, outlying)`` counts at level ``m`` — the evidence the
        adaptive-prior extension blends into ``p_up(m)``."""
        decided = self._level_sizes[m] - self._remaining_count[m]
        return decided, self._outlying_decided[m]

    def decided_stats_total(self) -> tuple[int, int]:
        """``(decided, outlying)`` counts across the whole lattice."""
        decided = sum(
            self._level_sizes[m] - self._remaining_count[m]
            for m in range(1, self.d + 1)
        )
        outlying = sum(self._outlying_decided[1:])
        return decided, outlying

    def unknown_masks_at_level(self, m: int) -> list[int]:
        """Snapshot of the UNKNOWN masks at level ``m``.

        A fresh list is returned because callers mutate the lattice while
        iterating (evaluations at the same level prune siblings).
        """
        state = self._state
        return [mask for mask in self._masks_at_level(m) if state[mask] == _UNKNOWN]

    def first_unknown_at_level(self, m: int, cursor: int = 0) -> tuple[int, int]:
        """First UNKNOWN mask at level ``m`` at or after position *cursor*.

        Returns ``(mask, position)``, or ``(-1, len)`` when the level is
        exhausted. Because states only ever move away from UNKNOWN, a
        caller may carry the returned position forward as the next
        cursor — the basis of the O(1)-amortised scan used by the
        per-evaluation re-selection mode.
        """
        masks = self._masks_at_level(m)
        position = cursor
        while position < len(masks):
            if self._state[masks[position]] == _UNKNOWN:
                return masks[position], position
            position += 1
        return -1, position

    # -- transitions -------------------------------------------------------
    def mark_evaluated(self, mask: int, outlying: bool) -> None:
        """Record the result of an actual OD computation."""
        self._check_mask(mask)
        if self._state[mask] != _UNKNOWN:
            raise DimensionalityError(
                f"subspace {mask:#x} was already decided ({self.state(mask).name})"
            )
        self._state[mask] = _EVALUATED_OUTLYING if outlying else _EVALUATED_NON_OUTLYING
        level = popcount(mask)
        self._remaining_count[level] -= 1
        if outlying:
            self._outlying_decided[level] += 1

    def prune_supersets(self, mask: int) -> int:
        """Upward pruning: mark every UNKNOWN proper superset outlying.

        Returns the number of subspaces newly decided.
        """
        self._check_mask(mask)
        level = popcount(mask)
        # Cheap guard: when every higher level is already decided, the
        # (up to 2**(d-m)) supermask walk cannot find anything to prune.
        if all(self._remaining_count[i] == 0 for i in range(level + 1, self.d + 1)):
            return 0
        # Hybrid strategy: enumerating the 2**(d-m) supersets in python
        # wins when they are a sliver of the lattice; otherwise one
        # vectorised scan of the whole state array wins. Both mark the
        # identical set of subspaces — only the walk order differs, and
        # pruning is order-insensitive.
        if (1 << (self.d - level)) * _ENUMERATION_CUTOFF_FRACTION < (1 << self.d):
            state = self._state
            pruned = 0
            for sup in iter_proper_supermasks(mask, self.d):
                if state[sup] == _UNKNOWN:
                    state[sup] = _PRUNED_OUTLYING
                    sup_level = popcount(sup)
                    self._remaining_count[sup_level] -= 1
                    self._outlying_decided[sup_level] += 1
                    pruned += 1
            return pruned
        masks = _masks_array(self.d)
        selected = ((masks & mask) == mask) & (self._state == _UNKNOWN)
        # Proper supersets only: the mask itself matches its own test.
        selected[mask] = False
        indices = np.flatnonzero(selected)
        if indices.size == 0:
            return 0
        self._state[indices] = _PRUNED_OUTLYING
        per_level = np.bincount(_levels_array(self.d)[indices], minlength=self.d + 1)
        for pruned_level in np.flatnonzero(per_level):
            count = int(per_level[pruned_level])
            self._remaining_count[pruned_level] -= count
            self._outlying_decided[pruned_level] += count
        return int(indices.size)

    def prune_subsets(self, mask: int) -> int:
        """Downward pruning: mark every UNKNOWN proper subset non-outlying.

        Returns the number of subspaces newly decided.
        """
        self._check_mask(mask)
        level = popcount(mask)
        # Mirror guard of prune_supersets for the submask walk.
        if all(self._remaining_count[i] == 0 for i in range(1, level)):
            return 0
        if (1 << level) * _ENUMERATION_CUTOFF_FRACTION < (1 << self.d):
            state = self._state
            pruned = 0
            for sub in iter_proper_submasks(mask):
                if state[sub] == _UNKNOWN:
                    state[sub] = _PRUNED_NON_OUTLYING
                    self._remaining_count[popcount(sub)] -= 1
                    pruned += 1
            return pruned
        masks = _masks_array(self.d)
        inverse = self._full_mask ^ mask
        selected = ((masks & inverse) == 0) & (self._state == _UNKNOWN)
        # Proper subsets only: exclude the mask itself and the empty
        # subspace (index 0 stays UNKNOWN forever by convention).
        selected[0] = False
        selected[mask] = False
        indices = np.flatnonzero(selected)
        if indices.size == 0:
            return 0
        self._state[indices] = _PRUNED_NON_OUTLYING
        per_level = np.bincount(_levels_array(self.d)[indices], minlength=self.d + 1)
        for pruned_level in np.flatnonzero(per_level):
            self._remaining_count[pruned_level] -= int(per_level[pruned_level])
        return int(indices.size)

    # -- results -----------------------------------------------------------
    def outlying_masks(self) -> list[int]:
        """Every subspace known outlying, as raw masks (unspecified order)."""
        states = self._state
        outlying = np.flatnonzero(
            (states == SubspaceState.EVALUATED_OUTLYING)
            | (states == SubspaceState.PRUNED_OUTLYING)
        )
        return [int(mask) for mask in outlying]

    def iter_states(self) -> Iterator[tuple[int, SubspaceState]]:
        """Yield ``(mask, state)`` for every non-empty subspace."""
        for mask in range(1, 1 << self.d):
            yield mask, SubspaceState(int(self._state[mask]))

    def level_outlying_fraction(self, m: int) -> float:
        """Fraction of level-``m`` subspaces known outlying.

        Only meaningful once the search has finished (no UNKNOWN left at
        the level); used by the sample-based learning pass to turn one
        sample search into ``p_up(m, sp)``.
        """
        masks = self._masks_at_level(m)
        outlying = sum(1 for mask in masks if self.is_outlying(mask))
        return outlying / len(masks)

    def counts_by_state(self) -> dict[SubspaceState, int]:
        """Histogram of subspace states (excluding the empty subspace)."""
        values, counts = np.unique(self._state[1:], return_counts=True)
        histogram = {state: 0 for state in SubspaceState}
        for value, count in zip(values, counts):
            histogram[SubspaceState(int(value))] = int(count)
        return histogram

    # -- internals -----------------------------------------------------------
    def _masks_at_level(self, m: int) -> list[int]:
        if m not in self._level_masks_cache:
            self._level_masks_cache[m] = masks_at_level(self.d, m)
        return self._level_masks_cache[m]

    def _check_mask(self, mask: int) -> None:
        if not 1 <= mask <= self._full_mask:
            raise DimensionalityError(
                f"mask {mask:#x} is not a non-empty subspace of a d={self.d} space"
            )

"""Saving factors: DSF, USF and the Total Saving Factor (TSF).

These are Definitions 1-3 of the paper (Section 3.1). They quantify how
much search work is saved when a subspace of dimensionality ``m`` gets
pruned, under the cost model "evaluating an ``i``-dimensional subspace
costs ``i`` units":

* ``DSF(m) = Σ_{i=1..m-1} C(m, i) · i`` — evaluating an ``m``-dimensional
  subspace and finding the point *non-outlying* prunes every proper
  subset (downward pruning, Property 1).
* ``USF(m, d) = Σ_{i=1..d-m} C(d-m, i) · (m + i)`` — finding the point
  *outlying* prunes every proper superset (upward pruning, Property 2).

The paper's worked example (d = 4): ``DSF([1,2,3]) = C(3,1)·1 + C(3,2)·2
= 9`` and ``USF([1,4]) = C(2,1)·3 + C(2,2)·4 = 10``; both are pinned by
unit tests.

``TSF(m, p)`` weights the two saving factors by (a) the learned prior
probabilities that up/down pruning fires at level ``m`` and (b) the
fraction of that saving still achievable given what has already been
pruned (``f_down``, ``f_up``). The dynamic search engine always expands
the level with the highest TSF next.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import comb

from repro.core.exceptions import ConfigurationError, DimensionalityError

__all__ = [
    "downward_saving_factor",
    "upward_saving_factor",
    "total_workload",
    "workload_below",
    "workload_above",
    "TSFInputs",
    "total_saving_factor",
]


@lru_cache(maxsize=None)
def downward_saving_factor(m: int) -> int:
    """``DSF(m)``: work saved by pruning all proper subsets of an
    ``m``-dimensional subspace.

    Closed form used for cross-checking in tests:
    ``DSF(m) = m · (2**(m-1) - 1)``.
    """
    if m < 1:
        raise DimensionalityError(f"subspace dimensionality must be >= 1, got {m}")
    return sum(comb(m, i) * i for i in range(1, m))


@lru_cache(maxsize=None)
def upward_saving_factor(m: int, d: int) -> int:
    """``USF(m, d)``: work saved by pruning all proper supersets of an
    ``m``-dimensional subspace inside a ``d``-dimensional space."""
    if not 1 <= m <= d:
        raise DimensionalityError(f"need 1 <= m <= d, got m={m}, d={d}")
    r = d - m
    return sum(comb(r, i) * (m + i) for i in range(1, r + 1))


@lru_cache(maxsize=None)
def total_workload(d: int) -> int:
    """Total cost of exhaustively evaluating every non-empty subspace,
    ``Σ_{i=1..d} C(d, i) · i = d · 2**(d-1)``."""
    if d < 1:
        raise DimensionalityError(f"ambient dimensionality must be >= 1, got {d}")
    return d * (1 << (d - 1))


@lru_cache(maxsize=None)
def workload_below(m: int, d: int) -> int:
    """``C_down(m)``: total workload of all subspaces with dimensionality
    strictly below ``m`` — the denominator of ``f_down(m)``."""
    if not 1 <= m <= d:
        raise DimensionalityError(f"need 1 <= m <= d, got m={m}, d={d}")
    return sum(comb(d, i) * i for i in range(1, m))


@lru_cache(maxsize=None)
def workload_above(m: int, d: int) -> int:
    """``C_up(m)``: total workload of all subspaces with dimensionality
    strictly above ``m`` — the denominator of ``f_up(m)``."""
    if not 1 <= m <= d:
        raise DimensionalityError(f"need 1 <= m <= d, got m={m}, d={d}")
    return sum(comb(d, i) * i for i in range(m + 1, d + 1))


@dataclass(frozen=True, slots=True)
class TSFInputs:
    """Everything level-specific the TSF formula consumes.

    Attributes
    ----------
    m, d:
        Level under consideration and ambient dimensionality.
    p_up, p_down:
        Prior probabilities that an ``m``-dimensional subspace triggers
        upward / downward pruning for the current query point. Supplied
        either by the uniform assumption (learning pass) or by the
        learned averages (query pass).
    remaining_below, remaining_above:
        ``C_down_left(m)`` / ``C_up_left(m)``: summed dimensionalities of
        the not-yet-pruned, not-yet-evaluated subspaces strictly below /
        above level ``m``; maintained incrementally by the lattice.
    """

    m: int
    d: int
    p_up: float
    p_down: float
    remaining_below: int
    remaining_above: int

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.d:
            raise DimensionalityError(f"need 1 <= m <= d, got m={self.m}, d={self.d}")
        for name, prob in (("p_up", self.p_up), ("p_down", self.p_down)):
            if not 0.0 <= prob <= 1.0:
                raise ConfigurationError(f"{name} must be a probability, got {prob}")
        if self.remaining_below < 0 or self.remaining_above < 0:
            raise ConfigurationError("remaining workloads cannot be negative")


def total_saving_factor(inputs: TSFInputs) -> float:
    """``TSF(m, p)`` exactly as Definition 3 of the paper.

    * ``m == 1``: only the upward term (nothing exists below level 1).
    * ``m == d``: only the downward term (nothing exists above level d).
    * otherwise: the sum of both terms.

    ``f_down`` / ``f_up`` discount each saving factor by the fraction of
    the corresponding workload still outstanding; a level whose entire
    down-side has already been pruned earns no downward credit.
    """
    m, d = inputs.m, inputs.d

    down_term = 0.0
    if m > 1:
        denominator = workload_below(m, d)
        f_down = inputs.remaining_below / denominator if denominator else 0.0
        down_term = inputs.p_down * f_down * downward_saving_factor(m)

    up_term = 0.0
    if m < d:
        denominator = workload_above(m, d)
        f_up = inputs.remaining_above / denominator if denominator else 0.0
        up_term = inputs.p_up * f_up * upward_saving_factor(m, d)

    if m == 1:
        return up_term
    if m == d:
        return down_term
    return down_term + up_term

"""Result refinement — Section 3.4.

A point's outlying-subspace set is upward closed: every superset of an
outlying subspace is outlying (Property 2). Returning all of them would
drown the user, so HOS-Miner's filter keeps only the *minimal* ones —
the antichain of lowest-dimensional outlying subspaces from which the
rest can be inferred.

The paper's procedure is an upward sweep: examine candidates in
ascending dimensionality and discard any that is a superset of an
already-kept subspace. The worked example (d = 4) — candidates
``[1,3], [2,4], [1,2,3], [1,2,4], [1,3,4], [2,3,4], [1,2,3,4]`` reduce
to ``[1,3]`` and ``[2,4]`` — is pinned in ``tests/test_filtering.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.subspace import Subspace, is_subset, popcount

__all__ = [
    "minimal_masks",
    "minimal_subspaces",
    "is_antichain",
    "covers",
    "expand_upward",
]


def minimal_masks(masks: Iterable[int]) -> list[int]:
    """Reduce a set of subspace masks to its minimal antichain.

    Runs the paper's upward sweep: ascending by dimensionality (ties by
    mask value, for determinism), a candidate survives only if no kept
    subspace is a subset of it. Duplicates collapse naturally.
    """
    kept: list[int] = []
    for mask in sorted(set(masks), key=lambda m: (popcount(m), m)):
        if not any(is_subset(kept_mask, mask) for kept_mask in kept):
            kept.append(mask)
    return kept


def minimal_subspaces(subspaces: Iterable[Subspace]) -> list[Subspace]:
    """Wrapper-typed variant of :func:`minimal_masks`."""
    subspaces = list(subspaces)
    if not subspaces:
        return []
    d = subspaces[0].d
    return [Subspace(mask, d) for mask in minimal_masks(s.mask for s in subspaces)]


def is_antichain(masks: Sequence[int]) -> bool:
    """Whether no mask in the collection contains another — the
    correctness invariant of the filter output."""
    masks = list(masks)
    for i, a in enumerate(masks):
        for b in masks[i + 1 :]:
            if is_subset(a, b) or is_subset(b, a):
                return False
    return True


def covers(minimal: Sequence[int], full: Iterable[int]) -> bool:
    """Whether every mask of *full* is a superset of some mask in
    *minimal* — i.e. the filter lost no information."""
    return all(
        any(is_subset(kept, mask) for kept in minimal) for mask in full
    )


def expand_upward(minimal: Sequence[int], d: int) -> set[int]:
    """Reconstruct the full upward-closed outlying set from its minimal
    antichain — the inverse of the filter, used to answer "is subspace s
    outlying?" from a stored result without re-searching."""
    from repro.core.subspace import iter_supermasks

    expanded: set[int] = set()
    for mask in minimal:
        expanded.update(iter_supermasks(mask, d))
    return expanded

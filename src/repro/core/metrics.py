"""Distance metrics with subspace projection and MBR lower bounds.

The outlying degree of HOS-Miner is a sum of point-to-point distances in
a *projected* space, so every metric here exposes three views of the same
distance:

``pairwise(X, q, dims)``
    Vectorised distances from query ``q`` to every row of ``X`` using only
    the dimensions in ``dims`` — the workhorse of the linear-scan kNN
    backend.
``point(a, b, dims)``
    Scalar distance between two vectors, restricted to ``dims``.
``mindist(q, lower, upper, dims)``
    Lower bound of the distance between ``q`` and any point inside the
    axis-aligned box ``[lower, upper]``, restricted to ``dims`` — the
    pruning bound used by the tree-based kNN search (the classic MINDIST
    of Roussopoulos et al., projected onto a subspace).

Built-in metrics additionally implement two optional batched views:

``pairwise_many(X, Q, dims)``
    Distances from every row of ``Q`` to every row of ``X`` in one
    broadcasted pass, shape ``(m, n)`` — the cross-query axis of the
    batched engine.
``pairwise_components(X, q)`` / ``reduce_components(gathered)``
    The cross-subspace axis: ``pairwise_components`` precomputes the
    per-dimension distance contribution of every ``(row, dim)`` pair
    for one query (shape ``(n, d)``); ``reduce_components`` reduces a
    gathered ``(..., t)`` block of those contributions over its last
    axis into distances. An
    L_p distance over a subspace is a reduction of fixed per-dimension
    terms, so one component matrix serves *every* subspace evaluation
    of that query.
``finalize_component_sums(sums)``
    The GEMM hook: turns *already-summed* component totals into
    distances (``sqrt`` for L2, identity for L1, ``s**(1/p)`` for
    general L_p). Metrics whose subspace distance is a monotone
    function of a plain **sum** of per-dimension components expose it,
    which lets the level-wide OD kernel obtain every subspace's
    component totals in one BLAS ``C @ M`` product over a 0/1 mask
    matrix. Chebyshev reduces with ``max`` rather than ``+`` and so has
    no such hook — :func:`resolve_kernel` routes it (and custom
    metrics) to the exact per-mask kernel.

Vectorised callers probe for these with ``getattr`` and fall back to
per-query/per-subspace ``pairwise`` calls, so custom metrics keep
working without them. The batched arithmetic performs the same
elementwise operations and reduction order as the single-query path, so
all views produce bit-identical distances. The GEMM view is the one
exception: BLAS accumulates the per-dimension sum in its own order, so
its distances agree with the exact views only to float tolerance —
callers that make threshold decisions on GEMM output re-verify
near-threshold values with the exact kernel (see
:meth:`repro.core.od.ODEvaluator.od_many`).

Monotonicity
------------
HOS-Miner's pruning rules require ``Dist_s1(a, b) >= Dist_s2(a, b)``
whenever ``s1 ⊇ s2``. Every L_p metric (including L∞) satisfies this:
adding coordinates can only add non-negative contributions. The property
is verified for all shipped metrics by hypothesis tests
(``tests/test_metrics.py``).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "KERNELS",
    "get_metric",
    "resolve_kernel",
    "supports_gemm_kernel",
    "METRIC_REGISTRY",
]

#: Valid OD-kernel selectors: ``"auto"`` picks GEMM when the metric
#: supports it, ``"gemm"`` demands it (loud error otherwise),
#: ``"exact"`` always runs the bit-exact per-mask kernel.
KERNELS = ("auto", "gemm", "exact")


@runtime_checkable
class Metric(Protocol):
    """Structural protocol every distance metric implements."""

    name: str

    def pairwise(self, X: np.ndarray, q: np.ndarray, dims: Sequence[int]) -> np.ndarray:
        """Distances from ``q`` to every row of ``X`` over ``dims``."""

    def point(self, a: np.ndarray, b: np.ndarray, dims: Sequence[int]) -> float:
        """Distance between two points over ``dims``."""

    def mindist(
        self,
        q: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        dims: Sequence[int],
    ) -> float:
        """Lower bound to any point inside box ``[lower, upper]`` over ``dims``."""


def _as_index(dims) -> np.ndarray:
    """Normalise any dims sequence into a fancy-indexing-safe array.

    Plain tuples would be interpreted as multi-dimensional indices by
    numpy (``a[(0, 1)] == a[0, 1]``), so every metric entry point runs
    its dims through this helper.
    """
    return np.asarray(dims, dtype=np.intp)


def _gaps(q: np.ndarray, lower: np.ndarray, upper: np.ndarray, dims: np.ndarray) -> np.ndarray:
    """Per-dimension axis gaps between a point and a box (0 inside)."""
    ql = q[dims]
    below = lower[dims] - ql
    above = ql - upper[dims]
    return np.maximum(0.0, np.maximum(below, above))


class EuclideanMetric:
    """The L2 metric — the paper's default ``Dist``."""

    name = "euclidean"

    def pairwise(self, X: np.ndarray, q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        diff = X[:, dims] - q[dims]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def pairwise_many(self, X: np.ndarray, Q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        diff = Q[:, None, dims] - X[None, :, dims]
        return np.sqrt(np.einsum("mnj,mnj->mn", diff, diff))

    def pairwise_components(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        diff = X - q
        return diff * diff

    def reduce_components(self, gathered: np.ndarray) -> np.ndarray:
        # Sequential einsum reduction — the same accumulation order as
        # pairwise's "ij,ij->i", so distances match bit-for-bit.
        return np.sqrt(np.einsum("...t->...", gathered))

    def finalize_component_sums(self, sums: np.ndarray) -> np.ndarray:
        return np.sqrt(sums)

    def point(self, a: np.ndarray, b: np.ndarray, dims) -> float:
        dims = _as_index(dims)
        diff = a[dims] - b[dims]
        return float(math.sqrt(float(np.dot(diff, diff))))

    def mindist(self, q, lower, upper, dims) -> float:
        gaps = _gaps(q, lower, upper, _as_index(dims))
        return float(math.sqrt(float(np.dot(gaps, gaps))))


class ManhattanMetric:
    """The L1 (city-block) metric."""

    name = "manhattan"

    def pairwise(self, X: np.ndarray, q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        return np.abs(X[:, dims] - q[dims]).sum(axis=1)

    def pairwise_many(self, X: np.ndarray, Q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        return np.abs(X[None, :, dims] - Q[:, None, dims]).sum(axis=2)

    def pairwise_components(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.abs(X - q)

    def reduce_components(self, gathered: np.ndarray) -> np.ndarray:
        # Same contiguous last-axis np.sum as pairwise's sum(axis=1).
        return gathered.sum(axis=-1)

    def finalize_component_sums(self, sums: np.ndarray) -> np.ndarray:
        return sums

    def point(self, a, b, dims) -> float:
        dims = _as_index(dims)
        return float(np.abs(a[dims] - b[dims]).sum())

    def mindist(self, q, lower, upper, dims) -> float:
        return float(_gaps(q, lower, upper, _as_index(dims)).sum())


class ChebyshevMetric:
    """The L∞ metric (maximum coordinate difference)."""

    name = "chebyshev"

    def pairwise(self, X: np.ndarray, q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        return np.abs(X[:, dims] - q[dims]).max(axis=1)

    def pairwise_many(self, X: np.ndarray, Q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        return np.abs(X[None, :, dims] - Q[:, None, dims]).max(axis=2)

    def pairwise_components(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.abs(X - q)

    def reduce_components(self, gathered: np.ndarray) -> np.ndarray:
        return gathered.max(axis=-1)

    def point(self, a, b, dims) -> float:
        dims = _as_index(dims)
        return float(np.abs(a[dims] - b[dims]).max())

    def mindist(self, q, lower, upper, dims) -> float:
        gaps = _gaps(q, lower, upper, _as_index(dims))
        return float(gaps.max()) if gaps.size else 0.0


class MinkowskiMetric:
    """The general L_p metric for ``p >= 1``.

    ``p=2`` and ``p=1`` are better served by the dedicated classes above
    (they avoid the generic power computations), but any ``p`` remains
    monotone under subspace inclusion and is therefore safe for pruning.
    """

    def __init__(self, p: float) -> None:
        if p < 1:
            raise ConfigurationError(f"Minkowski order must be >= 1, got {p}")
        self.p = float(p)
        self.name = f"minkowski(p={self.p:g})"

    def pairwise(self, X: np.ndarray, q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        diff = np.abs(X[:, dims] - q[dims])
        return np.power(np.power(diff, self.p).sum(axis=1), 1.0 / self.p)

    def pairwise_many(self, X: np.ndarray, Q: np.ndarray, dims) -> np.ndarray:
        dims = _as_index(dims)
        diff = np.abs(X[None, :, dims] - Q[:, None, dims])
        return np.power(np.power(diff, self.p).sum(axis=2), 1.0 / self.p)

    def pairwise_components(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.power(np.abs(X - q), self.p)

    def reduce_components(self, gathered: np.ndarray) -> np.ndarray:
        return np.power(gathered.sum(axis=-1), 1.0 / self.p)

    def finalize_component_sums(self, sums: np.ndarray) -> np.ndarray:
        return np.power(sums, 1.0 / self.p)

    def point(self, a, b, dims) -> float:
        dims = _as_index(dims)
        diff = np.abs(a[dims] - b[dims])
        return float(np.power(np.power(diff, self.p).sum(), 1.0 / self.p))

    def mindist(self, q, lower, upper, dims) -> float:
        gaps = _gaps(q, lower, upper, _as_index(dims))
        return float(np.power(np.power(gaps, self.p).sum(), 1.0 / self.p))


METRIC_REGISTRY: dict[str, type] = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "l1": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
}


def supports_gemm_kernel(metric: Metric) -> bool:
    """Whether *metric* can serve the GEMM (level-wide) OD kernel.

    Requires both halves of the linear component decomposition: a
    per-dimension component matrix (``pairwise_components``) and a
    monotone finalizer of plain component *sums*
    (``finalize_component_sums``). Chebyshev (max-reduction) and custom
    metrics without the hooks fail this test and run on the exact
    kernel instead.
    """
    return hasattr(metric, "pairwise_components") and hasattr(
        metric, "finalize_component_sums"
    )


def resolve_kernel(kernel: str, metric: Metric) -> str:
    """Resolve an OD-kernel selector against a metric's capabilities.

    ``"auto"`` silently falls back to ``"exact"`` when the metric lacks
    a GEMM-compatible decomposition; an explicit ``"gemm"`` request
    fails loudly instead — a caller who demanded the fast kernel must
    not silently get the slow one.
    """
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )
    if kernel == "exact":
        return "exact"
    if supports_gemm_kernel(metric):
        return "gemm"
    if kernel == "gemm":
        name = getattr(metric, "name", repr(metric))
        raise ConfigurationError(
            f"kernel='gemm' requires a metric with a linear component "
            f"decomposition (pairwise_components + finalize_component_sums); "
            f"metric {name!r} reduces components with a non-additive rule or "
            f"lacks the hooks — use kernel='auto' or kernel='exact'"
        )
    return "exact"


def get_metric(metric: "Metric | str") -> Metric:
    """Resolve a metric instance from a name or pass an instance through.

    Accepted names: ``euclidean``/``l2``, ``manhattan``/``l1``,
    ``chebyshev``/``linf``, and ``minkowski:<p>`` (e.g. ``minkowski:3``).
    """
    if isinstance(metric, str):
        key = metric.strip().lower()
        if key.startswith("minkowski:"):
            try:
                order = float(key.split(":", 1)[1])
            except ValueError as exc:
                raise ConfigurationError(f"bad Minkowski order in {metric!r}") from exc
            return MinkowskiMetric(order)
        if key not in METRIC_REGISTRY:
            known = ", ".join(sorted(set(METRIC_REGISTRY)))
            raise ConfigurationError(f"unknown metric {metric!r}; known: {known}")
        return METRIC_REGISTRY[key]()
    if isinstance(metric, Metric):
        return metric
    raise ConfigurationError(f"not a metric: {metric!r}")

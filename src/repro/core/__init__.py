"""The paper's primary contribution: outlying-subspace detection.

Modules map one-to-one onto the paper's sections:

======================  =========================================
``od``                  Outlying Degree measure (Section 2)
``savings``             DSF / USF / TSF (Definitions 1–3)
``lattice``             subspace state + pruning (Section 3.1)
``learning``            sample-based learning (Section 3.2)
``search``              dynamic subspace search (Section 3.3)
``filtering``           result refinement (Section 3.4)
``miner``               the four-module system (Figure 2)
======================  =========================================
"""

from repro.core.batch import BatchQueryEngine
from repro.core.config import HOSMinerConfig
from repro.core.exceptions import (
    ConfigurationError,
    DataShapeError,
    DimensionalityError,
    HOSMinerError,
    NotFittedError,
    SearchBudgetExceeded,
)
from repro.core.filtering import minimal_masks, minimal_subspaces
from repro.core.io import load_miner, result_from_dict, result_to_dict, save_miner
from repro.core.learning import LearningReport, learn_priors
from repro.core.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
)
from repro.core.miner import HOSMiner, calibrate_threshold
from repro.core.od import ODEvaluator, SharedODCache, outlying_degree
from repro.core.priors import PruningPriors
from repro.core.profile import LevelProfile, ODProfile, compute_od_profile
from repro.core.ranking import RankedSubspace, top_n_outlying_subspaces
from repro.core.result import BatchResult, OutlyingSubspaceResult
from repro.core.savings import (
    downward_saving_factor,
    total_saving_factor,
    TSFInputs,
    upward_saving_factor,
)
from repro.core.search import DynamicSubspaceSearch, SearchOutcome, SearchStats
from repro.core.stream import StreamEngine
from repro.core.subspace import Subspace

__all__ = [
    "BatchQueryEngine",
    "BatchResult",
    "ChebyshevMetric",
    "ConfigurationError",
    "DataShapeError",
    "DimensionalityError",
    "DynamicSubspaceSearch",
    "EuclideanMetric",
    "HOSMiner",
    "HOSMinerConfig",
    "HOSMinerError",
    "LearningReport",
    "LevelProfile",
    "ManhattanMetric",
    "Metric",
    "MinkowskiMetric",
    "NotFittedError",
    "ODEvaluator",
    "ODProfile",
    "OutlyingSubspaceResult",
    "PruningPriors",
    "RankedSubspace",
    "SearchBudgetExceeded",
    "SearchOutcome",
    "SearchStats",
    "SharedODCache",
    "StreamEngine",
    "Subspace",
    "TSFInputs",
    "calibrate_threshold",
    "compute_od_profile",
    "downward_saving_factor",
    "get_metric",
    "learn_priors",
    "load_miner",
    "minimal_masks",
    "minimal_subspaces",
    "outlying_degree",
    "result_from_dict",
    "result_to_dict",
    "save_miner",
    "top_n_outlying_subspaces",
    "total_saving_factor",
    "upward_saving_factor",
]

"""The mixed-precision tier under the OD-kernel knob.

The GEMM OD kernel (PR 2) made level-wide evaluation one BLAS product;
this module adds the *raw-speed tier below it* (ROADMAP item 3): run the
``M @ C.T`` product in float32 and keep the answer set provably
identical to the float64 kernel by re-verifying, in exact float64, only
the masks whose OD lands inside a rigorous rounding-error band around
the threshold. The same "cheap value first, exact check only near the
decision boundary" discipline that already makes the GEMM kernel an
exact drop-in extends unchanged — only the band is wider.

Error-bound derivation (:func:`reverify_rtol`)
----------------------------------------------
Let ``u = 2**-24`` (float32 unit roundoff) and ``d`` the data
dimensionality. One float32 component sum for a mask with ``|s| <= d``
dimensions is a dot product of a 0/1 mask row (exact in float32) with a
component row cast from float64:

* the cast perturbs each non-negative component by at most a factor
  ``(1 + u)``;
* accumulating ``<= d`` products adds at most the standard factor
  ``(1 + gamma_d)`` with ``gamma_d = d*u / (1 - d*u)`` (Higham, §3.1;
  blocked/FMA BLAS summation only tightens it).

So each float32 component sum ``a32`` satisfies ``a32 = a*(1 + e_i)``
with ``|e_i| <= e = (1+u)*(1+gamma_d) - 1``, components being
non-negative for every L_p metric.

Top-k selection error is *absorbed* by the same bound: let ``A`` be the
k component sums the exact kernel selects (the k smallest) and ``B`` the
k the float32 kernel selects (the k smallest *perturbed* sums), and let
``f`` be the metric's monotone non-negative finalizer (identity, sqrt,
or ``x**(1/p)``, which only shrink relative error). Then

* upper: ``B`` minimises the perturbed selection, so
  ``sum_B f(a32) <= sum_A f(a32) <= sum_A f(a*(1+e)) <= OD*(1+e)``;
* lower: ``A`` minimises the exact selection, so
  ``sum_B f(a32) >= sum_B f(a*(1-e)) >= sum_A f(a*(1-e)) >= OD*(1-e)``

(using monotonicity of ``f`` and ``f(x*(1+e)) <= f(x)*(1+e)`` for the
L_p roots). Hence the float32 OD value ``v32`` satisfies
``|v32 - v64| <= e * v64`` regardless of which neighbours float32
selected — one d-dependent band certifies threshold decisions *and*
covers any uncertifiable top-k prefix ordering, because a mask whose
prefix selection differed can only matter if its OD moved across ``T``,
which the band catches.

:func:`reverify_rtol` returns ``8 * e`` — a conservative safety factor
that also covers the ``e/(1-e)`` asymmetry of banding on the *computed*
value rather than the exact one, and the (float64, hence ~1e9x smaller)
noise of the final k-term summation. Values that are not finite
(float32 overflow to ``inf``) are always re-verified
(:func:`repro.core.od.near_threshold` treats them as in-band), so the
bound never needs to hold for them.

Resolution semantics (:func:`resolve_precision`)
------------------------------------------------
The precision tier rides the GEMM kernel: the exact kernel *is* the
float64 reference, so any non-GEMM kernel resolves to ``"float64"``
without error (this keeps ``HOSMINER_PRECISION=float32`` runs of
exact-kernel configurations valid instead of loudly failing).
``"auto"`` picks float32 under the GEMM kernel — the answer set is
identical by construction, so the fast tier is the sensible default.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError

__all__ = [
    "FLOAT32_UNIT_ROUNDOFF",
    "PRECISIONS",
    "reverify_rtol",
    "resolve_precision",
]

#: Valid values of the ``precision`` knob.
PRECISIONS = ("auto", "float64", "float32")

#: Unit roundoff of IEEE-754 binary32 (round-to-nearest).
FLOAT32_UNIT_ROUNDOFF = 2.0**-24

#: Safety factor on the derived bound — covers banding on the computed
#: value (``e/(1-e)``), float64 finalize/sum noise, and leaves slack for
#: BLAS kernels whose accumulation order we do not control.
_SAFETY = 8.0


def resolve_precision(precision: str, kernel: str) -> str:
    """Resolve the ``precision`` knob against a *resolved* kernel.

    Returns ``"float64"`` or ``"float32"``. Any kernel other than
    ``"gemm"`` computes in float64 by definition, so the knob resolves
    to ``"float64"`` there; under the GEMM kernel ``"auto"`` selects
    float32 (answers are identical either way — only speed changes).
    """
    if precision not in PRECISIONS:
        raise ConfigurationError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    if kernel != "gemm" or precision == "float64":
        return "float64"
    return "float32"


def reverify_rtol(precision: str, d: int, float64_rtol: float = 1e-9) -> float:
    """Relative half-width of the exact re-verification band.

    For ``precision="float64"`` this is the legacy GEMM band
    (*float64_rtol*, see :data:`repro.core.od.GEMM_REVERIFY_RTOL`); for
    ``"float32"`` it is the rigorous d-dependent rounding bound derived
    in the module docstring, never narrower than the float64 band.
    """
    if precision != "float32":
        return float64_rtol
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    u = FLOAT32_UNIT_ROUNDOFF
    du = d * u
    if du >= 0.5:  # d ~ 8e6: float32 accumulation is meaningless there
        raise ConfigurationError(
            f"d={d} is too large for a rigorous float32 GEMM bound"
        )
    gamma_d = du / (1.0 - du)
    e = (1.0 + u) * (1.0 + gamma_d) - 1.0
    return max(_SAFETY * e, float64_rtol)

"""Persistent sharded scatter-gather execution engine.

OD scores are additive over data points: the sum of a query's ``k``
smallest subspace distances depends only on the *multiset* of per-point
distances, and the k smallest of a union of per-shard sorted k-prefixes
is exactly the global k smallest (the same argument that makes the
column-blocked level GEMM of
:meth:`~repro.index.linear.LinearScanIndex._level_prefix` value-identical
to the unblocked product — the reduction axis ``d`` is never split, so
every per-shard distance equals the corresponding full-scan distance).
That makes row sharding an *exact* scale-out axis, and this module is
its runtime:

:class:`ShardPool`
    Spawned once per fitted miner and reused across every
    ``query_batch`` call. The dataset is split into contiguous row
    shards, each copied once into a ``multiprocessing.shared_memory``
    segment; one long-lived worker process attaches to each segment and
    builds a shard-local backend over the mapped rows (zero-copy for the
    linear scan — ``np.ascontiguousarray`` of an aligned float64 view is
    the view itself). Per round, only masks + query rows cross the pipe
    (never data rows — ``bytes_shipped`` is counter-asserted independent
    of ``n`` in the tests), each shard answers with its local sorted
    k-nearest distance prefixes under the miner's ``kernel``/
    ``precision``/top-k knobs, and the coordinator performs an exact
    k-way streaming merge (:func:`merge_prefixes`, the PR 4 k-prefix
    merge machinery) so every OD value is element-wise identical to the
    sequential kernels.

:class:`QuerySplitPool`
    The legacy ``shard="queries"`` fallback — each worker holds a full
    miner copy and serves whole queries — kept behind the same
    persistent lifecycle so repeated batches stop paying the old
    per-call executor spin-up and miner re-pickle.

Lifecycle: both pools expose explicit ``close()`` and the context-manager
protocol; teardown also runs via ``weakref.finalize`` (which covers both
garbage collection and ``atexit``), guarded by the owning PID so forked
children can never unlink a parent's live segments. ``close()`` is
idempotent; using a closed pool raises a loud
:class:`~repro.core.exceptions.ConfigurationError`. A worker-side
exception is caught in the worker, shipped back, and re-raised at the
coordinator — the pool itself survives and keeps serving.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pipe, Process
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.index import make_backend
from repro.index.base import components32_from
from repro.index.topk import topk_prefix

if TYPE_CHECKING:
    from repro.core.miner import HOSMiner

__all__ = ["ShardPool", "QuerySplitPool", "merge_prefixes", "shard_bounds"]

#: Worker-side cap on cached per-query component matrices (an ``(n_s, d)``
#: float64 block per distinct query point; hot traffic repeats points, so
#: a small FIFO covers the working set without unbounded growth).
COMPONENT_CACHE_ENTRIES = 64


def shard_bounds(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges for up to *workers* shards.

    Mirrors ``np.array_split`` sizing; shards are never empty, so fewer
    than *workers* shards come back when ``n < workers``.
    """
    shards = max(1, min(workers, n))
    base, extra = divmod(n, shards)
    bounds = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def merge_prefixes(parts: Sequence[np.ndarray], k: int) -> np.ndarray:
    """Exact k-way merge of per-shard sorted distance prefixes.

    *parts* are ``(q, m, k)`` blocks, each row sorted ascending and
    inf-padded where a shard holds fewer than ``k`` candidates. The k
    smallest of the union of per-shard k-prefixes is the global
    k-prefix, so the merged result equals what one scan of the full
    dataset would have produced — value-identical, because every shard
    distance equals the corresponding full-scan distance (per-row
    arithmetic never crosses shard boundaries).
    """
    merged = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=-1)
    q, m, width = merged.shape
    if width > k:
        flat = topk_prefix(merged.reshape(q * m, width), k, "partition")
        merged = flat.reshape(q, m, k)
    return merged


def _attach_segment(name: str, n: int, d: int):
    """Map a shard segment as an ``(n, d)`` float64 array (worker side)."""
    # Workers are forked, so they share the coordinator's resource
    # tracker: this attach re-registers a name the tracker already
    # holds (a set — idempotent), and the coordinator's unlink
    # unregisters it exactly once. No worker-side bookkeeping needed.
    segment = shared_memory.SharedMemory(name=name)
    rows = np.ndarray((n, d), dtype=np.float64, buffer=segment.buf)
    return segment, rows


def _local_prefixes(
    backend,
    queries: np.ndarray,
    dims_list: "list[np.ndarray]",
    k: int,
    excludes: "list[int | None]",
    kernel: str,
    precision: str,
    cache: dict,
) -> np.ndarray:
    """One shard's sorted k-nearest distance prefixes, ``(q, m, k)``.

    Rows are inf-padded when the shard holds fewer than ``k`` candidate
    points — the coordinator's merge drowns the padding in the other
    shards' finite values. Backends with the level-wide
    ``knn_distance_prefix`` kernel answer all masks at once (the linear
    scan under the fitted ``kernel``/``precision`` tier, the VA-file via
    its candidate prefilter); any other backend falls back to per-mask
    ``knn``, which is exact by construction.
    """
    q_count = queries.shape[0]
    m = len(dims_list)
    out = np.full((q_count, m, k), np.inf)
    prefix_fn = getattr(backend, "knn_distance_prefix", None)
    has_components = hasattr(backend, "distance_components")
    for i in range(q_count):
        query = queries[i]
        exclude = excludes[i]
        available = backend.size - (1 if exclude is not None else 0)
        k_local = min(k, available)
        if k_local < 1:
            continue
        if prefix_fn is not None:
            components = components32 = None
            if has_components:
                key = query.tobytes()
                entry = cache.get(key)
                if entry is None:
                    components = backend.distance_components(query)
                    if precision == "float32" and components is not None:
                        components32 = components32_from(components)
                    if len(cache) >= COMPONENT_CACHE_ENTRIES:
                        cache.pop(next(iter(cache)))
                    cache[key] = (components, components32)
                else:
                    components, components32 = entry
            out[i, :, :k_local] = prefix_fn(
                query,
                k_local,
                dims_list,
                exclude=exclude,
                components=components,
                kernel=kernel,
                precision=precision,
                components32=components32,
            )
        else:
            for j, dims in enumerate(dims_list):
                _, distances = backend.knn(query, k_local, dims, exclude=exclude)
                out[i, j, : distances.size] = distances
    return out


def _shard_worker(conn, segment_name: str, n: int, d: int, spec: dict) -> None:
    """Long-lived shard worker: attach, build the local backend, serve.

    Any exception inside a work unit is shipped back as an ``("err",
    exc)`` reply instead of killing the process, so the pool survives
    malformed requests. A ``None`` message is the shutdown sentinel.
    """
    segment, rows = _attach_segment(segment_name, n, d)
    backend = make_backend(
        spec["index"], rows, metric=spec["metric"], **spec["index_options"]
    )
    cache: dict = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                queries, dims_list, k, excludes, kernel, precision = message
                reply = (
                    "ok",
                    _local_prefixes(
                        backend, queries, dims_list, k, excludes, kernel,
                        precision, cache,
                    ),
                )
            except Exception as exc:  # ship it back; the pool survives
                reply = ("err", exc)
            try:
                conn.send(reply)
            except Exception:
                # Unpicklable payload (exotic exception): degrade to a
                # picklable stand-in rather than desynchronise the pipe.
                conn.send(("err", ConfigurationError(repr(reply[1]))))
    finally:
        conn.close()
        backend = None
        rows = None
        cache.clear()
        try:
            segment.close()
        except BufferError:
            # A lingering view keeps the mapping alive; process exit
            # releases it either way.
            pass


def _release_shards(owner_pid, conns, procs, segments) -> None:
    """Tear down workers and unlink segments (coordinator side only).

    Runs at most once per pool via ``weakref.finalize`` — explicit
    ``close()``, garbage collection and ``atexit`` all funnel here. The
    PID guard keeps forked children (the query-split workers inherit the
    parent's pool handles) from unlinking segments they do not own.
    """
    if os.getpid() != owner_pid:
        return
    for conn in conns:
        try:
            conn.send(None)
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            pass


class ShardPool:
    """Persistent row-sharded worker pool with shared-memory shards.

    Parameters
    ----------
    X:
        The fitted ``(n, d)`` dataset; rows are copied once into one
        shared-memory segment per shard (the only time data moves).
    workers:
        Requested shard count; capped at ``n`` (shards are never empty).
        :attr:`workers` reports the actual count.
    index, metric, index_options:
        Shard-local backend construction, mirroring the miner's fit.

    The pool is kernel-agnostic: every scatter carries its own
    ``kernel``/``precision`` pair, so the engine can run GEMM rounds and
    exact re-verification rounds through the same workers.
    """

    def __init__(
        self,
        X: np.ndarray,
        workers: int,
        *,
        index: str = "linear",
        metric: object = "euclidean",
        index_options: "dict | None" = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise ConfigurationError(
                f"expected a non-empty (n, d) matrix, got shape {X.shape}"
            )
        self.workers_requested = workers
        self.n, self.d = X.shape
        self._bounds = shard_bounds(self.n, workers)
        self.round_trips = 0
        self.bytes_shipped = 0
        spec = {
            "index": index,
            "metric": metric,
            "index_options": dict(index_options or {}),
        }

        segments: list[shared_memory.SharedMemory] = []
        conns = []
        procs: list[Process] = []
        try:
            for lo, hi in self._bounds:
                block = X[lo:hi]
                segment = shared_memory.SharedMemory(
                    create=True, size=block.nbytes
                )
                view = np.ndarray(block.shape, dtype=np.float64, buffer=segment.buf)
                view[:] = block
                del view
                parent_conn, child_conn = Pipe()
                proc = Process(
                    target=_shard_worker,
                    args=(child_conn, segment.name, hi - lo, self.d, spec),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                segments.append(segment)
                conns.append(parent_conn)
                procs.append(proc)
        except Exception:
            _release_shards(os.getpid(), conns, procs, segments)
            raise
        self._segments = segments
        self._conns = conns
        self._procs = procs
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_shards, os.getpid(), conns, procs, segments
        )

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Actual shard count (``min(workers_requested, n)``)."""
        return len(self._bounds)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> list[str]:
        """Names of the shared-memory segments (for leak assertions)."""
        return [segment.name for segment in self._segments]

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "ShardPool is closed — create a new pool (HOSMiner spawns "
                "one automatically on the next query_batch call)"
            )

    # ------------------------------------------------------------------
    def scatter_prefixes(
        self,
        queries: np.ndarray,
        dims_list: "Sequence[np.ndarray]",
        k: int,
        excludes: "Sequence[int | None]",
        kernel: str,
        precision: str,
    ) -> np.ndarray:
        """One scatter-gather round: merged ``(q, m, k)`` global prefixes.

        Ships ``(queries, masks)`` to every shard, gathers per-shard
        sorted k-nearest partials and merges them exactly. Shipped bytes
        (request broadcast + replies) accumulate on
        :attr:`bytes_shipped`; each call counts one
        :attr:`round_trips`. Worker exceptions are re-raised here after
        *all* replies are drained, keeping every pipe in sync — the pool
        stays usable.
        """
        self._require_open()
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        dims_list = [np.asarray(dims, dtype=np.intp) for dims in dims_list]
        excludes = list(excludes)
        request_bytes = queries.nbytes + sum(dims.nbytes for dims in dims_list)
        shipped = 0
        for s, conn in enumerate(self._conns):
            lo, hi = self._bounds[s]
            local = [
                ex - lo if ex is not None and lo <= ex < hi else None
                for ex in excludes
            ]
            try:
                conn.send((queries, dims_list, k, local, kernel, precision))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise ConfigurationError(
                    f"shard worker {s} is gone ({exc!r}); pool closed"
                ) from exc
            shipped += request_bytes
        parts: list[np.ndarray] = []
        errors: list[Exception] = []
        for s, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise ConfigurationError(
                    f"shard worker {s} died mid-round ({exc!r}); pool closed"
                ) from exc
            if status == "ok":
                parts.append(payload)
                shipped += payload.nbytes
            else:
                errors.append(payload)
        self.round_trips += 1
        self.bytes_shipped += shipped
        if errors:
            raise errors[0]
        return merge_prefixes(parts, k)

    def scatter_sums(
        self,
        queries: np.ndarray,
        dims_list: "Sequence[np.ndarray]",
        k: int,
        excludes: "Sequence[int | None]",
        kernel: str,
        precision: str,
    ) -> np.ndarray:
        """Merged OD sums, ``(q, m)`` — ascending sums of the global
        k-prefixes, the same accumulation order as the sequential
        kernels (hence the same float64 result)."""
        prefixes = self.scatter_prefixes(
            queries, dims_list, k, excludes, kernel, precision
        )
        return prefixes.sum(axis=-1)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent teardown: stop workers, close + unlink segments."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ShardPool({state}, workers={self.workers}, n={self.n}, "
            f"d={self.d}, round_trips={self.round_trips})"
        )


def _shutdown_executor(owner_pid: int, executor: ProcessPoolExecutor) -> None:
    """Finalizer of the query-split executor (PID-guarded like shards)."""
    if os.getpid() != owner_pid:
        return
    executor.shutdown(wait=True, cancel_futures=True)


class QuerySplitPool:
    """Persistent executor for the ``shard="queries"`` fallback.

    The miner is shipped to each worker exactly once, through the
    executor initializer, when the pool is created — not per
    ``query_batch`` call as the old engine did. Subsequent batches only
    ship ``(queries, excludes)`` slices. The owning miner closes the
    pool whenever its fitted state changes (refit / ``extend``), so a
    live pool never serves a stale miner.
    """

    def __init__(self, miner: "HOSMiner", workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        from repro.core.batch import _init_worker

        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(miner,)
        )
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, os.getpid(), self._executor
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn, *args):
        if self._closed:
            raise ConfigurationError(
                "QuerySplitPool is closed — create a new pool (HOSMiner "
                "spawns one automatically on the next query_batch call)"
            )
        return self._executor.submit(fn, *args)

    def close(self) -> None:
        """Idempotent executor shutdown."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "QuerySplitPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"QuerySplitPool({state}, workers={self.workers})"

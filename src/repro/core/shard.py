"""Persistent sharded scatter-gather execution engine, fault-tolerant.

OD scores are additive over data points: the sum of a query's ``k``
smallest subspace distances depends only on the *multiset* of per-point
distances, and the k smallest of a union of per-shard sorted k-prefixes
is exactly the global k smallest (the same argument that makes the
column-blocked level GEMM of
:meth:`~repro.index.linear.LinearScanIndex._level_prefix` value-identical
to the unblocked product — the reduction axis ``d`` is never split, so
every per-shard distance equals the corresponding full-scan distance).
That makes row sharding an *exact* scale-out axis, and this module is
its runtime:

:class:`ShardPool`
    Spawned once per fitted miner and reused across every
    ``query_batch`` call. The dataset is split into contiguous row
    shards, each copied once into a ``multiprocessing.shared_memory``
    segment; one long-lived worker process attaches to each segment and
    builds a shard-local backend over the mapped rows (zero-copy for the
    linear scan — ``np.ascontiguousarray`` of an aligned float64 view is
    the view itself). Per round, only masks + query rows cross the pipe
    (never data rows — ``bytes_shipped`` is counter-asserted independent
    of ``n`` in the tests), each shard answers with its local sorted
    k-nearest distance prefixes under the miner's ``kernel``/
    ``precision``/top-k knobs, and the coordinator performs an exact
    k-way streaming merge (:func:`merge_prefixes`) so every OD value is
    element-wise identical to the sequential kernels.

:class:`QuerySplitPool`
    The legacy ``shard="queries"`` fallback — each worker holds a full
    miner copy and serves whole queries — kept behind the same
    persistent lifecycle so repeated batches stop paying the old
    per-call executor spin-up and miner re-pickle.

Fault tolerance (the supervision triad)
---------------------------------------
A production pool cannot let one bad process take down every in-flight
query, so the coordinator supervises its workers:

*Supervision & respawn.* A dead worker is detected three ways — a send
on a broken pipe, an ``EOFError``/``OSError`` on the reply read, or a
failed health :meth:`~ShardPool.ping` — and is respawned attached to
the *existing* shared-memory segment for its row slice (the data never
moves twice). The in-flight round is replayed to the fresh worker, so
the caller never sees the crash; answers are identical because every
round is a pure function of its request.

*Deadlines & retries.* Replies are awaited with ``poll()``-based
deadlines (``timeout_s``; ``None`` disables them) instead of a blocking
``recv()``, so a *hung* worker is killed and respawned rather than
wedging the coordinator forever. Each respawn-and-replay attempt backs
off exponentially from ``backoff_s`` up to ``max_retries`` attempts per
shard per round.

*Graceful degradation.* A shard that exhausts its retry budget is
marked irrecoverable: the coordinator attaches its own view of that
shard's segment and serves the slice in-process through the same
sequential kernels the worker would have run (:func:`_local_prefixes`
— literally the same function), so answers stay element-wise identical
while throughput, not correctness, absorbs the loss. Every such round
is recorded as a degraded-round event.

All of it is observable: :attr:`~ShardPool.respawns`,
:attr:`~ShardPool.timeouts`, :attr:`~ShardPool.retries` and
:attr:`~ShardPool.degraded_rounds` accumulate on the pool, are mirrored
per batch into ``SearchStats`` and show up in
``BatchResult.summary()``. Failures are injectable deterministically
via :mod:`repro.testing.faults` (``HOSMINER_FAULTS``), which drives the
chaos test suite and the E16 robustness benchmark.

Lifecycle: both pools expose explicit ``close()`` and the context-manager
protocol; teardown also runs via ``weakref.finalize`` (which covers both
garbage collection and ``atexit``), guarded by the owning PID so forked
children can never unlink a parent's live segments. ``close()`` is
idempotent, escalates ``terminate()`` → ``kill()`` on workers that
ignore the shutdown sentinel (logging, not swallowing, any process that
survives even that), and therefore has a bounded worst-case latency.
Using a closed pool raises a loud
:class:`~repro.core.exceptions.ConfigurationError`. A worker-side
*exception* (as opposed to a worker death) is caught in the worker,
shipped back, and re-raised at the coordinator with every sibling
shard's failure attached as ``__notes__`` — the pool itself survives
and keeps serving.
"""

from __future__ import annotations

import logging
import os
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pipe, Process
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.index import make_backend
from repro.index.base import components32_from
from repro.index.topk import topk_prefix
from repro.testing.faults import FaultPlan, parse_faults

if TYPE_CHECKING:
    from repro.core.miner import HOSMiner

__all__ = ["ShardPool", "QuerySplitPool", "merge_prefixes", "shard_bounds"]

_LOGGER = logging.getLogger(__name__)

#: Worker-side cap on cached per-query component matrices (an ``(n_s, d)``
#: float64 block per distinct query point; hot traffic repeats points, so
#: a small FIFO covers the working set without unbounded growth).
COMPONENT_CACHE_ENTRIES = 64

#: Per-stage grace inside the ``close()`` escalation ladder (sentinel →
#: ``terminate()`` → ``kill()``); worst case is three stages per worker,
#: so teardown latency is bounded at a few seconds even when a worker
#: ignores everything short of SIGKILL.
CLOSE_GRACE_S = 1.0

#: Ceiling on one exponential-backoff sleep between respawn attempts.
BACKOFF_CAP_S = 2.0


def shard_bounds(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges for up to *workers* shards.

    Mirrors ``np.array_split`` sizing; shards are never empty, so fewer
    than *workers* shards come back when ``n < workers``.
    """
    shards = max(1, min(workers, n))
    base, extra = divmod(n, shards)
    bounds = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def merge_prefixes(parts: Sequence[np.ndarray], k: int) -> np.ndarray:
    """Exact k-way merge of per-shard sorted distance prefixes.

    *parts* are ``(q, m, k)`` blocks, each row sorted ascending and
    inf-padded where a shard holds fewer than ``k`` candidates. The k
    smallest of the union of per-shard k-prefixes is the global
    k-prefix, so the merged result equals what one scan of the full
    dataset would have produced — value-identical, because every shard
    distance equals the corresponding full-scan distance (per-row
    arithmetic never crosses shard boundaries).
    """
    merged = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=-1)
    q, m, width = merged.shape
    if width > k:
        flat = topk_prefix(merged.reshape(q * m, width), k, "partition")
        merged = flat.reshape(q, m, k)
    return merged


def _attach_segment(name: str, n: int, d: int):
    """Map a shard segment as an ``(n, d)`` float64 array."""
    # Workers are forked, so they share the coordinator's resource
    # tracker: this attach re-registers a name the tracker already
    # holds (a set — idempotent), and the coordinator's unlink
    # unregisters it exactly once. No worker-side bookkeeping needed.
    segment = shared_memory.SharedMemory(name=name)
    rows = np.ndarray((n, d), dtype=np.float64, buffer=segment.buf)
    return segment, rows


def _local_prefixes(
    backend,
    queries: np.ndarray,
    dims_list: "list[np.ndarray]",
    k: int,
    excludes: "list[int | None]",
    kernel: str,
    precision: str,
    cache: dict,
) -> np.ndarray:
    """One shard's sorted k-nearest distance prefixes, ``(q, m, k)``.

    Rows are inf-padded when the shard holds fewer than ``k`` candidate
    points — the coordinator's merge drowns the padding in the other
    shards' finite values. Backends with the level-wide
    ``knn_distance_prefix`` kernel answer all masks at once (the linear
    scan under the fitted ``kernel``/``precision`` tier, the VA-file via
    its candidate prefilter); any other backend falls back to per-mask
    ``knn``, which is exact by construction.

    Runs identically in a shard worker and, for a degraded shard, in
    the coordinator's in-process fallback — one code path is what keeps
    degraded answers element-wise identical to healthy ones.
    """
    q_count = queries.shape[0]
    m = len(dims_list)
    out = np.full((q_count, m, k), np.inf)
    prefix_fn = getattr(backend, "knn_distance_prefix", None)
    has_components = hasattr(backend, "distance_components")
    for i in range(q_count):
        query = queries[i]
        exclude = excludes[i]
        available = backend.size - (1 if exclude is not None else 0)
        k_local = min(k, available)
        if k_local < 1:
            continue
        if prefix_fn is not None:
            components = components32 = None
            if has_components:
                key = query.tobytes()
                entry = cache.get(key)
                if entry is None:
                    components = backend.distance_components(query)
                    if precision == "float32" and components is not None:
                        components32 = components32_from(components)
                    if len(cache) >= COMPONENT_CACHE_ENTRIES:
                        cache.pop(next(iter(cache)))
                    cache[key] = (components, components32)
                else:
                    components, components32 = entry
            out[i, :, :k_local] = prefix_fn(
                query,
                k_local,
                dims_list,
                exclude=exclude,
                components=components,
                kernel=kernel,
                precision=precision,
                components32=components32,
            )
        else:
            for j, dims in enumerate(dims_list):
                _, distances = backend.knn(query, k_local, dims, exclude=exclude)
                out[i, j, : distances.size] = distances
    return out


def _shard_worker(
    conn,
    segment_name: str,
    capacity: int,
    d: int,
    start: int,
    count: int,
    shard_id: int,
    gen: int,
    spec: dict,
) -> None:
    """Long-lived shard worker: attach, build the local backend, serve.

    The worker maps its segment at full *capacity* and serves the
    ``[start, start + count)`` row slice — the coordinator owns the
    spare capacity and may write fresh rows into it (shared memory makes
    them visible here immediately), then move the slice with a
    ``("sync", name, capacity, start, count)`` message. A same-segment
    sync that only trims the head and/or extends the tail is applied
    *incrementally* (``backend.expire`` / per-row ``backend.insert`` —
    already-served rows are never re-indexed); anything else (a regrown
    segment, a non-windowed backend) rebuilds the local backend over the
    new slice. Either way the per-query component cache is dropped: its
    ``(n_s, d)`` matrices baked in the old slice.

    Any exception inside a work unit is shipped back as an ``("err",
    exc)`` reply instead of killing the process, so the pool survives
    malformed requests. A ``None`` message is the shutdown sentinel; a
    ``"ping"`` message is the health probe (answered only once the
    segment attach and backend build have succeeded, which is what
    makes the probe meaningful). The configured fault plan is consulted
    at the attach/recv/send/sync points — inert unless a spec names this
    shard and incarnation.
    """
    plan = FaultPlan.from_spec(spec.get("faults"), shard=shard_id, gen=gen)
    plan.fire("attach")
    segment, rows = _attach_segment(segment_name, capacity, d)
    backend = make_backend(
        spec["index"],
        rows[start : start + count],
        metric=spec["metric"],
        **spec["index_options"],
    )
    cache: dict = {}
    rounds = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            if message == "ping":
                conn.send(("ok", "pong"))
                continue
            # A work unit is also a tuple, but leads with the query
            # array — only a sync message leads with the string tag.
            if isinstance(message, tuple) and message and isinstance(message[0], str):
                plan.fire("sync", rounds)
                try:
                    _, new_name, new_capacity, new_start, new_count = message
                    incremental = (
                        new_name == segment.name
                        and new_start >= start
                        and new_start + new_count >= start + count
                        and hasattr(backend, "expire")
                    )
                    if incremental:
                        for row in range(start + count, new_start + new_count):
                            backend.insert(rows[row])
                        if new_start > start:
                            backend.expire(new_start - start)
                    else:
                        if new_name != segment.name:
                            old_segment = segment
                            segment, rows = _attach_segment(new_name, new_capacity, d)
                            try:
                                old_segment.close()
                            except BufferError:
                                pass  # stale views die with the rebuild below
                        backend = make_backend(
                            spec["index"],
                            rows[new_start : new_start + new_count],
                            metric=spec["metric"],
                            **spec["index_options"],
                        )
                    start, count, capacity = new_start, new_count, new_capacity
                    cache.clear()
                    reply = ("ok", "synced")
                except Exception as exc:
                    reply = ("err", exc)
                conn.send(reply)
                continue
            rounds += 1
            plan.fire("recv", rounds)
            try:
                queries, dims_list, k, excludes, kernel, precision = message
                reply = (
                    "ok",
                    _local_prefixes(
                        backend, queries, dims_list, k, excludes, kernel,
                        precision, cache,
                    ),
                )
            except Exception as exc:  # ship it back; the pool survives
                reply = ("err", exc)
            plan.fire("send", rounds)
            try:
                conn.send(reply)
            except Exception:
                # Unpicklable payload (exotic exception): degrade to a
                # picklable stand-in rather than desynchronise the pipe.
                conn.send(("err", ConfigurationError(repr(reply[1]))))
    finally:
        conn.close()
        backend = None
        rows = None
        cache.clear()
        try:
            segment.close()
        except BufferError:
            # A lingering view keeps the mapping alive; process exit
            # releases it either way.
            pass


def _reap_process(proc: Process, grace: float = CLOSE_GRACE_S) -> None:
    """Bounded-latency worker teardown: ``terminate()`` → ``kill()``.

    Never waits more than two *grace* windows; a process that survives
    SIGKILL (unkillable D-state) is logged loudly instead of being
    silently abandoned, so operators see the leak.
    """
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=grace)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=grace)
    if proc.is_alive():
        _LOGGER.warning(
            "shard worker pid=%s ignored terminate() and kill(); abandoning "
            "the process (its shared-memory segment is unlinked regardless)",
            proc.pid,
        )


def _release_shards(owner_pid, conns, procs, segments, fallback) -> None:
    """Tear down workers and unlink segments (coordinator side only).

    Runs at most once per pool via ``weakref.finalize`` — explicit
    ``close()``, garbage collection and ``atexit`` all funnel here. The
    PID guard keeps forked children (the query-split workers inherit the
    parent's pool handles) from unlinking segments they do not own.

    Worst-case latency is bounded: the graceful sentinel gets one grace
    window per worker, then :func:`_reap_process` escalates
    ``terminate()`` → ``kill()`` with one window each and *logs* any
    worker that still refuses to die.
    """
    if os.getpid() != owner_pid:
        return
    # Degraded-shard fallback backends hold coordinator-side views into
    # the segments; drop them first so segment.close() can release.
    fallback.clear()
    for conn in conns:
        try:
            conn.send(None)
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=CLOSE_GRACE_S)
        _reap_process(proc)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            pass


class _ShardFailure(Exception):
    """Internal: shard *s* failed to deliver a reply (dead or deadline)."""

    def __init__(self, shard: int, cause: BaseException) -> None:
        super().__init__(f"shard {shard}: {cause!r}")
        self.shard = shard
        self.cause = cause


class ShardPool:
    """Persistent row-sharded worker pool with shared-memory shards.

    Parameters
    ----------
    X:
        The fitted ``(n, d)`` dataset; rows are copied once into one
        shared-memory segment per shard (the only time data moves).
    workers:
        Requested shard count; capped at ``n`` (shards are never empty).
        :attr:`workers` reports the actual count.
    index, metric, index_options:
        Shard-local backend construction, mirroring the miner's fit.
    timeout_s:
        Deadline for one worker reply (and for the post-respawn health
        ping). ``None`` disables deadlines — a hung worker then blocks
        its round forever, exactly the pre-supervision behaviour.
    max_retries:
        Respawn-and-replay attempts per shard per round before the
        shard is declared irrecoverable and served in-process.
    backoff_s:
        First inter-attempt backoff sleep; doubles per attempt, capped
        at :data:`BACKOFF_CAP_S`.
    faults:
        Deterministic fault-injection spec for the workers
        (:mod:`repro.testing.faults`); ``None`` reads the
        ``HOSMINER_FAULTS`` environment variable. Validated here,
        eagerly, so a typo fails at pool construction.

    The pool is kernel-agnostic: every scatter carries its own
    ``kernel``/``precision`` pair, so the engine can run GEMM rounds and
    exact re-verification rounds through the same workers.
    """

    def __init__(
        self,
        X: np.ndarray,
        workers: int,
        *,
        index: str = "linear",
        metric: object = "euclidean",
        index_options: "dict | None" = None,
        timeout_s: "float | None" = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        faults: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive (or None to disable), got {timeout_s}"
            )
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {backoff_s}")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise ConfigurationError(
                f"expected a non-empty (n, d) matrix, got shape {X.shape}"
            )
        self.workers_requested = workers
        self.n, self.d = X.shape
        self._bounds = shard_bounds(self.n, workers)
        # Per-shard segment geometry for live window updates: shard s
        # serves rows [_starts[s], _starts[s] + _counts[s]) of a segment
        # sized _caps[s] rows. apply_update() writes inserts into the
        # tail shard's spare capacity, trims the head shard by bumping
        # its start, and recomputes _bounds (window coordinates).
        self._starts = [0 for _ in self._bounds]
        self._counts = [hi - lo for lo, hi in self._bounds]
        self._caps = [hi - lo for lo, hi in self._bounds]
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._backoff_s = backoff_s
        self.round_trips = 0
        self.bytes_shipped = 0
        #: Live window updates propagated into worker segments.
        self.syncs = 0
        #: Tail-shard segments regrown (doubled) to absorb inserts.
        self.tail_regrows = 0
        #: Dead or hung workers respawned onto their existing segment.
        self.respawns = 0
        #: Respawn-and-replay attempts (each one replays the in-flight
        #: round to a fresh worker).
        self.retries = 0
        #: Reply deadlines that expired (hung worker killed + respawned).
        self.timeouts = 0
        #: Shard-rounds served in-process after a shard became
        #: irrecoverable (one event per degraded shard per round).
        self.degraded_rounds = 0
        if faults is None:
            faults = os.environ.get("HOSMINER_FAULTS")
        parse_faults(faults)  # eager validation: typos fail loudly here
        spec = {
            "index": index,
            "metric": metric,
            "index_options": dict(index_options or {}),
            "faults": faults,
        }
        self._spec = spec

        segments: list[shared_memory.SharedMemory] = []
        conns = []
        procs: list[Process] = []
        fallback: dict = {}
        try:
            for s, (lo, hi) in enumerate(self._bounds):
                block = X[lo:hi]
                segment = shared_memory.SharedMemory(
                    create=True, size=block.nbytes
                )
                view = np.ndarray(block.shape, dtype=np.float64, buffer=segment.buf)
                view[:] = block
                del view
                parent_conn, child_conn = Pipe()
                proc = Process(
                    target=_shard_worker,
                    args=(
                        child_conn, segment.name, hi - lo, self.d, 0, hi - lo,
                        s, 0, spec,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                segments.append(segment)
                conns.append(parent_conn)
                procs.append(proc)
        except Exception:
            _release_shards(os.getpid(), conns, procs, segments, fallback)
            raise
        self._segments = segments
        self._conns = conns
        self._procs = procs
        #: Worker incarnation per shard (0 = original spawn).
        self._gen = [0] * len(self._bounds)
        #: Shards whose pipe is known unusable (failed ping); the next
        #: scatter routes them straight through the respawn path.
        self._dead = [False] * len(self._bounds)
        #: Irrecoverable shards, permanently served in-process.
        self._degraded = [False] * len(self._bounds)
        #: Per-shard coordinator-side fallback backend + component cache
        #: (built lazily on first degraded round, cleared at teardown).
        self._fallback = fallback
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_shards, os.getpid(), conns, procs, segments, fallback
        )

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Actual shard count (``min(workers_requested, n)``)."""
        return len(self._bounds)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def degraded_shards(self) -> list[int]:
        """Shards currently served in-process (irrecoverable workers)."""
        return [s for s, flag in enumerate(self._degraded) if flag]

    @property
    def segment_names(self) -> list[str]:
        """Names of the shared-memory segments (for leak assertions)."""
        return [segment.name for segment in self._segments]

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "ShardPool is closed — create a new pool (HOSMiner spawns "
                "one automatically on the next query_batch call)"
            )

    # ------------------------------------------------------------------
    # Supervision primitives
    # ------------------------------------------------------------------
    def _recv_reply(self, s: int):
        """One shard's reply, bounded by the pool deadline.

        ``poll()`` also wakes on EOF, so a worker that died after the
        request was sent surfaces here as :class:`_ShardFailure` (cause
        ``EOFError``) rather than blocking; a worker that is merely hung
        surfaces as a deadline expiry (cause ``TimeoutError``). Either
        way the pipe is abandoned afterwards — the caller respawns
        before reusing the shard, so a late reply can never desync a
        following round.
        """
        conn = self._conns[s]
        if self._timeout_s is not None and not conn.poll(self._timeout_s):
            self.timeouts += 1
            raise _ShardFailure(
                s, TimeoutError(f"no reply within timeout_s={self._timeout_s}")
            )
        try:
            return conn.recv()
        except (EOFError, OSError) as exc:
            raise _ShardFailure(s, exc) from exc

    def _respawn(self, s: int) -> None:
        """Replace shard *s*'s worker, reattached to its existing segment.

        The dead/hung incumbent is reaped (``terminate()`` → ``kill()``,
        bounded), a fresh process is forked against the *same*
        shared-memory segment — the shard's rows never move — and health
        -pinged before the caller replays any work, so a worker that
        dies during segment attach is caught here, not mid-round.
        Raises :class:`_ShardFailure` when the fresh worker fails the
        ping (the caller's retry loop decides what happens next).
        """
        self._reap_worker(s)
        self._gen[s] += 1
        parent_conn, child_conn = Pipe()
        # The fresh worker gets the *current* geometry, so respawning is
        # also how a failed sync converges: no replayed sync needed.
        proc = Process(
            target=_shard_worker,
            args=(
                child_conn,
                self._segments[s].name,
                self._caps[s],
                self.d,
                self._starts[s],
                self._counts[s],
                s,
                self._gen[s],
                self._spec,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        # In-place assignment: the finalizer captured these lists at
        # construction, so replacing elements (never the lists) keeps
        # GC/atexit teardown aware of the current incarnation.
        self._conns[s] = parent_conn
        self._procs[s] = proc
        self._dead[s] = False
        self.respawns += 1
        # Health ping: the worker only answers once attach + backend
        # build succeeded, so "pong" certifies a servable shard.
        try:
            parent_conn.send("ping")
            status, payload = self._recv_reply(s)
        except (BrokenPipeError, OSError) as exc:
            raise _ShardFailure(s, exc) from exc
        if (status, payload) != ("ok", "pong"):
            raise _ShardFailure(
                s, ConfigurationError(f"bad ping reply: {(status, payload)!r}")
            )

    def _reap_worker(self, s: int) -> None:
        """Close shard *s*'s pipe and take its process down, bounded."""
        try:
            self._conns[s].close()
        except Exception:
            pass
        _reap_process(self._procs[s])

    def _degrade(self, s: int) -> None:
        """Mark shard *s* irrecoverable; its slice is served in-process
        from here on (the segment outlives the workers, so the rows are
        still one attach away)."""
        self._degraded[s] = True
        self._reap_worker(s)
        _LOGGER.warning(
            "shard %d irrecoverable after %d respawn attempt(s); serving its "
            "%d-row slice in-process from now on (answers unchanged, "
            "throughput degraded)",
            s,
            self._max_retries,
            self._bounds[s][1] - self._bounds[s][0],
        )

    def _replay_with_retries(self, s: int, request: tuple, request_bytes: int):
        """Respawn-and-replay shard *s* until it answers or the budget is
        out; returns ``(status, payload, shipped_bytes)`` or ``None``
        when the shard was degraded instead."""
        shipped = 0
        delay = self._backoff_s
        for _ in range(self._max_retries):
            # A close() racing this round must not respawn workers onto
            # segments that are being unlinked under us.
            self._require_open()
            self.retries += 1
            if delay > 0:
                time.sleep(min(delay, BACKOFF_CAP_S))
                delay *= 2
            try:
                self._respawn(s)
                self._conns[s].send(request)
                shipped += request_bytes
                status, payload = self._recv_reply(s)
            except (_ShardFailure, BrokenPipeError, OSError):
                continue
            if status == "ok":
                shipped += payload.nbytes
            return status, payload, shipped
        self._degrade(s)
        return None

    def _fallback_prefixes(self, s: int, request: tuple) -> np.ndarray:
        """Serve a degraded shard's slice in-process.

        The coordinator maps its own view of the shard's segment and
        runs :func:`_local_prefixes` — the exact function the worker
        runs — over a backend built the same way, so the values are
        element-wise identical to what the healthy worker would have
        returned. Backend and component cache persist across rounds.
        """
        self._require_open()  # the segment view below needs live segments
        entry = self._fallback.get(s)
        if entry is None:
            rows = np.ndarray(
                (self._caps[s], self.d), dtype=np.float64, buffer=self._segments[s].buf
            )[self._starts[s] : self._starts[s] + self._counts[s]]
            backend = make_backend(
                self._spec["index"],
                rows,
                metric=self._spec["metric"],
                **self._spec["index_options"],
            )
            entry = (backend, {})
            self._fallback[s] = entry
        backend, cache = entry
        queries, dims_list, k, excludes, kernel, precision = request
        return _local_prefixes(
            backend, queries, dims_list, k, excludes, kernel, precision, cache
        )

    def ping(self, timeout: "float | None" = None) -> list[bool]:
        """Health-probe every shard; returns per-shard liveness.

        Degraded shards report ``False`` without a probe (they have no
        worker). A shard that fails the probe is marked dead and its
        pipe abandoned — the next scatter routes it through the respawn
        path — so a late pong can never be mistaken for a work reply.
        """
        self._require_open()
        if timeout is None:
            timeout = self._timeout_s
        health: list[bool] = []
        for s in range(len(self._bounds)):
            if self._degraded[s] or self._dead[s]:
                health.append(False)
                continue
            alive = False
            try:
                self._conns[s].send("ping")
                if timeout is not None and not self._conns[s].poll(timeout):
                    raise TimeoutError(f"no pong within {timeout}s")
                alive = self._conns[s].recv() == ("ok", "pong")
            except Exception:
                alive = False
            if not alive:
                # Abandon the pipe: a reply arriving after the deadline
                # must never be read as the next round's payload.
                self._reap_worker(s)
                self._dead[s] = True
            health.append(alive)
        return health

    @staticmethod
    def _attach_failure_notes(errors: "list[Exception]") -> Exception:
        """Aggregate multi-shard failures onto one raisable exception.

        The first error is raised; every sibling shard's failure is
        attached as a PEP 678 note (``add_note`` on 3.11+, a hand-set
        ``__notes__`` on 3.10) so a multi-shard failure is diagnosable
        from the one traceback instead of silently dropping all but the
        first worker's exception.
        """
        primary = errors[0]
        for extra in errors[1:]:
            note = f"also raised in a sibling shard: {extra!r}"
            if hasattr(primary, "add_note"):
                primary.add_note(note)
            else:  # python 3.10: attach the PEP 678 attribute by hand
                notes = list(getattr(primary, "__notes__", []))
                notes.append(note)
                primary.__notes__ = notes
        return primary

    # ------------------------------------------------------------------
    # Live window updates
    # ------------------------------------------------------------------
    def apply_update(self, rows: "np.ndarray | None", expired: int = 0) -> bool:
        """Propagate a window update into the live shards, in place.

        Inserted *rows* are written by the coordinator into the tail
        shard's spare segment capacity (shared memory makes them visible
        to the worker instantly; when the capacity is exhausted the tail
        segment is regrown with doubled headroom and its worker is moved
        over by the respawn machinery's sync path). *expired* rows leave
        by bumping the head shard's start offset. Only the affected
        shards are then re-synced — middle shards never hear about the
        update, which is what makes sustained streaming cheap.

        Returns ``False`` — without touching anything — when the update
        cannot be applied incrementally: an expiry that would drain the
        head shard entirely. The caller (the miner) closes the pool and
        lets the next batch respawn it over the re-balanced window; with
        a steady window this happens once every ~``n/(workers·batch)``
        pushes, so its cost amortises away.

        A shard whose sync ultimately fails (even across respawn
        retries) is degraded exactly like a failed scatter — served
        in-process over the updated geometry — so answers never depend
        on sync delivery.
        """
        self._require_open()
        if expired < 0:
            raise ConfigurationError(f"expired must be >= 0, got {expired}")
        if rows is None:
            rows = np.empty((0, self.d))
        rows = np.ascontiguousarray(np.atleast_2d(rows), dtype=np.float64)
        if rows.size and rows.shape[1] != self.d:
            raise ConfigurationError(
                f"update rows have {rows.shape[1]} columns, the pool holds d={self.d}"
            )
        fresh = rows.shape[0]
        if expired and expired >= self._counts[0]:
            # Draining the head shard would leave an empty worker; the
            # pool is rebuilt (rebalanced) by the owner instead.
            return False
        if not fresh and not expired:
            return True

        affected: set[int] = set()
        if fresh:
            tail = len(self._bounds) - 1
            start_t, count_t, cap_t = self._starts[tail], self._counts[tail], self._caps[tail]
            if start_t + count_t + fresh > cap_t:
                # Regrow: a new segment with doubled headroom, live tail
                # rows + fresh rows copied once, swapped in place (the
                # finalizer holds the list, so element assignment keeps
                # teardown accurate), old segment unlinked.
                new_cap = 2 * (count_t + fresh)
                new_segment = shared_memory.SharedMemory(
                    create=True, size=new_cap * self.d * 8
                )
                view = np.ndarray((new_cap, self.d), dtype=np.float64, buffer=new_segment.buf)
                old_view = np.ndarray(
                    (cap_t, self.d), dtype=np.float64, buffer=self._segments[tail].buf
                )
                view[:count_t] = old_view[start_t : start_t + count_t]
                view[count_t : count_t + fresh] = rows
                del view, old_view
                old_segment = self._segments[tail]
                self._fallback.pop(tail, None)  # held views into the old segment
                self._segments[tail] = new_segment
                self._starts[tail] = 0
                self._counts[tail] = count_t + fresh
                self._caps[tail] = new_cap
                self.tail_regrows += 1
                try:
                    old_segment.close()
                    old_segment.unlink()
                except Exception:
                    pass
            else:
                view = np.ndarray(
                    (cap_t, self.d), dtype=np.float64, buffer=self._segments[tail].buf
                )
                view[start_t + count_t : start_t + count_t + fresh] = rows
                del view
                self._counts[tail] += fresh
            affected.add(tail)
        if expired:
            self._starts[0] += expired
            self._counts[0] -= expired
            affected.add(0)

        self.n = sum(self._counts)
        bounds, lo = [], 0
        for count in self._counts:
            bounds.append((lo, lo + count))
            lo += count
        self._bounds = bounds

        for s in sorted(affected):
            self._sync_shard(s)
        return True

    def _sync_shard(self, s: int) -> None:
        """Deliver shard *s*'s current geometry to its worker.

        Degraded shards just drop their in-process fallback (rebuilt
        lazily over the new geometry). A dead-pipe shard is left for the
        next scatter's respawn path — a respawned worker attaches with
        the current geometry anyway. A live worker gets the ``sync``
        message; on any failure (deadline, crash, error reply) the shard
        goes through the same respawn-with-retries ladder as a failed
        scatter round, degrading as the last resort.
        """
        self.syncs += 1
        if self._degraded[s]:
            self._fallback.pop(s, None)
            return
        if self._dead[s]:
            return
        message = (
            "sync",
            self._segments[s].name,
            self._caps[s],
            self._starts[s],
            self._counts[s],
        )
        try:
            self._conns[s].send(message)
            status, payload = self._recv_reply(s)
            if (status, payload) == ("ok", "synced"):
                return
        except (_ShardFailure, BrokenPipeError, OSError):
            pass
        # Respawn-with-retries: a fresh worker attaches straight to the
        # updated geometry, so no sync replay is needed.
        delay = self._backoff_s
        for _ in range(self._max_retries):
            self._require_open()
            self.retries += 1
            if delay > 0:
                time.sleep(min(delay, BACKOFF_CAP_S))
                delay *= 2
            try:
                self._respawn(s)
                return
            except _ShardFailure:
                continue
        self._degrade(s)
        self._fallback.pop(s, None)

    # ------------------------------------------------------------------
    def scatter_prefixes(
        self,
        queries: np.ndarray,
        dims_list: "Sequence[np.ndarray]",
        k: int,
        excludes: "Sequence[int | None]",
        kernel: str,
        precision: str,
    ) -> np.ndarray:
        """One scatter-gather round: merged ``(q, m, k)`` global prefixes.

        Ships ``(queries, masks)`` to every live shard, gathers per-shard
        sorted k-nearest partials and merges them exactly. Shipped bytes
        (request broadcast + replies, including replays) accumulate on
        :attr:`bytes_shipped`; each call counts one :attr:`round_trips`.

        Failure handling is per shard: a broken send, a dead pipe or an
        expired deadline routes that shard through respawn-and-replay
        (:attr:`retries`/:attr:`timeouts`/:attr:`respawns`), and a shard
        whose retry budget runs out is served in-process for this and
        every later round (:attr:`degraded_rounds`). Worker-side
        *exceptions* (bad requests) are still re-raised here after all
        replies are drained — with sibling failures attached as notes —
        and the pool keeps serving.
        """
        self._require_open()
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        dims_list = [np.asarray(dims, dtype=np.intp) for dims in dims_list]
        excludes = list(excludes)
        request_bytes = queries.nbytes + sum(dims.nbytes for dims in dims_list)
        shipped = 0
        shards = len(self._bounds)

        requests: list[tuple] = []
        for lo, hi in self._bounds:
            local = [
                ex - lo if ex is not None and lo <= ex < hi else None
                for ex in excludes
            ]
            requests.append((queries, dims_list, k, local, kernel, precision))

        parts: "list[np.ndarray | None]" = [None] * shards
        errors: list[Exception] = []
        failed: list[int] = []

        # Bulk scatter to every live shard, then drain every pipe we
        # actually wrote to — pipes stay request/reply-synchronised.
        pending: list[int] = []
        for s in range(shards):
            if self._degraded[s]:
                continue
            if self._dead[s]:
                failed.append(s)
                continue
            try:
                self._conns[s].send(requests[s])
                shipped += request_bytes
                pending.append(s)
            except (BrokenPipeError, OSError):
                failed.append(s)
        for s in pending:
            try:
                status, payload = self._recv_reply(s)
            except _ShardFailure:
                failed.append(s)
                continue
            if status == "ok":
                parts[s] = payload
                shipped += payload.nbytes
            else:
                errors.append(payload)

        # Slow path: respawn-and-replay each failed shard; a shard that
        # exhausts its budget is degraded and handled below.
        for s in failed:
            outcome = self._replay_with_retries(s, requests[s], request_bytes)
            if outcome is None:
                continue
            status, payload, replay_bytes = outcome
            shipped += replay_bytes
            if status == "ok":
                parts[s] = payload
            else:
                errors.append(payload)

        # Graceful degradation: irrecoverable shards are served by the
        # coordinator itself, through the same kernels.
        for s in range(shards):
            if self._degraded[s] and parts[s] is None:
                parts[s] = self._fallback_prefixes(s, requests[s])
                self.degraded_rounds += 1

        self.round_trips += 1
        self.bytes_shipped += shipped
        if errors:
            raise self._attach_failure_notes(errors)
        return merge_prefixes([part for part in parts if part is not None], k)

    def scatter_sums(
        self,
        queries: np.ndarray,
        dims_list: "Sequence[np.ndarray]",
        k: int,
        excludes: "Sequence[int | None]",
        kernel: str,
        precision: str,
    ) -> np.ndarray:
        """Merged OD sums, ``(q, m)`` — ascending sums of the global
        k-prefixes, the same accumulation order as the sequential
        kernels (hence the same float64 result)."""
        prefixes = self.scatter_prefixes(
            queries, dims_list, k, excludes, kernel, precision
        )
        return prefixes.sum(axis=-1)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent teardown: stop workers, close + unlink segments.

        Bounded worst case even against wedged workers — the finalizer
        escalates sentinel → ``terminate()`` → ``kill()`` with one grace
        window each and logs anything that survives.
        """
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        degraded = f", degraded={self.degraded_shards}" if any(self._degraded) else ""
        return (
            f"ShardPool({state}, workers={self.workers}, n={self.n}, "
            f"d={self.d}, round_trips={self.round_trips}, "
            f"respawns={self.respawns}{degraded})"
        )


def _shutdown_executor(owner_pid: int, executor: ProcessPoolExecutor) -> None:
    """Finalizer of the query-split executor (PID-guarded like shards)."""
    if os.getpid() != owner_pid:
        return
    executor.shutdown(wait=True, cancel_futures=True)


class QuerySplitPool:
    """Persistent executor for the ``shard="queries"`` fallback.

    The miner is shipped to each worker exactly once, through the
    executor initializer, when the pool is created — not per
    ``query_batch`` call as the old engine did. Subsequent batches only
    ship ``(queries, excludes)`` slices. The owning miner closes the
    pool whenever its fitted state changes (refit / ``extend``), so a
    live pool never serves a stale miner.
    """

    def __init__(self, miner: "HOSMiner", workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        from repro.core.batch import _init_worker

        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(miner,)
        )
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, os.getpid(), self._executor
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn, *args):
        if self._closed:
            raise ConfigurationError(
                "QuerySplitPool is closed — create a new pool (HOSMiner "
                "spawns one automatically on the next query_batch call)"
            )
        return self._executor.submit(fn, *args)

    def close(self) -> None:
        """Idempotent executor shutdown."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "QuerySplitPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"QuerySplitPool({state}, workers={self.workers})"

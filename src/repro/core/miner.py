"""The HOS-Miner facade — Figure 2's four modules wired together.

``fit`` builds the index (X-tree Indexing module), calibrates the
threshold if asked, and runs the Sample-based Learning module;
``query*`` run the Dynamic Subspace Search for a point and push the
answer through the Filtering module. A fitted miner is reusable across
any number of query points, which is the intended demo workflow.

Typical use::

    from repro import HOSMiner
    miner = HOSMiner(k=5, threshold=12.0, sample_size=10).fit(X)
    result = miner.query_row(42)          # a dataset member
    result = miner.query_point(vector)    # an external point
    print(result.explain())
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.batch import BatchQueryEngine
from repro.core.config import HOSMinerConfig
from repro.core.exceptions import (
    ConfigurationError,
    DataShapeError,
    NotFittedError,
)
from repro.core.filtering import minimal_masks
from repro.core.learning import LearningReport, learn_priors
from repro.core.metrics import resolve_kernel
from repro.core.od import ODEvaluator, SharedODCache, outlying_degree
from repro.core.precision import resolve_precision
from repro.core.priors import PruningPriors
from repro.core.result import BatchResult, OutlyingSubspaceResult
from repro.core.search import DynamicSubspaceSearch, SearchOutcome
from repro.core.subspace import Subspace, full_mask
from repro.index import make_backend
from repro.index.base import KnnBackend

if TYPE_CHECKING:
    from repro.core.shard import QuerySplitPool, ShardPool

__all__ = ["HOSMiner", "calibrate_threshold"]


def calibrate_threshold(
    backend: KnnBackend,
    X: np.ndarray,
    k: int,
    quantile: float = 0.995,
    sample: int = 256,
    seed: int | None = 0,
    shared_cache: SharedODCache | None = None,
) -> float:
    """Pick ``T`` as a quantile of *full-space* ODs over sampled rows.

    Under OD monotonicity the full space maximises OD over all
    subspaces, so a point has *some* outlying subspace iff its
    full-space OD reaches ``T``. Setting ``T`` at, say, the 0.995
    full-space quantile therefore flags roughly the top 0.5% of points
    as outliers-somewhere — a practical way to anchor the paper's
    otherwise user-supplied threshold.

    When *shared_cache* is given, every computed full-space OD is
    published under its ``(row, full mask)`` key, so later batched
    queries of the same rows replay the value instead of redoing kNN.
    """
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
    n = X.shape[0]
    rng = np.random.default_rng(seed)
    rows = (
        np.arange(n)
        if sample >= n
        else np.sort(rng.choice(n, size=sample, replace=False))
    )
    dims = tuple(range(backend.d))
    mask = full_mask(backend.d)
    full_space_ods = []
    for row in rows:
        _, distances = backend.knn(X[row], k, dims, exclude=int(row))
        value = float(distances.sum())
        if shared_cache is not None:
            # The exact kth distance doubles as the entry's safe bound
            # for delta invalidation on the streaming path.
            shared_cache.put(
                SharedODCache.point_key(X[row], int(row)),
                mask,
                value,
                kth=float(distances[-1]),
            )
        full_space_ods.append(value)
    return float(np.quantile(full_space_ods, quantile))


class HOSMiner:
    """Detect the outlying subspaces of query points (the paper's system).

    Parameters may be given as a prebuilt :class:`HOSMinerConfig` or as
    keyword overrides of the defaults::

        HOSMiner(k=8, threshold=30.0, index="xtree", sample_size=20)
    """

    def __init__(self, config: HOSMinerConfig | None = None, **overrides) -> None:
        if config is not None and overrides:
            raise ConfigurationError("pass either a config object or keyword overrides")
        self.config = config if config is not None else HOSMinerConfig(**overrides)
        self._fitted = False
        self._X: np.ndarray | None = None
        self._backend: KnnBackend | None = None
        self._threshold: float | None = None
        self._priors: PruningPriors | None = None
        self._learning_report: LearningReport | None = None
        self._feature_names: list[str] | None = None
        self._od_cache: SharedODCache | None = None
        self._kernel: str | None = None
        self._precision: str | None = None
        self._shard_pool: "ShardPool | None" = None
        self._query_pool: "QuerySplitPool | None" = None
        self.fit_time_s: float = 0.0

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, feature_names: list[str] | None = None) -> "HOSMiner":
        """Index the dataset, calibrate ``T`` if needed, learn the priors."""
        start = time.perf_counter()
        # A refit invalidates everything the worker pools hold (data
        # shards, pickled miner state); the next batch respawns them.
        self.close()
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 2 or X.shape[1] < 1:
            raise DataShapeError(
                f"expected an (n >= 2, d >= 1) matrix, got shape {X.shape}"
            )
        if self.config.k > X.shape[0] - 1:
            raise ConfigurationError(
                f"k={self.config.k} needs at least k+1={self.config.k + 1} rows, "
                f"got {X.shape[0]}"
            )
        if feature_names is not None and len(feature_names) != X.shape[1]:
            raise ConfigurationError(
                f"{len(feature_names)} feature names for {X.shape[1]} columns"
            )

        self._X = X
        self._feature_names = list(feature_names) if feature_names else None
        index_options = dict(self.config.index_options)
        if self.config.index == "linear":
            # The linear scan owns a post-GEMM top-k reduction; other
            # backends have no block to reduce, so the knob stays inert.
            index_options.setdefault("topk_kernel", self.config.topk_kernel)
        self._backend = make_backend(
            self.config.index, X, metric=self.config.metric, **index_options
        )
        # Resolve the OD-kernel selector against the *actual* metric and
        # backend before any search runs: an explicit kernel="gemm" that
        # cannot be served must fail here, loudly, not deep inside a
        # query — and "auto" must report the kernel that will really run.
        self._kernel = resolve_kernel(self.config.kernel, self._backend.metric)
        if self._kernel == "gemm" and not hasattr(self._backend, "knn_distance_sums"):
            if self.config.kernel == "gemm":
                raise ConfigurationError(
                    f"kernel='gemm' requires a backend with the level-wide "
                    f"knn_distance_sums kernel; index {self.config.index!r} "
                    f"answers kNN per subspace — use kernel='auto' or 'exact'"
                )
            self._kernel = "exact"
        # The precision tier resolves against the kernel that will
        # really run: float32 only ever rides the GEMM product.
        self._precision = resolve_precision(self.config.precision, self._kernel)
        # Per-fit shared OD cache: calibration and learning publish every
        # OD they compute, so batched queries of already-touched rows
        # replay fit-time work instead of redoing it.
        self._od_cache = SharedODCache()

        if self.config.threshold is not None:
            self._threshold = float(self.config.threshold)
        else:
            self._threshold = calibrate_threshold(
                self._backend,
                X,
                self.config.k,
                quantile=self.config.threshold_quantile,
                sample=self.config.threshold_sample,
                seed=self.config.seed,
                shared_cache=self._od_cache,
            )

        self._learning_report = learn_priors(
            self._backend,
            X,
            self.config.k,
            self._threshold,
            self.config.sample_size,
            seed=self.config.seed,
            reselect=self.config.reselect,
            adaptive=self.config.adaptive,
            shared_cache=self._od_cache,
            kernel=self._kernel,
            precision=self._precision,
        )
        self._priors = self._learning_report.priors
        self._fitted = True
        self.fit_time_s = time.perf_counter() - start
        return self

    # ------------------------------------------------------------------
    # Fitted state accessors
    # ------------------------------------------------------------------
    @property
    def threshold_(self) -> float:
        """The operative distance threshold ``T`` (set or calibrated)."""
        self._require_fitted()
        return self._threshold  # type: ignore[return-value]

    @property
    def priors_(self) -> PruningPriors:
        """Learned (or uniform, when ``sample_size=0``) pruning priors."""
        self._require_fitted()
        return self._priors  # type: ignore[return-value]

    @property
    def learning_report_(self) -> LearningReport:
        self._require_fitted()
        return self._learning_report  # type: ignore[return-value]

    @property
    def backend_(self) -> KnnBackend:
        self._require_fitted()
        return self._backend  # type: ignore[return-value]

    @property
    def od_cache_(self) -> SharedODCache:
        """The per-fit shared OD cache (populated by calibration, the
        learning pass and batched queries; invalidated on refit/extend)."""
        self._require_fitted()
        return self._od_cache  # type: ignore[return-value]

    @property
    def kernel_(self) -> str:
        """The resolved OD kernel (``"gemm"`` or ``"exact"``) — the
        config's ``"auto"`` resolved against the fitted metric."""
        self._require_fitted()
        return self._kernel  # type: ignore[return-value]

    @property
    def precision_(self) -> str:
        """The resolved GEMM precision tier (``"float32"`` or
        ``"float64"``) — the config's ``"auto"`` resolved against the
        fitted kernel."""
        self._require_fitted()
        return self._precision  # type: ignore[return-value]

    @property
    def d_(self) -> int:
        self._require_fitted()
        return self._backend.d  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def extend(self, rows: np.ndarray, refresh: str = "none") -> "HOSMiner":
        """Append new dataset rows to a fitted miner.

        All four backends support insertion (the trees run their full
        split/supernode machinery). ``refresh`` controls how much of the
        fitted state is recomputed afterwards:

        * ``"none"`` (default) — keep the current ``T`` and priors;
          right for a trickle of new points.
        * ``"threshold"`` — recalibrate ``T`` (only when it was
          auto-calibrated; an explicit ``threshold`` is never touched).
        * ``"full"`` — recalibrate ``T`` and rerun the learning pass.
        """
        self._require_fitted()
        if refresh not in ("none", "threshold", "full"):
            raise ConfigurationError(
                f"refresh must be 'none', 'threshold' or 'full', got {refresh!r}"
            )
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != self.d_:
            raise DataShapeError(
                f"new rows have {rows.shape[1]} columns, the miner was fitted on {self.d_}"
            )
        for row in rows:
            self._backend.insert(row)  # type: ignore[union-attr]
        self._X = np.asarray(self._backend.data)  # type: ignore[union-attr]
        # New rows can change any point's neighbour set in any subspace,
        # so every cached OD value is stale from here on. Worker pools
        # hold pre-extend data shards / miner copies, equally stale.
        self._od_cache.invalidate()  # type: ignore[union-attr]
        self.close()

        if refresh in ("threshold", "full") and self.config.threshold is None:
            self._threshold = calibrate_threshold(
                self._backend,
                self._X,
                self.config.k,
                quantile=self.config.threshold_quantile,
                sample=self.config.threshold_sample,
                seed=self.config.seed,
                shared_cache=self._od_cache,
            )
        if refresh == "full":
            self._learning_report = learn_priors(
                self._backend,
                self._X,
                self.config.k,
                self._threshold,
                min(self.config.sample_size, self._X.shape[0]),
                seed=self.config.seed,
                reselect=self.config.reselect,
                adaptive=self.config.adaptive,
                shared_cache=self._od_cache,
                kernel=self._kernel,
                precision=self._precision,
            )
            self._priors = self._learning_report.priors
        return self

    # ------------------------------------------------------------------
    # Streaming (incremental window updates)
    # ------------------------------------------------------------------
    def insert(self, X_new: np.ndarray) -> "HOSMiner":
        """Insert rows incrementally: in-place index growth, delta cache
        invalidation, live shard-pool propagation.

        The streaming counterpart of :meth:`extend`: instead of dropping
        every cached OD and every worker pool, only cache entries whose
        kNN k-prefix *could* contain an inserted row are evicted
        (``cache_invalidation="delta"``, see
        :meth:`~repro.core.od.SharedODCache.delta_insert`), and a live
        row-shard pool absorbs the rows into its tail segment instead of
        being torn down. ``T`` and the priors are kept — the threshold is
        part of the window's query contract (see docs/streaming.md), and
        priors only steer search order, never answers. Answers after any
        insert are element-wise identical to a fresh fit on the grown
        window with the same explicit threshold.
        """
        self._require_fitted()
        X_new = np.ascontiguousarray(np.atleast_2d(np.asarray(X_new, dtype=np.float64)))
        if X_new.ndim != 2 or X_new.shape[1] != self.d_:
            raise DataShapeError(
                f"new rows have shape {X_new.shape}, the miner was fitted on d={self.d_}"
            )
        if X_new.shape[0] == 0:
            return self
        for row in X_new:
            self._backend.insert(row)  # type: ignore[union-attr]
        self._X = np.asarray(self._backend.data)  # type: ignore[union-attr]
        if self.config.cache_invalidation == "delta":
            self._od_cache.delta_insert(  # type: ignore[union-attr]
                X_new, self._X, self._backend.metric  # type: ignore[union-attr]
            )
        else:
            self._od_cache.invalidate()  # type: ignore[union-attr]
        self._propagate_update(X_new, 0)
        return self

    def expire(self, n_oldest: int) -> "HOSMiner":
        """Expire the ``n_oldest`` rows from the window's head.

        Only the windowed backends (``linear``, ``vafile``) support
        expiry — the trees would need deletion machinery the paper's
        system never had. Row ids shift down by ``n_oldest`` (window
        coordinates); cached ODs survive when their kth-distance bound
        proves no expired row was among their k neighbours, and
        surviving row-keyed entries are re-keyed to the new coordinates.
        """
        self._require_fitted()
        n_oldest = int(n_oldest)
        if n_oldest < 1:
            raise ConfigurationError(f"n_oldest must be >= 1, got {n_oldest}")
        if not hasattr(self._backend, "expire"):
            raise ConfigurationError(
                f"index {self.config.index!r} does not support windowed expiry; "
                f"use index='linear' or 'vafile' for streaming"
            )
        remaining = self._X.shape[0] - n_oldest  # type: ignore[union-attr]
        if remaining < self.config.k + 1:
            raise ConfigurationError(
                f"expiring {n_oldest} rows would leave {remaining} < k+1="
                f"{self.config.k + 1} rows in the window"
            )
        expired = self._backend.expire(n_oldest)  # type: ignore[union-attr]
        self._X = np.asarray(self._backend.data)  # type: ignore[union-attr]
        if self.config.cache_invalidation == "delta":
            self._od_cache.delta_expire(  # type: ignore[union-attr]
                expired, n_oldest, self._X, self._backend.metric  # type: ignore[union-attr]
            )
        else:
            self._od_cache.invalidate()  # type: ignore[union-attr]
        self._propagate_update(None, n_oldest)
        return self

    def _propagate_update(self, rows: "np.ndarray | None", expired: int) -> None:
        """Push a window update into the live worker pools.

        A live row-shard pool absorbs the update in place
        (:meth:`~repro.core.shard.ShardPool.apply_update`: tail-segment
        append + head trim + per-shard resync); when it cannot — the
        head shard would drain, or the sync ultimately fails — the pool
        is closed and the next batch respawns it over the new window.
        Query-split pools hold pickled pre-update miner copies and are
        always dropped.
        """
        pool = self._shard_pool
        if pool is not None:
            applied = False
            if not pool.closed:
                applied = pool.apply_update(rows, expired)
            if not applied:
                pool.close()
                self._shard_pool = None
        if self._query_pool is not None:
            self._query_pool.close()
            self._query_pool = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, target: "int | np.ndarray") -> OutlyingSubspaceResult:
        """Dispatch: an integer is a dataset row, a vector an external point."""
        if isinstance(target, (int, np.integer)):
            return self.query_row(int(target))
        return self.query_point(np.asarray(target))

    def query_row(self, row: int) -> OutlyingSubspaceResult:
        """Outlying subspaces of dataset member *row* (self excluded from
        its own neighbour sets)."""
        self._require_fitted()
        if not 0 <= row < self._X.shape[0]:  # type: ignore[union-attr]
            raise ConfigurationError(
                f"row {row} out of range for n={self._X.shape[0]}"  # type: ignore[union-attr]
            )
        return self._run_query(self._X[row], exclude=row)  # type: ignore[index]

    def query_point(self, point: np.ndarray) -> OutlyingSubspaceResult:
        """Outlying subspaces of an external point."""
        self._require_fitted()
        return self._run_query(np.asarray(point, dtype=np.float64), exclude=None)

    def query_many(
        self, targets: "list[int | np.ndarray]"
    ) -> list[OutlyingSubspaceResult]:
        """Query a batch of rows and/or points, one sequential search at
        a time. Prefer :meth:`query_batch` for anything but a handful of
        targets — it produces identical answers faster."""
        return [self.query(target) for target in targets]

    def query_batch(
        self,
        targets: "np.ndarray | Sequence[int | np.ndarray]",
        workers: "int | None" = None,
        shard: "str | None" = None,
    ) -> BatchResult:
        """Answer many queries at once through the batched engine.

        Accepts a ``(m, d)`` matrix of external points, a sequence of
        dataset row ids, a single vector, or a mixed sequence of rows
        and vectors. Per-point answers are element-wise identical to
        sequential :meth:`query_row`/:meth:`query_point` calls; the
        engine only restructures the work — vectorised multi-query kNN
        across concurrent searches, OD reuse through the per-fit shared
        cache (see :attr:`od_cache_`), and with ``workers > 1`` the
        multiprocessing strategy selected by ``shard``
        (:mod:`repro.core.batch`). Both default to the config knobs.
        Worker pools persist on the miner across calls; :meth:`close`
        (or the context-manager protocol) releases them eagerly.
        Returns a :class:`~repro.core.result.BatchResult`.
        """
        self._require_fitted()
        return BatchQueryEngine(self, workers=workers, shard=shard).run(targets)

    def detect_outliers(
        self, max_results: int | None = None
    ) -> list[tuple[int, OutlyingSubspaceResult]]:
        """Mine the whole dataset: rows with any outlying subspace.

        Under OD monotonicity, a row has an outlying subspace iff its
        *full-space* OD reaches ``T``, so the screening pass is one cheap
        kNN per row; only the survivors pay a subspace search. Returns
        ``(row, result)`` pairs sorted by descending full-space OD
        (strongest outliers first), truncated to ``max_results``.
        """
        self._require_fitted()
        if max_results is not None and max_results < 1:
            raise ConfigurationError(
                f"max_results must be >= 1, got {max_results}"
            )
        X = self._X
        dims = tuple(range(self.d_))
        flagged: list[tuple[float, int]] = []
        for row in range(X.shape[0]):  # type: ignore[union-attr]
            od_full = outlying_degree(
                self._backend, X[row], self.config.k, dims, exclude=row
            )
            if od_full >= self._threshold:  # type: ignore[operator]
                flagged.append((od_full, row))
        flagged.sort(key=lambda pair: (-pair[0], pair[1]))
        if max_results is not None:
            flagged = flagged[:max_results]
        return [(row, self.query_row(row)) for _, row in flagged]

    def search_outcome(
        self, target: "int | np.ndarray"
    ) -> tuple[SearchOutcome, ODEvaluator]:
        """Lower-level access: the raw (unfiltered) search outcome and the
        OD evaluator, for experiments that need the full lattice."""
        self._require_fitted()
        if isinstance(target, (int, np.integer)):
            query, exclude = self._X[int(target)], int(target)  # type: ignore[index]
        else:
            query, exclude = np.asarray(target, dtype=np.float64), None
        evaluator = ODEvaluator(
            self._backend,
            query,
            self.config.k,
            exclude=exclude,
            kernel=self._kernel,
            precision=self._precision,
        )
        return self._make_search(evaluator).run(), evaluator

    # ------------------------------------------------------------------
    def _make_search(self, evaluator: ODEvaluator) -> DynamicSubspaceSearch:
        """A search over *evaluator* with this miner's fitted parameters.

        Single factory for the sequential and batched paths, so both run
        the exact same decision process.
        """
        return DynamicSubspaceSearch(
            evaluator,
            self._threshold,
            self._priors,
            self.config.reselect,
            adaptive=self.config.adaptive,
        )

    def _build_result(
        self, outcome: SearchOutcome, evaluator: ODEvaluator
    ) -> OutlyingSubspaceResult:
        """Filter a finished search into the user-facing result."""
        minimal = [Subspace(mask, outcome.d) for mask in minimal_masks(outcome.outlying_masks)]
        # Minimal subspaces are always concretely evaluated (an inferred-
        # outlying subspace has an outlying subset, so it cannot be
        # minimal) — their ODs are cache hits, never new kNN work.
        od_values = {subspace: evaluator.od(subspace.mask) for subspace in minimal}
        return OutlyingSubspaceResult(
            query=evaluator.query,
            d=outcome.d,
            k=self.config.k,
            threshold=outcome.threshold,
            minimal=minimal,
            total_outlying=len(outcome.outlying_masks),
            od_values=od_values,
            stats=outcome.stats,
            feature_names=self._feature_names,
        )

    def _run_query(self, query: np.ndarray, exclude: int | None) -> OutlyingSubspaceResult:
        evaluator = ODEvaluator(
            self._backend,
            query,
            self.config.k,
            exclude=exclude,
            kernel=self._kernel,
            precision=self._precision,
        )
        outcome = self._make_search(evaluator).run()
        return self._build_result(outcome, evaluator)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("call fit(X) before querying")

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_shard_pool(self, workers: int) -> "ShardPool":
        """The persistent row-shard pool (``shard="rows"``), spawned on
        first use and reused by every subsequent batch; recreated when
        closed or when a different worker count is requested."""
        from repro.core.shard import ShardPool

        pool = self._shard_pool
        if pool is not None and (pool.closed or pool.workers_requested != workers):
            pool.close()
            pool = None
        if pool is None:
            index_options = dict(self.config.index_options)
            if self.config.index == "linear":
                index_options.setdefault("topk_kernel", self.config.topk_kernel)
            pool = ShardPool(
                self.backend_.data,
                workers,
                index=self.config.index,
                metric=self.config.metric,
                index_options=index_options,
                timeout_s=self.config.timeout_s,
                max_retries=self.config.max_retries,
                backoff_s=self.config.backoff_s,
            )
            self._shard_pool = pool
        return pool

    def _ensure_query_pool(self, workers: int) -> "QuerySplitPool":
        """The cached query-split executor (``shard="queries"``);
        recreated when closed or when more workers are requested."""
        from repro.core.shard import QuerySplitPool

        pool = self._query_pool
        if pool is not None and (pool.closed or pool.workers < workers):
            pool.close()
            pool = None
        if pool is None:
            pool = QuerySplitPool(self, workers)
            self._query_pool = pool
        return pool

    def close(self) -> None:
        """Release the worker pools (processes, pipes, shared memory).

        Idempotent and safe on an unfitted miner. The miner itself stays
        fully usable — a later multi-worker ``query_batch`` simply
        spawns fresh pools. Garbage collection and interpreter exit
        release the pools too (``weakref.finalize``), so ``close`` is
        about promptness, not correctness.
        """
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None
        if self._query_pool is not None:
            self._query_pool.close()
            self._query_pool = None

    def __enter__(self) -> "HOSMiner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Worker pools hold processes, pipes and shared-memory handles —
        # never picklable, never meaningful in another process. A pickled
        # miner (e.g. shipped to a query-split worker) arrives poolless
        # and lazily spawns its own if ever asked.
        state = self.__dict__.copy()
        state["_shard_pool"] = None
        state["_query_pool"] = None
        return state

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"HOSMiner({state}, k={self.config.k}, index={self.config.index!r})"

"""Persistence: save and load fitted miners and query results.

A fitted :class:`~repro.core.miner.HOSMiner` is a dataset plus a handful
of learned scalars/arrays, so the archive format is deliberately boring:
one ``.npz`` holding the data matrix, the learned prior arrays and a
JSON-encoded header (config, threshold, feature names, format version).
Loading rebuilds the index from the stored matrix — index structures are
derived state, and rebuilding dodges every pickle-compatibility hazard.

Results serialise to plain JSON (masks, OD values, costs) so they can be
archived next to bench outputs and diffed in review.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.config import HOSMinerConfig
from repro.core.exceptions import DataShapeError, HOSMinerError
from repro.core.miner import HOSMiner
from repro.core.priors import PruningPriors
from repro.core.result import OutlyingSubspaceResult
from repro.core.search import SearchStats
from repro.core.subspace import Subspace

__all__ = ["save_miner", "load_miner", "result_to_dict", "result_from_dict"]

_FORMAT_VERSION = 1


def save_miner(miner: HOSMiner, path: str) -> None:
    """Persist a fitted miner to a ``.npz`` archive."""
    if not miner._fitted:
        raise HOSMinerError("cannot save an unfitted miner")
    config = miner.config
    header = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "k": config.k,
            "threshold": config.threshold,
            "threshold_quantile": config.threshold_quantile,
            "threshold_sample": config.threshold_sample,
            "metric": config.metric if isinstance(config.metric, str) else "euclidean",
            "index": config.index,
            "index_options": config.index_options,
            "sample_size": config.sample_size,
            "seed": config.seed,
            "reselect": config.reselect,
            "adaptive": config.adaptive,
        },
        "threshold_": miner.threshold_,
        "feature_names": miner._feature_names,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        X=np.asarray(miner.backend_.data),
        p_up=miner.priors_.p_up,
        p_down=miner.priors_.p_down,
    )


def load_miner(path: str) -> HOSMiner:
    """Rebuild a miner saved by :func:`save_miner`.

    The index is reconstructed from the stored matrix; the calibrated
    threshold and learned priors are restored verbatim (the learning
    pass is *not* rerun)."""
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise HOSMinerError(
                f"unsupported archive version {header.get('format_version')}"
            )
        X = archive["X"]
        p_up = archive["p_up"]
        p_down = archive["p_down"]

    config_dict = dict(header["config"])
    # Pin the exact fitted threshold so fit() skips recalibration.
    config_dict["threshold"] = header["threshold_"]
    # Learning is restored from the archive, not rerun.
    stored_sample_size = config_dict.pop("sample_size")
    config = HOSMinerConfig(sample_size=0, **config_dict)
    miner = HOSMiner(config)
    miner.fit(X, feature_names=header["feature_names"])
    miner._priors = PruningPriors(X.shape[1], p_up.copy(), p_down.copy())
    # Remember the original request for introspection.
    object.__setattr__(miner.config, "sample_size", stored_sample_size)
    return miner


def result_to_dict(result: OutlyingSubspaceResult) -> dict:
    """JSON-safe representation of a query result."""
    return {
        "format_version": _FORMAT_VERSION,
        "query": [float(value) for value in result.query],
        "d": result.d,
        "k": result.k,
        "threshold": result.threshold,
        "minimal_masks": [subspace.mask for subspace in result.minimal],
        "total_outlying": result.total_outlying,
        "od_values": {
            str(subspace.mask): value for subspace, value in result.od_values.items()
        },
        "feature_names": result.feature_names,
        "stats": {
            "od_evaluations": result.stats.od_evaluations,
            "upward_pruned": result.stats.upward_pruned,
            "downward_pruned": result.stats.downward_pruned,
            "wall_time_s": result.stats.wall_time_s,
        },
    }


def result_from_dict(payload: dict) -> OutlyingSubspaceResult:
    """Inverse of :func:`result_to_dict`."""
    if payload.get("format_version") != _FORMAT_VERSION:
        raise HOSMinerError(f"unsupported result version {payload.get('format_version')}")
    d = int(payload["d"])
    if d < 1:
        raise DataShapeError(f"bad dimensionality {d} in result payload")
    minimal = [Subspace(mask, d) for mask in payload["minimal_masks"]]
    stats = SearchStats(
        od_evaluations=payload["stats"]["od_evaluations"],
        upward_pruned=payload["stats"]["upward_pruned"],
        downward_pruned=payload["stats"]["downward_pruned"],
        wall_time_s=payload["stats"]["wall_time_s"],
    )
    return OutlyingSubspaceResult(
        query=np.asarray(payload["query"], dtype=np.float64),
        d=d,
        k=int(payload["k"]),
        threshold=float(payload["threshold"]),
        minimal=minimal,
        total_outlying=int(payload["total_outlying"]),
        od_values={
            Subspace(int(mask), d): float(value)
            for mask, value in payload["od_values"].items()
        },
        stats=stats,
        feature_names=payload["feature_names"],
    )

"""Exception hierarchy for the HOS-Miner library.

Every error raised intentionally by :mod:`repro` derives from
:class:`HOSMinerError`, so callers can guard an entire pipeline with a
single ``except HOSMinerError`` clause while still being able to react
to specific failure classes.
"""

from __future__ import annotations


class HOSMinerError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(HOSMinerError, ValueError):
    """An invalid parameter combination was supplied by the caller.

    Raised eagerly at construction / fit time so that long searches never
    fail halfway through because of a bad ``k`` or threshold.
    """


class DimensionalityError(ConfigurationError):
    """The requested dimensionality is unusable.

    Examples: a subspace referencing dimension 12 of a 10-dimensional
    dataset, a zero-dimensional (empty) subspace where a non-empty one is
    required, or a full-lattice search beyond the supported width.
    """


class NotFittedError(HOSMinerError, RuntimeError):
    """A query was issued before the miner (or index) was fitted."""


class DataShapeError(HOSMinerError, ValueError):
    """Input data does not have the expected shape or dtype."""


class IndexError_(HOSMinerError, RuntimeError):
    """An internal index invariant was violated.

    The trailing underscore avoids shadowing the built-in ``IndexError``
    while keeping the name greppable next to the :mod:`repro.index`
    subpackage.
    """


class SearchBudgetExceeded(HOSMinerError, RuntimeError):
    """A bounded search exceeded its configured evaluation budget."""

"""Per-level pruning priors ``p_up(m)`` / ``p_down(m)``.

The TSF formula weights each level's saving factors by the probability
that evaluating a subspace there triggers upward / downward pruning.
Two sources exist (Section 3.2):

* the **uniform assumption** used while searching the learning samples
  themselves — 0.5/0.5 at interior levels, with the boundary convention
  ``p_up(1) = 1, p_down(1) = 0`` and ``p_up(d) = 0, p_down(d) = 1``;
* the **learned averages** over the sample searches, with the
  structural zeros ``p_down(1) = 0`` and ``p_up(d) = 0``.

Both are represented by this one value type; arrays are indexed by
level ``m`` directly (slot 0 unused) for readability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, DimensionalityError

__all__ = ["PruningPriors"]


@dataclass(frozen=True)
class PruningPriors:
    """Immutable per-level prior probabilities for one search.

    Attributes
    ----------
    d:
        Ambient dimensionality.
    p_up, p_down:
        Arrays of length ``d + 1``; entry ``m`` holds the prior for
        level ``m`` (entry 0 is unused and kept at 0).
    """

    d: int
    p_up: np.ndarray
    p_down: np.ndarray

    def __post_init__(self) -> None:
        if self.d < 1:
            raise DimensionalityError(f"d must be >= 1, got {self.d}")
        for name, array in (("p_up", self.p_up), ("p_down", self.p_down)):
            if array.shape != (self.d + 1,):
                raise ConfigurationError(
                    f"{name} must have shape ({self.d + 1},), got {array.shape}"
                )
            if np.any(array < 0) or np.any(array > 1):
                raise ConfigurationError(f"{name} entries must be probabilities")
        self.p_up.setflags(write=False)
        self.p_down.setflags(write=False)

    @classmethod
    def uniform(cls, d: int) -> "PruningPriors":
        """The learning pass's assumption: equal chances of both prunings
        at every interior level (Section 3.2)."""
        p_up = np.full(d + 1, 0.5)
        p_down = np.full(d + 1, 0.5)
        p_up[0] = p_down[0] = 0.0
        p_up[1], p_down[1] = 1.0, 0.0
        p_up[d], p_down[d] = 0.0, 1.0
        if d == 1:
            # A 1-dimensional space has a single subspace; either rule may
            # notionally fire. Keep the m=1 convention (up only).
            p_up[1], p_down[1] = 1.0, 0.0
        return cls(d, p_up, p_down)

    @classmethod
    def from_level_values(
        cls, d: int, p_up_by_level: dict[int, float], p_down_by_level: dict[int, float]
    ) -> "PruningPriors":
        """Build from explicit per-level dictionaries (testing aid)."""
        p_up = np.zeros(d + 1)
        p_down = np.zeros(d + 1)
        for m, value in p_up_by_level.items():
            p_up[m] = value
        for m, value in p_down_by_level.items():
            p_down[m] = value
        return cls(d, p_up, p_down)

    def at(self, m: int) -> tuple[float, float]:
        """``(p_up(m), p_down(m))`` with bounds checking."""
        if not 1 <= m <= self.d:
            raise DimensionalityError(f"level {m} out of range for d={self.d}")
        return float(self.p_up[m]), float(self.p_down[m])

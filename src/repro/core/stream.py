"""Sliding-window streaming engine over a fitted miner.

A traffic-facing deployment sees continuously arriving points: each
batch of fresh rows enters the window and, once the window is full, the
same number of oldest rows leaves it. :class:`StreamEngine` turns a
fitted :class:`~repro.core.miner.HOSMiner` into that sliding window —
every ``push`` runs the miner's incremental
:meth:`~repro.core.miner.HOSMiner.insert` /
:meth:`~repro.core.miner.HOSMiner.expire` path (in-place index buffers,
delta OD-cache invalidation, live shard-pool propagation) instead of a
refit, and every query answers against the current window exactly.

The identity contract (the whole point): after *any* interleaving of
pushes and queries, every answer is element-wise identical to a fresh
``fit`` on the equivalent window with the same explicit ``threshold``.
Two notes make "equivalent window" precise:

* **Threshold.** An auto-calibrated ``T`` is a quantile over the *fit*
  window; a fresh fit on a later window would re-draw it and answer a
  different question. Streaming keeps the fitted ``T`` fixed — the
  deployment's contract is "flag points whose OD reaches T", not "keep
  re-defining T". Pass an explicit ``threshold`` when comparing against
  fresh-fit oracles (the differential suite in ``tests/test_stream.py``
  does).
* **Priors.** The learned pruning priors stay those of the fit window.
  Priors only steer search *order*; the lattice pruning rules are exact,
  so answers never depend on them — only evaluation counts do.

Windowed expiry needs a backend with an ``expire`` method (``linear``
and ``vafile``); tree backends are rejected at construction, loudly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.miner import HOSMiner
from repro.core.result import BatchResult, OutlyingSubspaceResult

__all__ = ["StreamEngine"]


class StreamEngine:
    """Sliding-window facade over a fitted miner.

    Parameters
    ----------
    miner:
        A fitted :class:`~repro.core.miner.HOSMiner`.
    window:
        Sliding-window size; defaults to the config's ``stream_window``.
        ``None`` means unbounded (pushes insert, nothing expires). Must
        be at least ``k + 1`` so the window always holds a full
        neighbour set plus the query row.

    Counters
    --------
    ``pushes``, ``inserted``, ``expired`` count work accepted so far;
    the miner's ``od_cache_.delta_evicted`` / ``delta_retained`` expose
    how much cached state survived it.
    """

    def __init__(self, miner: HOSMiner, window: "int | None" = None) -> None:
        miner._require_fitted()
        if window is None:
            window = miner.config.stream_window
        if window is not None:
            window = int(window)
            if window < miner.config.k + 1:
                raise ConfigurationError(
                    f"window must be >= k+1={miner.config.k + 1} (a full "
                    f"neighbour set plus the query), got {window}"
                )
        if window is not None and not hasattr(miner.backend_, "expire"):
            raise ConfigurationError(
                f"index {miner.config.index!r} does not support windowed "
                f"expiry; use index='linear' or 'vafile' for streaming"
            )
        self.miner = miner
        self.window = window
        self.pushes = 0
        self.inserted = 0
        self.expired = 0

    # ------------------------------------------------------------------
    # Window maintenance
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Rows currently in the window."""
        return int(self.miner.backend_.size)

    def push(self, rows: np.ndarray) -> int:
        """Admit a batch of fresh rows; expire the overflow.

        Rows are inserted first and the window trimmed after, so the
        expiry-safety check (the window must keep ``k + 1`` rows) sees
        the grown occupancy — a push larger than the window is legal and
        leaves exactly the last ``window`` rows. Returns the number of
        rows expired.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        self.miner.insert(rows)
        overflow = 0
        if self.window is not None:
            overflow = self.occupancy - self.window
            if overflow > 0:
                self.miner.expire(overflow)
            else:
                overflow = 0
        self.pushes += 1
        self.inserted += rows.shape[0]
        self.expired += overflow
        return overflow

    # ------------------------------------------------------------------
    # Queries (window coordinates)
    # ------------------------------------------------------------------
    def query(self, target: "int | np.ndarray") -> OutlyingSubspaceResult:
        """One search against the current window (row id or point)."""
        return self.miner.query(target)

    def query_batch(
        self,
        targets: "np.ndarray | Sequence[int | np.ndarray]",
        workers: "int | None" = None,
        shard: "str | None" = None,
    ) -> BatchResult:
        """A batch of searches against the current window."""
        return self.miner.query_batch(targets, workers=workers, shard=shard)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the miner's worker pools (the miner stays usable)."""
        self.miner.close()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        window = "unbounded" if self.window is None else self.window
        return (
            f"StreamEngine(window={window}, occupancy={self.occupancy}, "
            f"pushes={self.pushes}, inserted={self.inserted}, expired={self.expired})"
        )

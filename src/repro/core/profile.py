"""OD profiles: how a point's outlying degree grows across the lattice.

A diagnostic layer on top of the search (extension beyond the paper).
The profile summarises, per lattice level ``m``, the range of OD values
the point exhibits, the threshold crossing, and where the minimal
outlying subspaces sit. It answers the practical questions a user has
*after* a query: "how close was this point to being flagged?", "is the
anomaly concentrated or diffuse?", "would a slightly different T have
changed the verdict?".

The exhaustive profile evaluates all ``C(d, m)`` subspaces per level —
meant for moderate ``d`` (it reuses the evaluator's cache, so profiling
after a query only pays for the subspaces pruning skipped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.od import ODEvaluator
from repro.core.subspace import masks_at_level

__all__ = ["LevelProfile", "ODProfile", "compute_od_profile"]


@dataclass(frozen=True, slots=True)
class LevelProfile:
    """OD statistics of one lattice level for one point."""

    level: int
    minimum: float
    maximum: float
    mean: float
    outlying_fraction: float
    #: The level's most outlying subspace (mask).
    argmax_mask: int


@dataclass(frozen=True, slots=True)
class ODProfile:
    """Per-level OD statistics of one point.

    ``levels[m - 1]`` describes lattice level ``m``.
    """

    d: int
    threshold: float
    levels: tuple[LevelProfile, ...]

    @property
    def crossing_level(self) -> int | None:
        """Lowest level whose maximum OD reaches the threshold, or
        ``None`` when the point is an outlier nowhere."""
        for profile in self.levels:
            if profile.maximum >= self.threshold:
                return profile.level
        return None

    @property
    def margin(self) -> float:
        """Full-space OD minus the threshold: positive for outliers; the
        smaller the magnitude the more threshold-sensitive the verdict."""
        return self.levels[-1].maximum - self.threshold

    def render(self, width: int = 40) -> str:
        """ASCII rendering: one bar per level, '|' marks the threshold."""
        top = max(self.levels[-1].maximum, self.threshold) or 1.0
        lines = [f"OD profile (T = {self.threshold:.4g}):"]
        for profile in self.levels:
            bar = int(round(profile.maximum / top * (width - 1)))
            t_mark = int(round(self.threshold / top * (width - 1)))
            row = [" "] * width
            for i in range(bar + 1):
                row[i] = "#"
            row[t_mark] = "|"
            lines.append(
                f"  m={profile.level:>2} {''.join(row)} "
                f"max={profile.maximum:.4g} out={profile.outlying_fraction:.0%}"
            )
        return "\n".join(lines)


def compute_od_profile(
    evaluator: ODEvaluator, threshold: float, max_level: int | None = None
) -> ODProfile:
    """Exhaustively profile a point's OD across lattice levels.

    Parameters
    ----------
    evaluator:
        The (ideally query-warmed) OD oracle of the point.
    threshold:
        The ``T`` to report crossings against.
    max_level:
        Optionally stop after this level (profiles of the low levels are
        the actionable part; the top levels cost the most).
    """
    d = evaluator.backend.d
    if threshold < 0:
        raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
    top = d if max_level is None else max_level
    if not 1 <= top <= d:
        raise ConfigurationError(f"max_level must be in [1, {d}], got {max_level}")

    levels = []
    for m in range(1, top + 1):
        masks = masks_at_level(d, m)
        values = np.array([evaluator.od(mask) for mask in masks])
        argmax = int(values.argmax())
        levels.append(
            LevelProfile(
                level=m,
                minimum=float(values.min()),
                maximum=float(values.max()),
                mean=float(values.mean()),
                outlying_fraction=float((values >= threshold).mean()),
                argmax_mask=masks[argmax],
            )
        )
    return ODProfile(d=d, threshold=threshold, levels=tuple(levels))

"""The Outlying Degree (OD) measure — Section 2 of the paper.

``OD(p, s)`` is the sum of the distances from ``p`` to its ``k`` nearest
neighbours inside subspace ``s``:

    OD(p, s) = Σ_{i=1..k} Dist_s(p, p_i),   p_i ∈ KNNSet(p, s)

The measure is deliberately distribution-free (feature (1) of the
paper) and monotone under subspace inclusion, which Section 3.1 turns
into the two pruning rules. The monotonicity argument, for any metric
with ``Dist_s1 >= Dist_s2`` when ``s1 ⊇ s2``:

    OD_s1(p) = Σ Dist_s1(p, kNN_s1)      (definition)
             ≥ Σ Dist_s2(p, kNN_s1)      (per-pair monotonicity)
             ≥ Σ Dist_s2(p, kNN_s2)      (kNN_s2 minimises the s2 sum)
             = OD_s2(p)

:class:`ODEvaluator` wraps a kNN backend with a per-``(query, subspace)``
cache, because the dynamic search and the learning pass revisit
subspaces for the same point (e.g. when ablation baselines replay a
search) and because evaluation counting must distinguish cached hits
from real work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.subspace import Subspace, dims_of_mask
from repro.index.base import KnnBackend

__all__ = ["ODEvaluator", "outlying_degree"]


def outlying_degree(
    backend: KnnBackend,
    query: np.ndarray,
    k: int,
    dims: Sequence[int],
    exclude: int | None = None,
) -> float:
    """One-shot OD computation against a backend (no caching)."""
    _, distances = backend.knn(query, k, dims, exclude=exclude)
    return float(distances.sum())


class ODEvaluator:
    """Cached outlying-degree oracle for one query point.

    Parameters
    ----------
    backend:
        Any :class:`~repro.index.base.KnnBackend` over the dataset.
    query:
        The point whose outlying subspaces are being searched.
    k:
        Neighbour count of the OD definition.
    exclude:
        Row index of ``query`` inside the backend's dataset, or ``None``
        when the query is external. Self-matches are excluded by row
        identity so duplicate points stay legal neighbours.

    Notes
    -----
    ``evaluations`` counts *real* kNN searches; ``cache_hits`` counts
    repeats served from memory. The search-cost tables of experiments
    E1–E5 and E10 report ``evaluations``.
    """

    def __init__(
        self,
        backend: KnnBackend,
        query: np.ndarray,
        k: int,
        exclude: int | None = None,
    ) -> None:
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != backend.d:
            raise DataShapeError(
                f"query must be a length-{backend.d} vector, got shape {query.shape}"
            )
        available = backend.size - (1 if exclude is not None else 0)
        if k < 1 or k > available:
            raise ConfigurationError(
                f"k must be in [1, {available}] for this dataset, got {k}"
            )
        self.backend = backend
        self.query = query
        self.k = k
        self.exclude = exclude
        self.evaluations = 0
        self.cache_hits = 0
        self._cache: dict[int, float] = {}

    def od(self, mask: int) -> float:
        """OD of the query point in the subspace encoded by *mask*."""
        cached = self._cache.get(mask)
        if cached is not None:
            self.cache_hits += 1
            return cached
        dims = dims_of_mask(mask)
        value = outlying_degree(
            self.backend, self.query, self.k, dims, exclude=self.exclude
        )
        self._cache[mask] = value
        self.evaluations += 1
        return value

    def od_subspace(self, subspace: Subspace) -> float:
        """OD in a :class:`~repro.core.subspace.Subspace` (wrapper API)."""
        if subspace.d != self.backend.d:
            raise DataShapeError(
                f"subspace lives in d={subspace.d} but the data has d={self.backend.d}"
            )
        return self.od(subspace.mask)

    def knn_set(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        """The KNNSet itself — ``(row indices, distances)`` in subspace
        *mask*; useful for explanation output and examples."""
        dims = dims_of_mask(mask)
        return self.backend.knn(self.query, self.k, dims, exclude=self.exclude)

    def reset_counters(self) -> None:
        """Zero the evaluation counters (the cache is kept)."""
        self.evaluations = 0
        self.cache_hits = 0

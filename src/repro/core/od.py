"""The Outlying Degree (OD) measure — Section 2 of the paper.

``OD(p, s)`` is the sum of the distances from ``p`` to its ``k`` nearest
neighbours inside subspace ``s``:

    OD(p, s) = Σ_{i=1..k} Dist_s(p, p_i),   p_i ∈ KNNSet(p, s)

The measure is deliberately distribution-free (feature (1) of the
paper) and monotone under subspace inclusion, which Section 3.1 turns
into the two pruning rules. The monotonicity argument, for any metric
with ``Dist_s1 >= Dist_s2`` when ``s1 ⊇ s2``:

    OD_s1(p) = Σ Dist_s1(p, kNN_s1)      (definition)
             ≥ Σ Dist_s2(p, kNN_s1)      (per-pair monotonicity)
             ≥ Σ Dist_s2(p, kNN_s2)      (kNN_s2 minimises the s2 sum)
             = OD_s2(p)

:class:`ODEvaluator` wraps a kNN backend with a per-``(query, subspace)``
cache, because the dynamic search and the learning pass revisit
subspaces for the same point (e.g. when ablation baselines replay a
search) and because evaluation counting must distinguish cached hits
from real work.

:class:`SharedODCache` extends that idea across queries: one per-fit
cache keyed by ``(point key, subspace mask)`` that every evaluator of
the same fitted miner can consult, so overlapping searches — the
fit-time learning pass, repeated queries of the same row, duplicate
points inside one batch — reuse OD values instead of redoing kNN work.
A cached OD is the exact value the backend would return (not an
approximation), so sharing never changes answers, only cost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import resolve_kernel
from repro.core.precision import resolve_precision, reverify_rtol
from repro.core.subspace import Subspace, dims_of_mask
from repro.index.base import KnnBackend, components32_from

__all__ = [
    "GEMM_REVERIFY_RTOL",
    "ODEvaluator",
    "SharedODCache",
    "kth_bound",
    "near_threshold",
    "outlying_degree",
]

#: Relative half-width of the band around the threshold inside which a
#: GEMM-computed OD is re-verified with the exact kernel. BLAS-vs-exact
#: accumulation differences are ~1e-13 relative at realistic d, so 1e-9
#: leaves four orders of magnitude of margin while re-verifying almost
#: nothing: outside the band the two kernels provably agree on the
#: ``OD >= T`` decision, inside it the exact kernel decides.
GEMM_REVERIFY_RTOL = 1e-9


def near_threshold(
    value: float, threshold: float, rtol: float = GEMM_REVERIFY_RTOL
) -> bool:
    """Whether a GEMM OD value is too close to ``T`` to decide alone.

    *rtol* widens with the kernel precision — the float32 tier passes
    its rigorous rounding band from
    :func:`repro.core.precision.reverify_rtol`. Non-finite values (a
    float32 or float64 accumulation that overflowed, or a NaN from
    pathological data) are always in-band: no bound certifies them, so
    the exact kernel decides.
    """
    if not np.isfinite(value):
        return True
    return abs(value - threshold) <= rtol * (abs(value) + abs(threshold) + 1.0)


def kth_bound(kth: float, rtol: float) -> float:
    """Safe upper bound on the true kth-neighbour distance.

    *kth* is the kth-smallest distance as computed by some kernel whose
    relative error band is *rtol* (0 for the exact float64 kernel, the
    rigorous rounding band for GEMM/float32 tiers). Inflating by the
    band makes the bound conservative in the only direction that
    matters for delta invalidation: a too-large bound can only cause
    extra eviction, never a wrong retention. Non-finite values get an
    infinite bound, i.e. the entry is always evicted.
    """
    if not np.isfinite(kth):
        return float("inf")
    return kth + rtol * (abs(kth) + 1.0)


def outlying_degree(
    backend: KnnBackend,
    query: np.ndarray,
    k: int,
    dims: Sequence[int],
    exclude: int | None = None,
) -> float:
    """One-shot OD computation against a backend (no caching)."""
    _, distances = backend.knn(query, k, dims, exclude=exclude)
    return float(distances.sum())


class SharedODCache:
    """Per-fit OD cache shared by every evaluator of one fitted miner.

    Keys are ``(point key, mask)`` pairs where the point key identifies
    a query point *together with its exclusion semantics*: dataset
    members queried with self-exclusion key by row id, external points
    by their coordinate bytes. Two queries with the same key are
    guaranteed to produce the same OD in every subspace of the current
    fit, so a stored value can be replayed verbatim.

    The cache is owned by the miner and must be kept consistent whenever
    the indexed dataset changes: ``extend``/refit drop everything via
    :meth:`invalidate`, while the streaming path uses the delta
    invalidation of :meth:`delta_insert` / :meth:`delta_expire` — an
    entry survives a window update only when its cached kth-distance
    bound *proves* the update cannot have changed its kNN k-prefix, so a
    retained value is still exactly what a fresh fit on the new window
    would compute (see docs/streaming.md for the argument).
    """

    __slots__ = ("_values", "_kth", "hits", "stores", "delta_evicted", "delta_retained")

    def __init__(self) -> None:
        self._values: dict[tuple[object, int], float] = {}
        #: Per-entry safe upper bound on the true kth-neighbour distance
        #: (:func:`kth_bound`); entries without one are conservatively
        #: evicted by every delta pass.
        self._kth: dict[tuple[object, int], float] = {}
        #: Number of lookups served from the cache.
        self.hits = 0
        #: Number of values recorded.
        self.stores = 0
        #: Entries evicted by delta invalidation (lifetime total).
        self.delta_evicted = 0
        #: Entries proven unaffected and kept across window updates.
        self.delta_retained = 0

    @staticmethod
    def point_key(query: np.ndarray, exclude: int | None) -> tuple[str, object]:
        """Canonical key of one ``(query, exclude)`` pair."""
        if exclude is not None:
            return ("row", exclude)
        return ("ext", query.tobytes())

    def get(self, point_key: tuple[str, object], mask: int) -> float | None:
        value = self._values.get((point_key, mask))
        if value is not None:
            self.hits += 1
        return value

    def put(
        self,
        point_key: tuple[str, object],
        mask: int,
        value: float,
        kth: float | None = None,
    ) -> None:
        """Record a value, optionally with its safe kth-distance bound.

        *kth* must come from :func:`kth_bound` (or be exact). A ``None``
        keeps any previously recorded bound (overwrites always store the
        same exact value, so an existing bound stays valid); when there
        is none, the OD value itself steps in: the sum of the k smallest
        distances is always ``>=`` the kth of them, so ``value`` is a
        safe — merely loose, by up to a factor of k — upper bound. That
        keeps entries from kernel paths that never see per-mask kth
        distances (the fused stacked-GEMM batch kernel) delta-retainable
        instead of unconditionally evicted.
        """
        if (point_key, mask) not in self._values:
            self.stores += 1
        self._values[(point_key, mask)] = value
        if kth is not None:
            self._kth[(point_key, mask)] = kth
        elif (point_key, mask) not in self._kth:
            self._kth[(point_key, mask)] = value

    def kth_of(self, point_key: tuple[str, object], mask: int) -> float | None:
        """The recorded kth-distance bound for an entry, if any."""
        return self._kth.get((point_key, mask))

    def invalidate(self) -> None:
        """Drop every cached value (dataset changed)."""
        self._values.clear()
        self._kth.clear()

    # -- delta invalidation ------------------------------------------------
    def _entry_query(self, point_key: tuple[str, object], data: np.ndarray, shift: int):
        """Current coordinates of a cached entry's query point.

        Row keys index the *current* window ``data`` after shifting down
        by *shift* (0 on insert, the expired count on expiry); external
        keys decode their coordinate bytes. ``None`` means the point
        cannot be resolved and the entry must be evicted.
        """
        kind, ident = point_key
        if kind == "row":
            row = ident - shift
            if not 0 <= row < data.shape[0]:
                return None
            return data[row]
        point = np.frombuffer(ident, dtype=np.float64)
        if point.shape[0] != data.shape[1]:
            return None
        return point

    def delta_insert(self, rows: np.ndarray, data: np.ndarray, metric) -> tuple[int, int]:
        """Evict only entries an inserted batch could have changed.

        An entry's OD is the sum of the k smallest subspace distances.
        Inserting rows can only change that sum if some new row lands
        strictly inside the cached kth-distance bound in the entry's
        subspace — a new distance ``>=`` the true kth leaves the
        k-smallest multiset (hence the sum, bit for bit) unchanged. The
        stored bound over-approximates the true kth, so comparing the
        inserted rows' subspace distances against it errs only toward
        eviction. Entries without a bound are evicted.

        *data* is the post-insert window matrix (row keys are unshifted
        by inserts). Returns ``(evicted, retained)``.
        """
        return self._delta_scan(rows, data, metric, shift=0, keep_ties=True)

    def delta_expire(
        self, expired_rows: np.ndarray, count: int, data: np.ndarray, metric
    ) -> tuple[int, int]:
        """Evict entries an expiry could have changed; re-key the rest.

        Entries *for* an expired query row are dropped. For every other
        entry, removing a row changes the k-smallest multiset only if
        that row's subspace distance was ``<=`` the true kth distance
        (it could have been one of the k neighbours, or tied with one);
        distances strictly above the cached bound prove it was not.
        Surviving row keys shift down by *count* to the new window
        coordinates — same point, same subspace, so the value and bound
        carry over verbatim.

        *data* is the post-expiry window matrix. Returns
        ``(evicted, retained)``.
        """
        return self._delta_scan(
            expired_rows, data, metric, shift=count, keep_ties=False
        )

    def _delta_scan(
        self,
        batch: np.ndarray,
        data: np.ndarray,
        metric,
        shift: int,
        keep_ties: bool,
    ) -> tuple[int, int]:
        """Shared delta pass: evict entries the batch's rows can reach.

        Entries are grouped by subspace mask so each group's survival
        test is one broadcasted ``pairwise_many`` call over all its
        query points and the whole batch at once (``len(batch)``
        ``pairwise`` calls for metrics without the batched view), not
        one call per entry — the scan has to be cheaper than the refit
        it replaces. ``keep_ties`` selects the
        insert rule (a new distance *equal* to the bound keeps the
        k-smallest multiset) versus the expire rule (a removed row tied
        with the kth could have been a neighbour, so ties evict).
        """
        if not self._values:
            return (0, 0)
        by_mask: dict[int, tuple[list, list, list]] = {}
        evicted = 0
        for (point_key, mask), value in self._values.items():
            kind, ident = point_key
            if shift and kind == "row" and ident < shift:
                evicted += 1
                continue
            kth = self._kth.get((point_key, mask))
            query = self._entry_query(point_key, data, shift) if kth is not None else None
            if query is None:
                evicted += 1
                continue
            keys, queries, bounds = by_mask.setdefault(mask, ([], [], []))
            keys.append((point_key, value))
            queries.append(query)
            bounds.append(kth)
        survivors: dict[tuple[object, int], float] = {}
        kths: dict[tuple[object, int], float] = {}
        batch_arr = np.asarray(batch, dtype=np.float64)
        many = getattr(metric, "pairwise_many", None)
        for mask, (keys, queries, bounds) in by_mask.items():
            dims = np.asarray(dims_of_mask(mask), dtype=np.intp)
            points = np.asarray(queries)
            if many is not None:
                mins = many(batch_arr, points, dims).min(axis=1)
            else:
                mins = np.full(len(keys), np.inf)
                for row in batch_arr:
                    np.minimum(mins, metric.pairwise(points, row, dims), out=mins)
            bounds_arr = np.asarray(bounds)
            kept = mins >= bounds_arr if keep_ties else mins > bounds_arr
            for j, (point_key, value) in enumerate(keys):
                if not kept[j]:
                    evicted += 1
                    continue
                kind, ident = point_key
                if shift and kind == "row":
                    point_key = ("row", ident - shift)
                survivors[(point_key, mask)] = value
                kths[(point_key, mask)] = bounds[j]
        self._values = survivors
        self._kth = kths
        self.delta_evicted += evicted
        self.delta_retained += len(survivors)
        return (evicted, len(survivors))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"SharedODCache(entries={len(self)}, hits={self.hits})"


class ODEvaluator:
    """Cached outlying-degree oracle for one query point.

    Parameters
    ----------
    backend:
        Any :class:`~repro.index.base.KnnBackend` over the dataset.
    query:
        The point whose outlying subspaces are being searched.
    k:
        Neighbour count of the OD definition.
    exclude:
        Row index of ``query`` inside the backend's dataset, or ``None``
        when the query is external. Self-matches are excluded by row
        identity so duplicate points stay legal neighbours.
    shared_cache:
        Optional per-fit :class:`SharedODCache`; when given, OD values
        are looked up there after the local cache misses and every
        computed value is published for other evaluators to reuse.
    kernel:
        OD-kernel selector for :meth:`od_many` — ``"exact"`` (default),
        ``"gemm"`` or ``"auto"``; resolved once against the backend's
        metric (an explicit ``"gemm"`` with an incapable metric fails
        here, loudly). Single-mask :meth:`od` always runs exact.
    precision:
        GEMM precision tier, resolved once against the resolved kernel
        (:func:`~repro.core.precision.resolve_precision`; ``"auto"``
        default picks float32 under the GEMM kernel, float64 anywhere
        else). The tier moves only *where* time goes: the exact
        re-verification band (:attr:`reverify_rtol`) widens to the
        rigorous float32 rounding bound, so threshold decisions always
        match the float64 kernel.

    Notes
    -----
    ``evaluations`` counts *real* kNN searches; ``cache_hits`` counts
    repeats served from the evaluator's own memory and ``shared_hits``
    those served from the shared per-fit cache. The search-cost tables
    of experiments E1–E5 and E10 report ``evaluations``.
    ``reverifications`` counts near-threshold exact re-computations —
    the honesty counter of the precision tier.
    """

    def __init__(
        self,
        backend: KnnBackend,
        query: np.ndarray,
        k: int,
        exclude: int | None = None,
        shared_cache: SharedODCache | None = None,
        kernel: str = "exact",
        precision: str = "auto",
    ) -> None:
        query = self._validate_query(query, backend.d)
        available = backend.size - (1 if exclude is not None else 0)
        if k < 1 or k > available:
            raise ConfigurationError(
                f"k must be in [1, {available}] for this dataset, got {k}"
            )
        self.backend = backend
        self.query = query
        self.k = k
        self.exclude = exclude
        metric = getattr(backend, "metric", None)
        self.kernel = "exact" if metric is None else resolve_kernel(kernel, metric)
        self.precision = resolve_precision(precision, self.kernel)
        #: Half-width of the near-threshold exact re-verification band.
        self.reverify_rtol = reverify_rtol(self.precision, backend.d)
        self.evaluations = 0
        self.cache_hits = 0
        self.shared_hits = 0
        self.reverifications = 0
        self._cache: dict[int, float] = {}
        self._shared = shared_cache
        self._point_key = (
            SharedODCache.point_key(query, exclude) if shared_cache is not None else None
        )
        self._components: np.ndarray | None = None
        self._components_probed = False
        self._components32: np.ndarray | None = None
        self._components32_probed = False

    @staticmethod
    def _validate_query(query: np.ndarray, d: int) -> np.ndarray:
        """Coerce and shape-check the query vector once, up front.

        Every later ``od`` call trusts the stored vector, so a malformed
        query fails here with the expected/actual shapes spelled out
        instead of surfacing as an opaque error deep inside a backend.
        """
        try:
            query = np.ascontiguousarray(query, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataShapeError(
                f"query could not be converted to a float vector: {exc}"
            ) from exc
        if query.ndim != 1 or query.shape[0] != d:
            raise DataShapeError(
                f"expected a query of shape ({d},), got shape {query.shape}"
            )
        return query

    def od(self, mask: int) -> float:
        """OD of the query point in the subspace encoded by *mask*."""
        cached = self.cached_od(mask)
        if cached is not None:
            return cached
        dims = dims_of_mask(mask)
        _, distances = self.backend.knn(self.query, self.k, dims, exclude=self.exclude)
        value = float(distances.sum())
        # Exact kernel: the kth distance itself is a safe bound.
        self._store(mask, value, kth=float(distances[-1]))
        self.evaluations += 1
        return value

    def od_many(self, masks: Sequence[int], threshold: float | None = None) -> dict[int, float]:
        """OD of the query point in every subspace of *masks* at once.

        The level-wide evaluation point of the sequential search: cache
        replays are split off mask by mask, and every remaining subspace
        is served by **one** backend ``knn_distance_sums`` call under
        this evaluator's kernel — for ``kernel="gemm"`` that is the
        single-GEMM level kernel, with a per-query component matrix
        reused across every level of the search.

        When *threshold* is given and the GEMM kernel computed the
        values, any value inside the :func:`near_threshold` band is
        re-computed with the exact kernel and replaced, so the caller's
        ``OD >= threshold`` decisions are guaranteed to match what the
        exact kernel would have decided — the pruning contract of the
        kernel knob.
        """
        values: dict[int, float] = {}
        new_masks: list[int] = []
        for mask in masks:
            cached = self.cached_od(mask)
            if cached is not None:
                values[mask] = cached
            else:
                new_masks.append(mask)
        if not new_masks:
            return values
        prefix_fn = getattr(self.backend, "knn_distance_prefix", None)
        if prefix_fn is None:
            # Tree backends: no level kernel, one branch-and-bound kNN
            # per subspace (their per-query descent is inherently serial).
            for mask in new_masks:
                values[mask] = self.od(mask)
            return values
        dims_arrays = [
            np.asarray(dims_of_mask(mask), dtype=np.intp) for mask in new_masks
        ]
        components = self._ensure_components(len(dims_arrays))
        kwargs = {}
        if self.precision == "float32":
            kwargs["precision"] = "float32"
            kwargs["components32"] = self._ensure_components32(components)
        # The prefix kernel rather than the sums kernel: the sums ARE
        # prefix.sum(axis=1) (documented on both backends), and the last
        # prefix column is the kth-neighbour distance the delta cache
        # invalidation needs as a bound — captured here for free.
        prefixes = prefix_fn(
            self.query,
            self.k,
            dims_arrays,
            exclude=self.exclude,
            components=components,
            kernel=self.kernel,
            **kwargs,
        )
        sums = prefixes.sum(axis=1)
        kths = prefixes[:, -1].copy()
        if self.kernel == "gemm" and threshold is not None:
            stats = getattr(self.backend, "stats", None)
            for idx in range(len(new_masks)):
                if near_threshold(float(sums[idx]), threshold, self.reverify_rtol):
                    row = prefix_fn(
                        self.query,
                        self.k,
                        [dims_arrays[idx]],
                        exclude=self.exclude,
                        components=components,
                        kernel="exact",
                    )[0]
                    sums[idx] = row.sum()
                    kths[idx] = row[-1]
                    self.reverifications += 1
                    if stats is not None:
                        stats.bump("reverified_masks")
        # GEMM values carry kernel noise inside the re-verification
        # band; inflate the recorded kth bound by it so delta retention
        # decisions are safe at every precision tier.
        band = self.reverify_rtol if self.kernel == "gemm" else 0.0
        for idx, mask in enumerate(new_masks):
            value = float(sums[idx])
            self._store(mask, value, kth=kth_bound(float(kths[idx]), band))
            self.evaluations += 1
            values[mask] = value
        return values

    def _ensure_components(self, new_count: int) -> "np.ndarray | None":
        """Lazily build the per-query distance-component matrix.

        Allocated on the first multi-subspace evaluation and kept for
        the evaluator's lifetime — a search revisits the backend once
        per lattice level, and one ``(n, d)`` matrix serves them all.
        """
        if (
            self._components is None
            and not self._components_probed
            and (new_count > 1 or self.kernel == "gemm")
        ):
            self._components_probed = True
            components_fn = getattr(self.backend, "distance_components", None)
            if components_fn is not None:
                self._components = components_fn(self.query)
        return self._components

    def _ensure_components32(self, components: "np.ndarray | None") -> "np.ndarray | None":
        """Lazily build (and keep) the pre-transposed float32 component
        copy of the precision tier; ``None`` (float32 overflow or no
        component matrix) makes the backend fall back to float64."""
        if not self._components32_probed:
            self._components32_probed = True
            self._components32 = components32_from(components)
        return self._components32

    def cached_od(self, mask: int) -> float | None:
        """Cached OD for *mask* (local, then shared), or ``None``.

        Counts the hit on the matching counter; performs no kNN work.
        The batched engine uses this to split a search's requested masks
        into cache replays and genuinely new evaluations.
        """
        cached = self._cache.get(mask)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if self._shared is not None:
            shared = self._shared.get(self._point_key, mask)
            if shared is not None:
                self.shared_hits += 1
                self._cache[mask] = shared
                return shared
        return None

    def prime(self, mask: int, value: float, kth: float | None = None) -> None:
        """Record an OD value computed externally on this point's behalf
        (the batched kNN path); counts as one real evaluation. *kth*, if
        given, must already be a safe bound (:func:`kth_bound`)."""
        self._store(mask, value, kth=kth)
        self.evaluations += 1

    def _store(self, mask: int, value: float, kth: float | None = None) -> None:
        self._cache[mask] = value
        if self._shared is not None:
            self._shared.put(self._point_key, mask, value, kth=kth)

    def od_subspace(self, subspace: Subspace) -> float:
        """OD in a :class:`~repro.core.subspace.Subspace` (wrapper API)."""
        if subspace.d != self.backend.d:
            raise DataShapeError(
                f"subspace lives in d={subspace.d} but the data has d={self.backend.d}"
            )
        return self.od(subspace.mask)

    def knn_set(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        """The KNNSet itself — ``(row indices, distances)`` in subspace
        *mask*; useful for explanation output and examples."""
        dims = dims_of_mask(mask)
        return self.backend.knn(self.query, self.k, dims, exclude=self.exclude)

    def reset_counters(self) -> None:
        """Zero the evaluation counters (the cache is kept)."""
        self.evaluations = 0
        self.cache_hits = 0
        self.shared_hits = 0
        self.reverifications = 0

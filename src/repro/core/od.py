"""The Outlying Degree (OD) measure — Section 2 of the paper.

``OD(p, s)`` is the sum of the distances from ``p`` to its ``k`` nearest
neighbours inside subspace ``s``:

    OD(p, s) = Σ_{i=1..k} Dist_s(p, p_i),   p_i ∈ KNNSet(p, s)

The measure is deliberately distribution-free (feature (1) of the
paper) and monotone under subspace inclusion, which Section 3.1 turns
into the two pruning rules. The monotonicity argument, for any metric
with ``Dist_s1 >= Dist_s2`` when ``s1 ⊇ s2``:

    OD_s1(p) = Σ Dist_s1(p, kNN_s1)      (definition)
             ≥ Σ Dist_s2(p, kNN_s1)      (per-pair monotonicity)
             ≥ Σ Dist_s2(p, kNN_s2)      (kNN_s2 minimises the s2 sum)
             = OD_s2(p)

:class:`ODEvaluator` wraps a kNN backend with a per-``(query, subspace)``
cache, because the dynamic search and the learning pass revisit
subspaces for the same point (e.g. when ablation baselines replay a
search) and because evaluation counting must distinguish cached hits
from real work.

:class:`SharedODCache` extends that idea across queries: one per-fit
cache keyed by ``(point key, subspace mask)`` that every evaluator of
the same fitted miner can consult, so overlapping searches — the
fit-time learning pass, repeated queries of the same row, duplicate
points inside one batch — reuse OD values instead of redoing kNN work.
A cached OD is the exact value the backend would return (not an
approximation), so sharing never changes answers, only cost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import resolve_kernel
from repro.core.precision import resolve_precision, reverify_rtol
from repro.core.subspace import Subspace, dims_of_mask
from repro.index.base import KnnBackend, components32_from

__all__ = [
    "GEMM_REVERIFY_RTOL",
    "ODEvaluator",
    "SharedODCache",
    "near_threshold",
    "outlying_degree",
]

#: Relative half-width of the band around the threshold inside which a
#: GEMM-computed OD is re-verified with the exact kernel. BLAS-vs-exact
#: accumulation differences are ~1e-13 relative at realistic d, so 1e-9
#: leaves four orders of magnitude of margin while re-verifying almost
#: nothing: outside the band the two kernels provably agree on the
#: ``OD >= T`` decision, inside it the exact kernel decides.
GEMM_REVERIFY_RTOL = 1e-9


def near_threshold(
    value: float, threshold: float, rtol: float = GEMM_REVERIFY_RTOL
) -> bool:
    """Whether a GEMM OD value is too close to ``T`` to decide alone.

    *rtol* widens with the kernel precision — the float32 tier passes
    its rigorous rounding band from
    :func:`repro.core.precision.reverify_rtol`. Non-finite values (a
    float32 or float64 accumulation that overflowed, or a NaN from
    pathological data) are always in-band: no bound certifies them, so
    the exact kernel decides.
    """
    if not np.isfinite(value):
        return True
    return abs(value - threshold) <= rtol * (abs(value) + abs(threshold) + 1.0)


def outlying_degree(
    backend: KnnBackend,
    query: np.ndarray,
    k: int,
    dims: Sequence[int],
    exclude: int | None = None,
) -> float:
    """One-shot OD computation against a backend (no caching)."""
    _, distances = backend.knn(query, k, dims, exclude=exclude)
    return float(distances.sum())


class SharedODCache:
    """Per-fit OD cache shared by every evaluator of one fitted miner.

    Keys are ``(point key, mask)`` pairs where the point key identifies
    a query point *together with its exclusion semantics*: dataset
    members queried with self-exclusion key by row id, external points
    by their coordinate bytes. Two queries with the same key are
    guaranteed to produce the same OD in every subspace of the current
    fit, so a stored value can be replayed verbatim.

    The cache is owned by the miner and must be :meth:`invalidate`\\ d
    whenever the indexed dataset changes (``extend``/refit): inserting
    rows can change any point's neighbour set in any subspace.
    """

    __slots__ = ("_values", "hits", "stores")

    def __init__(self) -> None:
        self._values: dict[tuple[object, int], float] = {}
        #: Number of lookups served from the cache.
        self.hits = 0
        #: Number of values recorded.
        self.stores = 0

    @staticmethod
    def point_key(query: np.ndarray, exclude: int | None) -> tuple[str, object]:
        """Canonical key of one ``(query, exclude)`` pair."""
        if exclude is not None:
            return ("row", exclude)
        return ("ext", query.tobytes())

    def get(self, point_key: tuple[str, object], mask: int) -> float | None:
        value = self._values.get((point_key, mask))
        if value is not None:
            self.hits += 1
        return value

    def put(self, point_key: tuple[str, object], mask: int, value: float) -> None:
        if (point_key, mask) not in self._values:
            self.stores += 1
        self._values[(point_key, mask)] = value

    def invalidate(self) -> None:
        """Drop every cached value (dataset changed)."""
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"SharedODCache(entries={len(self)}, hits={self.hits})"


class ODEvaluator:
    """Cached outlying-degree oracle for one query point.

    Parameters
    ----------
    backend:
        Any :class:`~repro.index.base.KnnBackend` over the dataset.
    query:
        The point whose outlying subspaces are being searched.
    k:
        Neighbour count of the OD definition.
    exclude:
        Row index of ``query`` inside the backend's dataset, or ``None``
        when the query is external. Self-matches are excluded by row
        identity so duplicate points stay legal neighbours.
    shared_cache:
        Optional per-fit :class:`SharedODCache`; when given, OD values
        are looked up there after the local cache misses and every
        computed value is published for other evaluators to reuse.
    kernel:
        OD-kernel selector for :meth:`od_many` — ``"exact"`` (default),
        ``"gemm"`` or ``"auto"``; resolved once against the backend's
        metric (an explicit ``"gemm"`` with an incapable metric fails
        here, loudly). Single-mask :meth:`od` always runs exact.
    precision:
        GEMM precision tier, resolved once against the resolved kernel
        (:func:`~repro.core.precision.resolve_precision`; ``"auto"``
        default picks float32 under the GEMM kernel, float64 anywhere
        else). The tier moves only *where* time goes: the exact
        re-verification band (:attr:`reverify_rtol`) widens to the
        rigorous float32 rounding bound, so threshold decisions always
        match the float64 kernel.

    Notes
    -----
    ``evaluations`` counts *real* kNN searches; ``cache_hits`` counts
    repeats served from the evaluator's own memory and ``shared_hits``
    those served from the shared per-fit cache. The search-cost tables
    of experiments E1–E5 and E10 report ``evaluations``.
    ``reverifications`` counts near-threshold exact re-computations —
    the honesty counter of the precision tier.
    """

    def __init__(
        self,
        backend: KnnBackend,
        query: np.ndarray,
        k: int,
        exclude: int | None = None,
        shared_cache: SharedODCache | None = None,
        kernel: str = "exact",
        precision: str = "auto",
    ) -> None:
        query = self._validate_query(query, backend.d)
        available = backend.size - (1 if exclude is not None else 0)
        if k < 1 or k > available:
            raise ConfigurationError(
                f"k must be in [1, {available}] for this dataset, got {k}"
            )
        self.backend = backend
        self.query = query
        self.k = k
        self.exclude = exclude
        metric = getattr(backend, "metric", None)
        self.kernel = "exact" if metric is None else resolve_kernel(kernel, metric)
        self.precision = resolve_precision(precision, self.kernel)
        #: Half-width of the near-threshold exact re-verification band.
        self.reverify_rtol = reverify_rtol(self.precision, backend.d)
        self.evaluations = 0
        self.cache_hits = 0
        self.shared_hits = 0
        self.reverifications = 0
        self._cache: dict[int, float] = {}
        self._shared = shared_cache
        self._point_key = (
            SharedODCache.point_key(query, exclude) if shared_cache is not None else None
        )
        self._components: np.ndarray | None = None
        self._components_probed = False
        self._components32: np.ndarray | None = None
        self._components32_probed = False

    @staticmethod
    def _validate_query(query: np.ndarray, d: int) -> np.ndarray:
        """Coerce and shape-check the query vector once, up front.

        Every later ``od`` call trusts the stored vector, so a malformed
        query fails here with the expected/actual shapes spelled out
        instead of surfacing as an opaque error deep inside a backend.
        """
        try:
            query = np.ascontiguousarray(query, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataShapeError(
                f"query could not be converted to a float vector: {exc}"
            ) from exc
        if query.ndim != 1 or query.shape[0] != d:
            raise DataShapeError(
                f"expected a query of shape ({d},), got shape {query.shape}"
            )
        return query

    def od(self, mask: int) -> float:
        """OD of the query point in the subspace encoded by *mask*."""
        cached = self.cached_od(mask)
        if cached is not None:
            return cached
        dims = dims_of_mask(mask)
        value = outlying_degree(
            self.backend, self.query, self.k, dims, exclude=self.exclude
        )
        self._store(mask, value)
        self.evaluations += 1
        return value

    def od_many(self, masks: Sequence[int], threshold: float | None = None) -> dict[int, float]:
        """OD of the query point in every subspace of *masks* at once.

        The level-wide evaluation point of the sequential search: cache
        replays are split off mask by mask, and every remaining subspace
        is served by **one** backend ``knn_distance_sums`` call under
        this evaluator's kernel — for ``kernel="gemm"`` that is the
        single-GEMM level kernel, with a per-query component matrix
        reused across every level of the search.

        When *threshold* is given and the GEMM kernel computed the
        values, any value inside the :func:`near_threshold` band is
        re-computed with the exact kernel and replaced, so the caller's
        ``OD >= threshold`` decisions are guaranteed to match what the
        exact kernel would have decided — the pruning contract of the
        kernel knob.
        """
        values: dict[int, float] = {}
        new_masks: list[int] = []
        for mask in masks:
            cached = self.cached_od(mask)
            if cached is not None:
                values[mask] = cached
            else:
                new_masks.append(mask)
        if not new_masks:
            return values
        sums_fn = getattr(self.backend, "knn_distance_sums", None)
        if sums_fn is None:
            # Tree backends: no level kernel, one branch-and-bound kNN
            # per subspace (their per-query descent is inherently serial).
            for mask in new_masks:
                values[mask] = self.od(mask)
            return values
        dims_arrays = [
            np.asarray(dims_of_mask(mask), dtype=np.intp) for mask in new_masks
        ]
        components = self._ensure_components(len(dims_arrays))
        kwargs = {}
        if self.precision == "float32":
            kwargs["precision"] = "float32"
            kwargs["components32"] = self._ensure_components32(components)
        sums = sums_fn(
            self.query,
            self.k,
            dims_arrays,
            exclude=self.exclude,
            components=components,
            kernel=self.kernel,
            **kwargs,
        )
        if self.kernel == "gemm" and threshold is not None:
            stats = getattr(self.backend, "stats", None)
            for idx in range(len(new_masks)):
                if near_threshold(float(sums[idx]), threshold, self.reverify_rtol):
                    sums[idx] = sums_fn(
                        self.query,
                        self.k,
                        [dims_arrays[idx]],
                        exclude=self.exclude,
                        components=components,
                        kernel="exact",
                    )[0]
                    self.reverifications += 1
                    if stats is not None:
                        stats.bump("reverified_masks")
        for mask, value in zip(new_masks, sums):
            value = float(value)
            self._store(mask, value)
            self.evaluations += 1
            values[mask] = value
        return values

    def _ensure_components(self, new_count: int) -> "np.ndarray | None":
        """Lazily build the per-query distance-component matrix.

        Allocated on the first multi-subspace evaluation and kept for
        the evaluator's lifetime — a search revisits the backend once
        per lattice level, and one ``(n, d)`` matrix serves them all.
        """
        if (
            self._components is None
            and not self._components_probed
            and (new_count > 1 or self.kernel == "gemm")
        ):
            self._components_probed = True
            components_fn = getattr(self.backend, "distance_components", None)
            if components_fn is not None:
                self._components = components_fn(self.query)
        return self._components

    def _ensure_components32(self, components: "np.ndarray | None") -> "np.ndarray | None":
        """Lazily build (and keep) the pre-transposed float32 component
        copy of the precision tier; ``None`` (float32 overflow or no
        component matrix) makes the backend fall back to float64."""
        if not self._components32_probed:
            self._components32_probed = True
            self._components32 = components32_from(components)
        return self._components32

    def cached_od(self, mask: int) -> float | None:
        """Cached OD for *mask* (local, then shared), or ``None``.

        Counts the hit on the matching counter; performs no kNN work.
        The batched engine uses this to split a search's requested masks
        into cache replays and genuinely new evaluations.
        """
        cached = self._cache.get(mask)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if self._shared is not None:
            shared = self._shared.get(self._point_key, mask)
            if shared is not None:
                self.shared_hits += 1
                self._cache[mask] = shared
                return shared
        return None

    def prime(self, mask: int, value: float) -> None:
        """Record an OD value computed externally on this point's behalf
        (the batched kNN path); counts as one real evaluation."""
        self._store(mask, value)
        self.evaluations += 1

    def _store(self, mask: int, value: float) -> None:
        self._cache[mask] = value
        if self._shared is not None:
            self._shared.put(self._point_key, mask, value)

    def od_subspace(self, subspace: Subspace) -> float:
        """OD in a :class:`~repro.core.subspace.Subspace` (wrapper API)."""
        if subspace.d != self.backend.d:
            raise DataShapeError(
                f"subspace lives in d={subspace.d} but the data has d={self.backend.d}"
            )
        return self.od(subspace.mask)

    def knn_set(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        """The KNNSet itself — ``(row indices, distances)`` in subspace
        *mask*; useful for explanation output and examples."""
        dims = dims_of_mask(mask)
        return self.backend.knn(self.query, self.k, dims, exclude=self.exclude)

    def reset_counters(self) -> None:
        """Zero the evaluation counters (the cache is kept)."""
        self.evaluations = 0
        self.cache_hits = 0
        self.shared_hits = 0
        self.reverifications = 0

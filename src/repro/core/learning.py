"""Sample-based learning of the pruning priors — Section 3.2.

Before query points are served, HOS-Miner runs the full dynamic search
on a small random sample of dataset points, using the uniform prior
assumption (0.5/0.5 at interior levels). Each sample search decides the
outlier status of *every* subspace (evaluation plus lossless pruning),
so the per-level outlying fraction

    p_up(m, sp) = |{s : dim(s) = m, OD_s(sp) >= T}| / C(d, m)

is exact, not an estimate, for that sample point. Averaging over the
``S`` samples yields the priors used by all later query searches, with
the paper's structural zeros ``p_down(1) = p_up(d) = 0``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.od import ODEvaluator, SharedODCache
from repro.core.priors import PruningPriors
from repro.core.search import DynamicSubspaceSearch, SearchStats
from repro.index.base import KnnBackend

__all__ = ["LearningReport", "learn_priors"]


@dataclass(slots=True)
class LearningReport:
    """Outcome of one learning pass.

    Attributes
    ----------
    priors:
        The averaged :class:`~repro.core.priors.PruningPriors` to use for
        query points.
    sample_rows:
        Dataset rows the pass searched.
    per_sample_fractions:
        For each sample, the per-level outlying fraction array
        (index = level, slot 0 unused).
    per_sample_stats:
        The :class:`~repro.core.search.SearchStats` of each sample search.
    wall_time_s:
        Total learning time.
    """

    priors: PruningPriors
    sample_rows: list[int]
    per_sample_fractions: list[np.ndarray] = field(default_factory=list)
    per_sample_stats: list[SearchStats] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def total_od_evaluations(self) -> int:
        return sum(stats.od_evaluations for stats in self.per_sample_stats)


def learn_priors(
    backend: KnnBackend,
    X: np.ndarray,
    k: int,
    threshold: float,
    sample_size: int,
    seed: int | None = 0,
    reselect: str = "level",
    adaptive: bool = False,
    shared_cache: SharedODCache | None = None,
    kernel: str = "exact",
    precision: str = "auto",
) -> LearningReport:
    """Run the sample-based learning process and average the priors.

    Parameters
    ----------
    backend:
        kNN backend already built over ``X``.
    X:
        The dataset itself (needed to look up sample points; must be the
        matrix the backend indexes).
    k, threshold:
        OD parameters shared with the later query searches.
    sample_size:
        Number of sample points ``S``. ``0`` is allowed and returns the
        uniform priors unchanged (useful as the "no learning" ablation).
    seed:
        Seed for the sampling RNG.
    reselect, adaptive:
        Forwarded to :class:`~repro.core.search.DynamicSubspaceSearch`.
        Neither changes the learned fractions (search is lossless);
        ``adaptive`` merely cheapens the sample searches.
    shared_cache:
        Optional per-fit :class:`~repro.core.od.SharedODCache`; the
        sample searches then publish (and reuse) their OD values, so a
        later batched query of a sample row replays the learning pass's
        work for free. Cached values are exact, so the learned priors
        are unaffected.
    kernel:
        Resolved OD-kernel selector for the sample searches (the miner
        passes its fitted kernel so learning runs on the same fast
        path as queries). Lossless pruning is preserved under either
        kernel, so the learned fractions are unchanged.
    precision:
        GEMM precision tier for the sample searches (the miner passes
        its resolved tier). Near-threshold re-verification keeps every
        per-sample outlying fraction — hence the learned priors —
        identical across tiers.
    """
    if sample_size < 0:
        raise ConfigurationError(f"sample_size must be >= 0, got {sample_size}")
    if X.shape[0] != backend.size or X.shape[1] != backend.d:
        raise ConfigurationError(
            f"X has shape {X.shape} but the backend indexes "
            f"({backend.size}, {backend.d})"
        )
    d = backend.d
    uniform = PruningPriors.uniform(d)
    if sample_size == 0:
        return LearningReport(priors=uniform, sample_rows=[])

    if sample_size > X.shape[0]:
        raise ConfigurationError(
            f"sample_size={sample_size} exceeds the dataset size {X.shape[0]}"
        )

    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    sample_rows = sorted(
        int(row) for row in rng.choice(X.shape[0], size=sample_size, replace=False)
    )

    p_up_sum = np.zeros(d + 1)
    report = LearningReport(priors=uniform, sample_rows=sample_rows)
    for row in sample_rows:
        evaluator = ODEvaluator(
            backend,
            X[row],
            k,
            exclude=row,
            shared_cache=shared_cache,
            kernel=kernel,
            precision=precision,
        )
        outcome = DynamicSubspaceSearch(
            evaluator, threshold, uniform, reselect, adaptive=adaptive
        ).run()
        fractions = np.zeros(d + 1)
        for m in range(1, d + 1):
            fractions[m] = outcome.lattice.level_outlying_fraction(m)
        p_up_sum += fractions
        report.per_sample_fractions.append(fractions)
        report.per_sample_stats.append(outcome.stats)

    p_up = p_up_sum / sample_size
    p_down = 1.0 - p_up
    p_up[0] = p_down[0] = 0.0
    # Structural zeros (paper, end of Section 3.2): level 1 has no
    # subsets to prune downward, level d has no supersets to prune upward.
    p_down[1] = 0.0
    p_up[d] = 0.0
    report.priors = PruningPriors(d, p_up, p_down)
    report.wall_time_s = time.perf_counter() - start
    return report

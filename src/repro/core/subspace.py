"""Subspace algebra on bitmasks.

A *subspace* of a ``d``-dimensional space is a non-empty subset of the
dimension indices ``{0, .., d-1}``. HOS-Miner explores the lattice of all
``2**d - 1`` non-empty subspaces, so the representation must make the
lattice operations (subset tests, subset/superset enumeration, level
queries) cheap.

Internally every subspace is an ``int`` bitmask: bit ``i`` set means
dimension ``i`` participates. The public value type :class:`Subspace`
wraps a mask together with the width ``d`` of the ambient space and is
hashable, ordered and immutable, so it can be used in sets, dict keys
and sorted output.

The paper prints subspaces in 1-based bracket notation (``[1, 3]`` for
dimensions 0 and 2); :meth:`Subspace.notation` reproduces that format.

Hot loops in :mod:`repro.core.lattice` and :mod:`repro.core.search`
operate on raw masks via the module-level functions below; the wrapper
only appears at API boundaries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import DimensionalityError

__all__ = [
    "Subspace",
    "all_masks",
    "dims_of_mask",
    "full_mask",
    "is_proper_subset",
    "is_subset",
    "iter_proper_submasks",
    "iter_proper_supermasks",
    "iter_submasks",
    "iter_supermasks",
    "mask_of_dims",
    "masks_at_level",
    "popcount",
]


def popcount(mask: int) -> int:
    """Number of set bits in *mask* (the dimensionality of the subspace)."""
    return mask.bit_count()


def full_mask(d: int) -> int:
    """Mask of the full ``d``-dimensional space."""
    if d <= 0:
        raise DimensionalityError(f"ambient dimensionality must be positive, got {d}")
    return (1 << d) - 1


def mask_of_dims(dims: Iterable[int], d: int | None = None) -> int:
    """Build a mask from an iterable of 0-based dimension indices.

    When *d* is given, every index is validated against ``range(d)``.
    """
    mask = 0
    for dim in dims:
        if dim < 0 or (d is not None and dim >= d):
            raise DimensionalityError(
                f"dimension index {dim} out of range for d={d}"
            )
        mask |= 1 << dim
    return mask


def dims_of_mask(mask: int) -> tuple[int, ...]:
    """Sorted tuple of 0-based dimension indices present in *mask*."""
    dims = []
    while mask:
        low = mask & -mask
        dims.append(low.bit_length() - 1)
        mask ^= low
    return tuple(dims)


def is_subset(inner: int, outer: int) -> bool:
    """``True`` when every dimension of *inner* is also in *outer*."""
    return inner & ~outer == 0


def is_proper_subset(inner: int, outer: int) -> bool:
    """``True`` when *inner* ⊂ *outer* strictly."""
    return inner != outer and inner & ~outer == 0


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every non-empty submask of *mask*, including *mask* itself.

    Uses the classic ``sub = (sub - 1) & mask`` walk, which visits each of
    the ``2**m - 1`` non-empty submasks exactly once in decreasing order.
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def iter_proper_submasks(mask: int) -> Iterator[int]:
    """Yield every non-empty *proper* submask of *mask*."""
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def iter_supermasks(mask: int, d: int) -> Iterator[int]:
    """Yield every supermask of *mask* within a ``d``-wide space, inclusive."""
    complement = full_mask(d) & ~mask
    sub = complement
    # Walk submasks of the complement (including 0) and OR them in.
    while True:
        yield mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & complement


def iter_proper_supermasks(mask: int, d: int) -> Iterator[int]:
    """Yield every *proper* supermask of *mask* within a ``d``-wide space."""
    for sup in iter_supermasks(mask, d):
        if sup != mask:
            yield sup


def masks_at_level(d: int, m: int) -> list[int]:
    """All masks of dimensionality *m* inside a ``d``-wide space.

    Returned in lexicographic order of the underlying dimension tuples,
    which makes test output and bench tables deterministic.
    """
    if not 0 <= m <= d:
        raise DimensionalityError(f"level {m} out of range for d={d}")
    return [mask_of_dims(combo) for combo in itertools.combinations(range(d), m)]


def all_masks(d: int) -> Iterator[int]:
    """Yield every non-empty mask of a ``d``-wide space (1 .. 2**d - 1)."""
    return iter(range(1, 1 << d))


@dataclass(frozen=True, slots=True)
class Subspace:
    """An immutable subspace of a ``d``-dimensional ambient space.

    Parameters
    ----------
    mask:
        Bitmask of participating dimensions; must be non-zero and must
        fit inside ``d`` bits.
    d:
        Width of the ambient space.

    Examples
    --------
    >>> s = Subspace.from_dims([0, 2], d=4)
    >>> s.dims
    (0, 2)
    >>> s.notation()
    '[1, 3]'
    >>> s.is_subset_of(Subspace.from_dims([0, 1, 2], d=4))
    True
    """

    mask: int
    d: int

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise DimensionalityError(f"ambient dimensionality must be positive, got {self.d}")
        if self.mask <= 0:
            raise DimensionalityError("a subspace must contain at least one dimension")
        if self.mask >= (1 << self.d):
            raise DimensionalityError(
                f"mask {self.mask:#x} does not fit in a {self.d}-dimensional space"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_dims(cls, dims: Iterable[int], d: int) -> "Subspace":
        """Build from 0-based dimension indices."""
        return cls(mask_of_dims(dims, d), d)

    @classmethod
    def from_dims_1based(cls, dims: Iterable[int], d: int) -> "Subspace":
        """Build from 1-based indices, as printed in the paper (``[1, 3]``)."""
        return cls.from_dims((dim - 1 for dim in dims), d)

    @classmethod
    def full(cls, d: int) -> "Subspace":
        """The full space — the top element of the lattice."""
        return cls(full_mask(d), d)

    # -- structure ------------------------------------------------------
    @property
    def dims(self) -> tuple[int, ...]:
        """Sorted tuple of 0-based dimension indices."""
        return dims_of_mask(self.mask)

    @property
    def dimensionality(self) -> int:
        """Number of participating dimensions (the lattice level ``m``)."""
        return popcount(self.mask)

    def __len__(self) -> int:
        return self.dimensionality

    def __contains__(self, dim: int) -> bool:
        return 0 <= dim < self.d and bool(self.mask >> dim & 1)

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims)

    # -- lattice relations ----------------------------------------------
    def is_subset_of(self, other: "Subspace") -> bool:
        """``True`` when ``self ⊆ other`` (same ambient space required)."""
        self._check_same_space(other)
        return is_subset(self.mask, other.mask)

    def is_superset_of(self, other: "Subspace") -> bool:
        """``True`` when ``self ⊇ other``."""
        self._check_same_space(other)
        return is_subset(other.mask, self.mask)

    def union(self, other: "Subspace") -> "Subspace":
        """Smallest subspace containing both operands (lattice join)."""
        self._check_same_space(other)
        return Subspace(self.mask | other.mask, self.d)

    def intersection(self, other: "Subspace") -> "Subspace | None":
        """Largest common subspace (lattice meet); ``None`` when disjoint."""
        self._check_same_space(other)
        meet = self.mask & other.mask
        return Subspace(meet, self.d) if meet else None

    def subsets(self, proper: bool = True) -> Iterator["Subspace"]:
        """Iterate (proper, by default) non-empty subsets."""
        masks = iter_proper_submasks(self.mask) if proper else iter_submasks(self.mask)
        return (Subspace(mask, self.d) for mask in masks)

    def supersets(self, proper: bool = True) -> Iterator["Subspace"]:
        """Iterate (proper, by default) supersets within the ambient space."""
        masks = (
            iter_proper_supermasks(self.mask, self.d)
            if proper
            else iter_supermasks(self.mask, self.d)
        )
        return (Subspace(mask, self.d) for mask in masks)

    def project(self, row: Sequence[float]) -> tuple[float, ...]:
        """Project a length-``d`` vector onto this subspace's dimensions."""
        if len(row) != self.d:
            raise DimensionalityError(
                f"cannot project a length-{len(row)} vector in a d={self.d} space"
            )
        return tuple(row[dim] for dim in self.dims)

    # -- rendering / ordering --------------------------------------------
    def notation(self) -> str:
        """The paper's 1-based bracket notation, e.g. ``'[1, 3]'``."""
        return "[" + ", ".join(str(dim + 1) for dim in self.dims) + "]"

    def __repr__(self) -> str:
        return f"Subspace({list(self.dims)}, d={self.d})"

    def __lt__(self, other: "Subspace") -> bool:
        """Order by level first, then lexicographically — the output order
        used everywhere in result listings."""
        self._check_same_space(other)
        return (self.dimensionality, self.dims) < (other.dimensionality, other.dims)

    def _check_same_space(self, other: "Subspace") -> None:
        if self.d != other.d:
            raise DimensionalityError(
                f"subspaces live in different ambient spaces (d={self.d} vs d={other.d})"
            )

"""User-facing results of HOS-Miner queries.

:class:`OutlyingSubspaceResult` bundles what the demo UI of the paper
would show for one query point: the minimal outlying subspaces
(post-filter), the full answer-set size, the OD value behind every
returned subspace, and the machine-independent search costs.
:class:`BatchResult` wraps one such result per point of a
:meth:`~repro.core.miner.HOSMiner.query_batch` call plus the aggregate
cost profile of the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.filtering import expand_upward
from repro.core.search import SearchStats
from repro.core.subspace import Subspace, is_subset

__all__ = ["BatchResult", "OutlyingSubspaceResult"]


@dataclass(slots=True)
class OutlyingSubspaceResult:
    """Answer to "in which subspaces is this point an outlier?".

    Attributes
    ----------
    query:
        The query point (full-dimensional vector).
    d, k, threshold:
        Search parameters.
    minimal:
        The filtered answer: minimal outlying subspaces, ascending by
        (dimensionality, dimensions).
    total_outlying:
        Size of the unfiltered upward-closed answer set.
    od_values:
        OD of the query point in each minimal subspace.
    stats:
        Search cost profile.
    feature_names:
        Optional column names used by :meth:`explain`.
    """

    query: np.ndarray
    d: int
    k: int
    threshold: float
    minimal: list[Subspace]
    total_outlying: int
    od_values: dict[Subspace, float] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    @property
    def is_outlier(self) -> bool:
        """The paper's criterion: an empty answer set means the point is
        not an outlier in any subspace."""
        return bool(self.minimal)

    @property
    def refinement_factor(self) -> float:
        """How much the filter shrank the answer (≥ 1; 1 when empty)."""
        if not self.minimal:
            return 1.0
        return self.total_outlying / len(self.minimal)

    def is_outlying_in(self, subspace: Subspace) -> bool:
        """Whether *subspace* belongs to the (upward-closed) answer set."""
        return any(is_subset(kept.mask, subspace.mask) for kept in self.minimal)

    def all_outlying_masks(self) -> set[int]:
        """Reconstruct the full answer set from the minimal antichain."""
        return expand_upward([s.mask for s in self.minimal], self.d)

    # ------------------------------------------------------------------
    def _name(self, dim: int) -> str:
        if self.feature_names is not None and dim < len(self.feature_names):
            return self.feature_names[dim]
        return f"x{dim + 1}"

    def describe_subspace(self, subspace: Subspace) -> str:
        """Render a subspace with feature names, e.g. ``{height, speed}``."""
        return "{" + ", ".join(self._name(dim) for dim in subspace.dims) + "}"

    def explain(self, max_rows: int = 10) -> str:
        """Human-readable multi-line summary (demo-style output)."""
        lines = []
        if not self.minimal:
            lines.append(
                f"Point is NOT an outlier in any subspace (k={self.k}, "
                f"T={self.threshold:.4g})."
            )
            return "\n".join(lines)
        lines.append(
            f"Point is an outlier in {self.total_outlying} subspaces "
            f"(k={self.k}, T={self.threshold:.4g}); "
            f"{len(self.minimal)} minimal one(s):"
        )
        for subspace in self.minimal[:max_rows]:
            od = self.od_values.get(subspace)
            od_text = f"OD={od:.4g}" if od is not None else "OD=inferred"
            lines.append(
                f"  {subspace.notation():<16} {self.describe_subspace(subspace):<40} {od_text}"
            )
        hidden = len(self.minimal) - max_rows
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"OutlyingSubspaceResult(minimal={[s.notation() for s in self.minimal]}, "
            f"total={self.total_outlying}, k={self.k}, T={self.threshold:.4g})"
        )


@dataclass(slots=True)
class BatchResult:
    """Answers and aggregate costs of one batched multi-query call.

    ``results[i]`` is exactly the :class:`OutlyingSubspaceResult` a
    sequential ``query_point``/``query_row`` call would have produced
    for target ``i`` — the batch engine only changes how the work is
    scheduled, never the answers.

    Attributes
    ----------
    results:
        Per-target results, in input order.
    stats:
        Aggregate :class:`~repro.core.search.SearchStats` (numeric
        fields summed over all searches; the per-search level schedules
        are not concatenated because their interleaving is a scheduling
        artefact).
    knn_evaluations:
        Real kNN computations the batch performed (cache hits excluded).
    shared_cache_hits:
        OD values replayed from the per-fit shared cache instead of
        being recomputed.
    wall_time_s:
        End-to-end batch wall time, including result assembly.
    workers:
        Number of worker processes used (1 = in-process).
    """

    results: list[OutlyingSubspaceResult]
    stats: SearchStats = field(default_factory=SearchStats)
    knn_evaluations: int = 0
    shared_cache_hits: int = 0
    wall_time_s: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[OutlyingSubspaceResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> OutlyingSubspaceResult:
        return self.results[index]

    @property
    def n_outliers(self) -> int:
        """How many targets are outliers in at least one subspace."""
        return sum(1 for result in self.results if result.is_outlier)

    @property
    def queries_per_second(self) -> float:
        """Throughput of the batch (0 when the batch was instantaneous)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return len(self.results) / self.wall_time_s

    def summary(self) -> str:
        """One-paragraph human-readable account of the batch."""
        lines = [
            f"{len(self.results)} queries in {self.wall_time_s:.3f}s "
            f"({self.queries_per_second:.1f} q/s, workers={self.workers}): "
            f"{self.n_outliers} outlier(s)",
            f"  kNN evaluations: {self.knn_evaluations}, "
            f"shared-cache hits: {self.shared_cache_hits}, "
            f"OD values consumed: {self.stats.od_evaluations}",
            f"  pruning: {self.stats.upward_pruned} upward, "
            f"{self.stats.downward_pruned} downward",
        ]
        if self.stats.shard_round_trips:
            lines.append(
                f"  shard scatter: {self.stats.shard_round_trips} round "
                f"trip(s), {self.stats.bytes_shipped} bytes shipped"
            )
        faults = (
            self.stats.worker_respawns
            + self.stats.timeouts
            + self.stats.retries
            + self.stats.degraded_rounds
        )
        if faults:
            lines.append(
                f"  fault recovery: {self.stats.worker_respawns} worker "
                f"respawn(s), {self.stats.timeouts} timeout(s), "
                f"{self.stats.retries} replay retrie(s), "
                f"{self.stats.degraded_rounds} degraded shard-round(s)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BatchResult(n={len(self.results)}, outliers={self.n_outliers}, "
            f"knn_evaluations={self.knn_evaluations}, "
            f"shared_cache_hits={self.shared_cache_hits})"
        )

"""User-facing result of one HOS-Miner query.

Bundles what the demo UI of the paper would show: the minimal outlying
subspaces (post-filter), the full answer-set size, the OD value behind
every returned subspace, and the machine-independent search costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.filtering import expand_upward
from repro.core.search import SearchStats
from repro.core.subspace import Subspace, is_subset

__all__ = ["OutlyingSubspaceResult"]


@dataclass(slots=True)
class OutlyingSubspaceResult:
    """Answer to "in which subspaces is this point an outlier?".

    Attributes
    ----------
    query:
        The query point (full-dimensional vector).
    d, k, threshold:
        Search parameters.
    minimal:
        The filtered answer: minimal outlying subspaces, ascending by
        (dimensionality, dimensions).
    total_outlying:
        Size of the unfiltered upward-closed answer set.
    od_values:
        OD of the query point in each minimal subspace.
    stats:
        Search cost profile.
    feature_names:
        Optional column names used by :meth:`explain`.
    """

    query: np.ndarray
    d: int
    k: int
    threshold: float
    minimal: list[Subspace]
    total_outlying: int
    od_values: dict[Subspace, float] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    @property
    def is_outlier(self) -> bool:
        """The paper's criterion: an empty answer set means the point is
        not an outlier in any subspace."""
        return bool(self.minimal)

    @property
    def refinement_factor(self) -> float:
        """How much the filter shrank the answer (≥ 1; 1 when empty)."""
        if not self.minimal:
            return 1.0
        return self.total_outlying / len(self.minimal)

    def is_outlying_in(self, subspace: Subspace) -> bool:
        """Whether *subspace* belongs to the (upward-closed) answer set."""
        return any(is_subset(kept.mask, subspace.mask) for kept in self.minimal)

    def all_outlying_masks(self) -> set[int]:
        """Reconstruct the full answer set from the minimal antichain."""
        return expand_upward([s.mask for s in self.minimal], self.d)

    # ------------------------------------------------------------------
    def _name(self, dim: int) -> str:
        if self.feature_names is not None and dim < len(self.feature_names):
            return self.feature_names[dim]
        return f"x{dim + 1}"

    def describe_subspace(self, subspace: Subspace) -> str:
        """Render a subspace with feature names, e.g. ``{height, speed}``."""
        return "{" + ", ".join(self._name(dim) for dim in subspace.dims) + "}"

    def explain(self, max_rows: int = 10) -> str:
        """Human-readable multi-line summary (demo-style output)."""
        lines = []
        if not self.minimal:
            lines.append(
                f"Point is NOT an outlier in any subspace (k={self.k}, "
                f"T={self.threshold:.4g})."
            )
            return "\n".join(lines)
        lines.append(
            f"Point is an outlier in {self.total_outlying} subspaces "
            f"(k={self.k}, T={self.threshold:.4g}); "
            f"{len(self.minimal)} minimal one(s):"
        )
        for subspace in self.minimal[:max_rows]:
            od = self.od_values.get(subspace)
            od_text = f"OD={od:.4g}" if od is not None else "OD=inferred"
            lines.append(
                f"  {subspace.notation():<16} {self.describe_subspace(subspace):<40} {od_text}"
            )
        hidden = len(self.minimal) - max_rows
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"OutlyingSubspaceResult(minimal={[s.notation() for s in self.minimal]}, "
            f"total={self.total_outlying}, k={self.k}, T={self.threshold:.4g})"
        )

"""Configuration of the HOS-Miner pipeline.

One frozen dataclass collects every knob of Figure 2's four modules so a
configuration can be logged, hashed and reproduced. Validation happens
eagerly at construction; dataset-dependent checks (``k`` vs ``n``)
happen at fit time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.core.metrics import KERNELS
from repro.core.precision import PRECISIONS
from repro.index.topk import TOPK_KERNELS

__all__ = ["HOSMinerConfig"]

_INDEX_BACKENDS = ("linear", "rstar", "xtree", "vafile")
_RESELECT_MODES = ("level", "evaluation")
_SHARD_MODES = ("rows", "queries")
_CACHE_INVALIDATION_MODES = ("delta", "all")


def _default_precision() -> str:
    """Default of the ``precision`` knob; overridable via the
    ``HOSMINER_PRECISION`` environment variable (the CI float32 job sets
    it to run the whole suite through the float32 tier)."""
    return os.environ.get("HOSMINER_PRECISION", "auto")


def _default_timeout() -> "float | None":
    """Default of the ``timeout_s`` knob; overridable via the
    ``HOSMINER_TIMEOUT_S`` environment variable (the CI chaos job sets a
    short deadline so injected hangs recover fast). ``""``, ``"none"``,
    ``"off"`` and ``"0"`` disable deadlines entirely."""
    raw = os.environ.get("HOSMINER_TIMEOUT_S")
    if raw is None:
        return 30.0
    if raw.strip().lower() in ("", "none", "off", "0"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"HOSMINER_TIMEOUT_S must be a number (or none/off/0 to "
            f"disable deadlines), got {raw!r}"
        ) from None
    if value <= 0:
        return None
    return value


def _default_workers() -> int:
    """Default of the ``workers`` knob; overridable via the
    ``HOSMINER_WORKERS`` environment variable (mirroring
    ``HOSMINER_PRECISION`` — the CI workers job sets it to run the whole
    suite through the sharded scatter-gather engine)."""
    raw = os.environ.get("HOSMINER_WORKERS", "1")
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"HOSMINER_WORKERS must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class HOSMinerConfig:
    """All parameters of a HOS-Miner instance.

    Attributes
    ----------
    k:
        Neighbour count of the OD measure.
    threshold:
        The global distance threshold ``T``; ``None`` calibrates it at
        fit time as the ``threshold_quantile`` quantile of full-space
        ODs over ``threshold_sample`` dataset points (under OD
        monotonicity, full-space OD ≥ any subspace OD, so this bounds
        the fraction of dataset points that have any outlying subspace).
    threshold_quantile, threshold_sample:
        Auto-calibration parameters (ignored when ``threshold`` is set).
    metric:
        Metric name or instance; must be monotone under subspace
        inclusion (all built-ins are).
    index:
        kNN backend: ``"linear"`` (default), ``"rstar"``, ``"xtree"``
        or ``"vafile"``.
    index_options:
        Extra keyword arguments for the backend constructor.
    sample_size:
        Learning sample size ``S``; 0 disables learning (uniform priors).
    seed:
        Seed for the learning sampler and threshold calibration sampler.
    reselect:
        TSF re-selection granularity (``"level"`` per the paper, or
        ``"evaluation"``).
    adaptive:
        Enable the adaptive-prior extension of
        :class:`~repro.core.search.DynamicSubspaceSearch` (off by
        default for paper fidelity; never changes answers, only cost).
    kernel:
        OD-kernel selector: ``"auto"`` (default) runs the level-wide
        GEMM kernel whenever the metric has a linear component
        decomposition and falls back to the exact per-mask kernel
        otherwise; ``"gemm"`` demands the GEMM kernel and fit fails
        loudly if the metric cannot serve it; ``"exact"`` always runs
        the bit-exact kernel. Answer sets are identical under every
        setting — near-threshold GEMM values are re-verified exactly —
        so the knob trades nothing but speed.
    precision:
        GEMM precision tier under the kernel knob: ``"auto"`` (default;
        reads the ``HOSMINER_PRECISION`` environment variable when set)
        runs the level-wide product in float32 whenever the GEMM kernel
        serves it, ``"float32"``/``"float64"`` force a tier. Resolution
        happens at fit time against the resolved kernel — any non-GEMM
        kernel computes in float64 by definition, so the knob is inert
        (not an error) there. The float32 tier widens the exact
        re-verification band to a rigorous rounding bound
        (:func:`repro.core.precision.reverify_rtol`), keeping answer
        sets bit-identical to float64 at either setting.
    topk_kernel:
        Post-GEMM top-k selection kernel
        (:data:`repro.index.topk.TOPK_KERNELS`): ``"auto"`` (default)
        prefers the compiled numba selection when numba is importable
        and otherwise the per-dtype numpy default; ``"partition"``,
        ``"filter"`` and ``"numba"`` force one (``"numba"`` without
        numba silently falls back — every kernel is value-identical).
        Forwarded to backends that reduce a GEMM block (``"linear"``).
    workers:
        Worker processes of :meth:`~repro.core.miner.HOSMiner.query_batch`
        (default 1 = in-process; reads the ``HOSMINER_WORKERS``
        environment variable when set). Values above 1 route batches
        through the execution engine selected by ``shard``. Like every
        cost knob, answers are element-wise identical at any setting.
    shard:
        Multi-worker execution strategy. ``"rows"`` (default) is the
        persistent scatter-gather engine (:mod:`repro.core.shard`):
        workers are spawned once per fit, attach to shared-memory row
        shards of the dataset, and every batch ships only masks + query
        rows across the pipe; per-shard k-nearest partials are merged
        exactly at the coordinator. ``"queries"`` is the legacy
        query-split fallback: each worker holds a full miner copy and
        serves a slice of the batch (the executor is still cached across
        calls).
    timeout_s:
        Reply deadline of one shard scatter round (and of the
        post-respawn health ping) in the ``shard="rows"`` engine.
        Default 30 s; reads the ``HOSMINER_TIMEOUT_S`` environment
        variable when set (``none``/``off``/``0`` disable deadlines —
        a hung worker then blocks its round forever). On expiry the
        hung worker is killed, respawned against its existing
        shared-memory segment, and the round is replayed; answers are
        unaffected at any setting.
    max_retries:
        Respawn-and-replay attempts per shard per round before the
        shard is declared irrecoverable and its row slice is served
        in-process through the sequential kernels (graceful
        degradation — still element-wise identical, just slower).
    backoff_s:
        First exponential-backoff sleep between respawn attempts
        (doubles per attempt, capped at
        :data:`repro.core.shard.BACKOFF_CAP_S`).
    cache_invalidation:
        How :meth:`~repro.core.miner.HOSMiner.insert` /
        :meth:`~repro.core.miner.HOSMiner.expire` treat the per-fit OD
        cache. ``"delta"`` (default) keeps every entry whose cached
        kth-distance bound proves the update cannot have changed its kNN
        k-prefix (:meth:`~repro.core.od.SharedODCache.delta_insert`);
        ``"all"`` drops everything, matching ``extend``'s conservative
        behaviour. Both modes produce identical answers — retention is
        only ever proof-backed — so the knob trades invalidation-pass
        cost against cold re-evaluation cost (docs/streaming.md).
    stream_window:
        Default sliding-window size for
        :class:`~repro.core.stream.StreamEngine` (``None`` = unbounded:
        pushes insert and never expire). Must be at least ``k + 1`` at
        engine construction, since the window must always hold a full
        neighbour set plus the query row.
    """

    k: int = 5
    threshold: float | None = None
    threshold_quantile: float = 0.995
    threshold_sample: int = 256
    metric: object = "euclidean"
    index: str = "linear"
    index_options: dict = field(default_factory=dict)
    sample_size: int = 10
    seed: int | None = 0
    reselect: str = "level"
    adaptive: bool = False
    kernel: str = "auto"
    precision: str = field(default_factory=_default_precision)
    topk_kernel: str = "auto"
    workers: int = field(default_factory=_default_workers)
    shard: str = "rows"
    timeout_s: float | None = field(default_factory=_default_timeout)
    max_retries: int = 2
    backoff_s: float = 0.05
    cache_invalidation: str = "delta"
    stream_window: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.threshold is not None and self.threshold < 0:
            raise ConfigurationError(
                f"threshold must be non-negative, got {self.threshold}"
            )
        if not 0.0 < self.threshold_quantile < 1.0:
            raise ConfigurationError(
                f"threshold_quantile must be in (0, 1), got {self.threshold_quantile}"
            )
        if self.threshold_sample < 1:
            raise ConfigurationError(
                f"threshold_sample must be >= 1, got {self.threshold_sample}"
            )
        if self.index not in _INDEX_BACKENDS:
            raise ConfigurationError(
                f"index must be one of {_INDEX_BACKENDS}, got {self.index!r}"
            )
        if self.sample_size < 0:
            raise ConfigurationError(
                f"sample_size must be >= 0, got {self.sample_size}"
            )
        if self.reselect not in _RESELECT_MODES:
            raise ConfigurationError(
                f"reselect must be one of {_RESELECT_MODES}, got {self.reselect!r}"
            )
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.precision not in PRECISIONS:
            raise ConfigurationError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.topk_kernel not in TOPK_KERNELS:
            raise ConfigurationError(
                f"topk_kernel must be one of {TOPK_KERNELS}, got {self.topk_kernel!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.shard not in _SHARD_MODES:
            raise ConfigurationError(
                f"shard must be one of {_SHARD_MODES}, got {self.shard!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive (or None to disable "
                f"deadlines), got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.cache_invalidation not in _CACHE_INVALIDATION_MODES:
            raise ConfigurationError(
                f"cache_invalidation must be one of {_CACHE_INVALIDATION_MODES}, "
                f"got {self.cache_invalidation!r}"
            )
        if self.stream_window is not None and self.stream_window < self.k + 1:
            raise ConfigurationError(
                f"stream_window must be >= k+1={self.k + 1} (the window must "
                f"hold a full neighbour set plus the query), got {self.stream_window}"
            )

"""Local Outlier Factor (Breunig, Kriegel, Ng & Sander, SIGMOD'00).

The density-based "space → outliers" baseline the paper cites [3].
Implemented textbook-style:

* ``k-distance(p)`` — distance to the k-th neighbour, with the standard
  tie rule (the neighbourhood includes *all* points at exactly
  k-distance);
* ``reach-dist_k(p, o) = max(k-distance(o), dist(p, o))``;
* ``lrd_k(p)`` — inverse mean reachability distance of p's
  neighbourhood;
* ``LOF_k(p)`` — mean ratio of neighbour lrd to own lrd. Values around
  1 mean inlier; substantially larger means local outlier.

Subspace-restricted scoring (``dims``) lets the examples contrast LOF's
single-space view with HOS-Miner's subspace answer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import get_metric

__all__ = ["lof_scores", "top_n_lof_outliers"]


def lof_scores(
    X: np.ndarray,
    k: int,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
) -> np.ndarray:
    """LOF_k of every row (vector of length n)."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"expected an (n, d) matrix, got shape {X.shape}")
    n, d = X.shape
    if not 1 <= k <= n - 1:
        raise ConfigurationError(f"k must be in [1, n-1] = [1, {n - 1}], got {k}")
    dims = tuple(range(d)) if dims is None else tuple(dims)
    resolved = get_metric(metric)

    # Full pairwise distance matrix; n is demo-scale so O(n^2) is fine
    # and keeps the implementation transparently checkable.
    distances = np.empty((n, n))
    for row in range(n):
        distances[row] = resolved.pairwise(X, X[row], dims)
    np.fill_diagonal(distances, np.inf)

    # k-distance and neighbourhood (with the ties-included rule).
    sorted_d = np.sort(distances, axis=1)
    k_distance = sorted_d[:, k - 1]
    neighbourhoods: list[np.ndarray] = [
        np.flatnonzero(distances[row] <= k_distance[row]) for row in range(n)
    ]

    # Local reachability density.
    lrd = np.empty(n)
    for row in range(n):
        neighbours = neighbourhoods[row]
        reach = np.maximum(k_distance[neighbours], distances[row, neighbours])
        mean_reach = reach.mean()
        lrd[row] = np.inf if mean_reach == 0.0 else 1.0 / mean_reach

    # LOF: mean lrd ratio over the neighbourhood.
    scores = np.empty(n)
    for row in range(n):
        neighbours = neighbourhoods[row]
        if np.isinf(lrd[row]):
            # Duplicated point with zero-distance neighbourhood: by
            # convention its LOF is 1 (it is exactly as dense as its
            # duplicates).
            scores[row] = 1.0
        else:
            scores[row] = (lrd[neighbours] / lrd[row]).mean()
    return scores


def top_n_lof_outliers(
    X: np.ndarray,
    k: int,
    n_outliers: int,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """The *n* rows with the largest LOF scores, descending (ties by
    ascending row index)."""
    if n_outliers < 1:
        raise ConfigurationError(f"n_outliers must be >= 1, got {n_outliers}")
    scores = lof_scores(X, k, dims=dims, metric=metric)
    order = np.lexsort((np.arange(scores.size), -scores))[:n_outliers]
    return (
        tuple(int(row) for row in order),
        tuple(float(scores[row]) for row in order),
    )

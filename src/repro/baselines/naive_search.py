"""Naive and fixed-order outlying-subspace searches — ablation baselines.

Experiment E10 isolates what each HOS-Miner ingredient buys by running
the same lossless pruning machinery under degraded orderings:

* :func:`exhaustive_search` — evaluate all ``2**d - 1`` subspaces, no
  pruning. The ground-truth oracle for every effectiveness experiment
  and the cost ceiling for every efficiency experiment.
* :func:`fixed_order_search` — evaluate levels in a fixed sweep
  (``"bottom_up"`` = 1..d or ``"top_down"`` = d..1) with both pruning
  rules active but no TSF scheduling.
* TSF scheduling itself is :class:`repro.core.search.DynamicSubspaceSearch`;
  run it with :meth:`PruningPriors.uniform` for the "no learning"
  ablation and with learned priors for full HOS-Miner.

All variants return the same :class:`~repro.core.search.SearchOutcome`
type, so measures and tables treat them uniformly.
"""

from __future__ import annotations

import time

from repro.core.exceptions import ConfigurationError
from repro.core.lattice import SubspaceLattice
from repro.core.od import ODEvaluator
from repro.core.search import SearchOutcome, SearchStats

__all__ = ["exhaustive_search", "fixed_order_search"]


def exhaustive_search(evaluator: ODEvaluator, threshold: float) -> SearchOutcome:
    """Evaluate every non-empty subspace; no pruning at all.

    The returned outcome's ``outlying_masks`` is the exact answer set —
    the oracle that every other strategy is verified against.
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
    start = time.perf_counter()
    d = evaluator.backend.d
    lattice = SubspaceLattice(d)
    stats = SearchStats()
    for m in range(1, d + 1):
        stats.level_schedule.append(m)
        for mask in lattice.unknown_masks_at_level(m):
            outlying = evaluator.od(mask) >= threshold
            lattice.mark_evaluated(mask, outlying)
            stats.od_evaluations += 1
            stats.evaluations_by_level[m] = stats.evaluations_by_level.get(m, 0) + 1
    stats.wall_time_s = time.perf_counter() - start
    return SearchOutcome(
        d=d,
        threshold=threshold,
        outlying_masks=lattice.outlying_masks(),
        stats=stats,
        lattice=lattice,
    )


def fixed_order_search(
    evaluator: ODEvaluator, threshold: float, order: str = "bottom_up"
) -> SearchOutcome:
    """Level sweep in a fixed direction with both pruning rules active.

    ``"bottom_up"`` favours upward pruning (small outlying subspaces
    wipe out their supersets); ``"top_down"`` favours downward pruning
    (a non-outlying full space wipes out everything). Which one wins
    depends on the data — exactly the gap TSF scheduling closes.
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
    if order not in ("bottom_up", "top_down"):
        raise ConfigurationError(f"order must be 'bottom_up' or 'top_down', got {order!r}")
    start = time.perf_counter()
    d = evaluator.backend.d
    lattice = SubspaceLattice(d)
    stats = SearchStats()
    levels = range(1, d + 1) if order == "bottom_up" else range(d, 0, -1)
    for m in levels:
        if lattice.remaining_count(m) == 0:
            continue
        stats.level_schedule.append(m)
        for mask in lattice.unknown_masks_at_level(m):
            if not lattice.is_unknown(mask):
                continue
            outlying = evaluator.od(mask) >= threshold
            stats.od_evaluations += 1
            stats.evaluations_by_level[m] = stats.evaluations_by_level.get(m, 0) + 1
            lattice.mark_evaluated(mask, outlying)
            if outlying:
                stats.upward_pruned += lattice.prune_supersets(mask)
            else:
                stats.downward_pruned += lattice.prune_subsets(mask)
    stats.wall_time_s = time.perf_counter() - start
    return SearchOutcome(
        d=d,
        threshold=threshold,
        outlying_masks=lattice.outlying_masks(),
        stats=stats,
        lattice=lattice,
    )

"""Top-n kNN-distance outliers (Ramaswamy, Rastogi & Shim, SIGMOD'00).

A classic "space → outliers" method the paper cites [8]: rank points by
``D^k(p)``, the distance to their k-th nearest neighbour, and report the
top n. Provided here (a) as a related-work baseline for the comparative
examples and (b) because its score in a *fixed* subspace is the natural
single-space contrast to HOS-Miner's subspace answer.

A ``sum`` variant of the score is included as well — that variant *is*
the OD measure of HOS-Miner restricted to one space, which the examples
use to show why a full-space detector misses subspace outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import get_metric

__all__ = ["KnnOutlierResult", "knn_distance_scores", "top_n_knn_outliers"]


@dataclass(frozen=True, slots=True)
class KnnOutlierResult:
    """Ranking produced by :func:`top_n_knn_outliers`."""

    rows: tuple[int, ...]
    scores: tuple[float, ...]

    def __contains__(self, row: int) -> bool:
        return row in self.rows


def knn_distance_scores(
    X: np.ndarray,
    k: int,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
    aggregate: str = "kth",
) -> np.ndarray:
    """kNN-distance outlier score of every row.

    ``aggregate="kth"`` is the Ramaswamy ``D^k`` score; ``"sum"`` is the
    sum over the k nearest (identical to HOS-Miner's OD in this space).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"expected an (n, d) matrix, got shape {X.shape}")
    n, d = X.shape
    if not 1 <= k <= n - 1:
        raise ConfigurationError(f"k must be in [1, n-1] = [1, {n - 1}], got {k}")
    if aggregate not in ("kth", "sum"):
        raise ConfigurationError(f"aggregate must be 'kth' or 'sum', got {aggregate!r}")
    dims = tuple(range(d)) if dims is None else tuple(dims)
    resolved = get_metric(metric)

    scores = np.empty(n)
    for row in range(n):
        distances = resolved.pairwise(X, X[row], dims)
        distances[row] = np.inf
        nearest = np.partition(distances, k - 1)[:k]
        scores[row] = nearest.max() if aggregate == "kth" else nearest.sum()
    return scores


def top_n_knn_outliers(
    X: np.ndarray,
    k: int,
    n_outliers: int,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
    aggregate: str = "kth",
) -> KnnOutlierResult:
    """The *n* rows with the largest kNN-distance scores, descending.

    Ties break by ascending row index for determinism.
    """
    if n_outliers < 1:
        raise ConfigurationError(f"n_outliers must be >= 1, got {n_outliers}")
    scores = knn_distance_scores(X, k, dims=dims, metric=metric, aggregate=aggregate)
    order = np.lexsort((np.arange(scores.size), -scores))[:n_outliers]
    return KnnOutlierResult(
        rows=tuple(int(row) for row in order),
        scores=tuple(float(scores[row]) for row in order),
    )

"""Equi-depth grid discretisation and the Aggarwal–Yu sparsity coefficient.

The evolutionary comparator [1] works on a discretised view of the data:
every attribute is cut into ``phi`` equi-depth ranges (each holding
``~n/phi`` points, so each range has selectivity ``f = 1/phi``). A
*cube* fixes a range in each of ``k`` chosen dimensions and leaves the
rest unconstrained. If attributes were independent, a k-dimensional
cube would hold ``n·f^k`` points binomially; the **sparsity
coefficient**

    S(C) = (count(C) − n·f^k) / sqrt(n·f^k·(1 − f^k))

is the standardised deviation from that expectation. Strongly negative
``S`` marks an abnormally sparse projection — the points inside are the
method's outliers, and the cube's dimension set is its "subspace".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError

__all__ = ["EquiDepthGrid", "SparseCube"]

#: Wildcard marker inside cube range vectors ("don't care" position).
WILDCARD = -1


@dataclass(frozen=True, slots=True)
class SparseCube:
    """A grid cube with its occupancy statistics.

    ``dims``/``ranges`` are parallel tuples: dimension ``dims[i]`` is
    constrained to equi-depth range ``ranges[i]``. ``rows`` are the
    dataset rows inside the cube.
    """

    dims: tuple[int, ...]
    ranges: tuple[int, ...]
    count: int
    sparsity: float
    rows: tuple[int, ...]

    @property
    def dimensionality(self) -> int:
        return len(self.dims)

    def contains_row(self, row: int) -> bool:
        return row in self.rows

    def notation(self) -> str:
        """1-based rendering, e.g. ``[2:r0, 5:r3] S=-2.31``."""
        parts = ", ".join(f"{d + 1}:r{r}" for d, r in zip(self.dims, self.ranges))
        return f"[{parts}] S={self.sparsity:.2f}"


class EquiDepthGrid:
    """Per-attribute equi-depth discretisation of a data matrix.

    Parameters
    ----------
    X:
        Data matrix ``(n, d)``.
    phi:
        Number of ranges per attribute (the paper's φ). With heavily
        tied values the realised ranges can be uneven — quantile cuts
        collapse on ties — which only makes the sparsity coefficient
        conservative, never invalid.
    """

    def __init__(self, X: np.ndarray, phi: int) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        if phi < 2:
            raise ConfigurationError(f"phi must be >= 2, got {phi}")
        self.n, self.d = X.shape
        self.phi = phi
        quantiles = np.linspace(0.0, 1.0, phi + 1)[1:-1]
        #: Per-dimension inner cut points, shape (d, phi - 1).
        self.boundaries = np.quantile(X, quantiles, axis=0).T
        #: Range code of every cell, shape (n, d), values in [0, phi).
        self.codes = np.empty((self.n, self.d), dtype=np.int32)
        for dim in range(self.d):
            self.codes[:, dim] = np.searchsorted(
                self.boundaries[dim], X[:, dim], side="right"
            )

    @property
    def selectivity(self) -> float:
        """``f = 1/phi`` — expected fraction of points per range."""
        return 1.0 / self.phi

    # ------------------------------------------------------------------
    def rows_in_cube(self, dims: "tuple[int, ...]", ranges: "tuple[int, ...]") -> np.ndarray:
        """Dataset rows falling inside the cube."""
        if len(dims) != len(ranges) or not dims:
            raise ConfigurationError("dims and ranges must be equal-length and non-empty")
        inside = self.codes[:, dims[0]] == ranges[0]
        for dim, rng in zip(dims[1:], ranges[1:]):
            inside &= self.codes[:, dim] == rng
        return np.flatnonzero(inside)

    def count_in_cube(self, dims, ranges) -> int:
        return int(self.rows_in_cube(dims, ranges).size)

    def sparsity(self, count: int, dimensionality: int) -> float:
        """Sparsity coefficient of a ``dimensionality``-dim cube holding
        *count* points."""
        expected_fraction = self.selectivity**dimensionality
        expected = self.n * expected_fraction
        variance = self.n * expected_fraction * (1.0 - expected_fraction)
        if variance <= 0.0:
            return 0.0
        return (count - expected) / math.sqrt(variance)

    def evaluate_cube(self, dims, ranges) -> SparseCube:
        """Full cube statistics in one call."""
        dims = tuple(int(d) for d in dims)
        ranges = tuple(int(r) for r in ranges)
        rows = self.rows_in_cube(dims, ranges)
        return SparseCube(
            dims=dims,
            ranges=ranges,
            count=int(rows.size),
            sparsity=self.sparsity(int(rows.size), len(dims)),
            rows=tuple(int(r) for r in rows),
        )

    # ------------------------------------------------------------------
    def evaluate_solution(self, solution: np.ndarray) -> SparseCube:
        """Evaluate a GA solution string (length d, WILDCARD = free)."""
        constrained = np.flatnonzero(solution != WILDCARD)
        if constrained.size == 0:
            raise ConfigurationError("solution constrains no dimension")
        dims = tuple(int(dim) for dim in constrained)
        ranges = tuple(int(solution[dim]) for dim in constrained)
        return self.evaluate_cube(dims, ranges)

    def __repr__(self) -> str:
        return f"EquiDepthGrid(n={self.n}, d={self.d}, phi={self.phi})"

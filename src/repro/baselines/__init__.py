"""Baselines and comparators.

* :mod:`~repro.baselines.evolutionary` — the Aggarwal–Yu evolutionary
  sparse-subspace search [1], the paper's head-to-head comparator;
* :mod:`~repro.baselines.grid` — its equi-depth grid substrate;
* :mod:`~repro.baselines.naive_search` — exhaustive / fixed-order
  outlying-subspace searches (oracle + E10 ablations);
* :mod:`~repro.baselines.knn_outlier` — top-n kNN-distance outliers [8];
* :mod:`~repro.baselines.db_outlier` — DB(π, D) distance-based
  outliers [5, 6];
* :mod:`~repro.baselines.lof` — Local Outlier Factor [3];
* :mod:`~repro.baselines.feature_bagging` — LOF feature bagging
  (Lazarevic & Kumar, KDD'05), the random-subspace contrast to
  HOS-Miner's systematic search.
"""

from repro.baselines.db_outlier import db_outliers, db_outlying_subspaces, is_db_outlier
from repro.baselines.evolutionary import (
    EvolutionaryConfig,
    EvolutionarySubspaceSearch,
    brute_force_sparse_cubes,
)
from repro.baselines.feature_bagging import FeatureBaggingConfig, FeatureBaggingDetector
from repro.baselines.grid import EquiDepthGrid, SparseCube
from repro.baselines.knn_outlier import (
    KnnOutlierResult,
    knn_distance_scores,
    top_n_knn_outliers,
)
from repro.baselines.lof import lof_scores, top_n_lof_outliers
from repro.baselines.naive_search import exhaustive_search, fixed_order_search

__all__ = [
    "EquiDepthGrid",
    "EvolutionaryConfig",
    "EvolutionarySubspaceSearch",
    "FeatureBaggingConfig",
    "FeatureBaggingDetector",
    "KnnOutlierResult",
    "SparseCube",
    "brute_force_sparse_cubes",
    "db_outliers",
    "db_outlying_subspaces",
    "exhaustive_search",
    "fixed_order_search",
    "is_db_outlier",
    "knn_distance_scores",
    "lof_scores",
    "top_n_knn_outliers",
    "top_n_lof_outliers",
]

"""Aggarwal–Yu evolutionary sparse-subspace search — the comparator [1].

The "space → outliers" technique HOS-Miner is demoed against: a genetic
algorithm over cube-encoding strings in ``{*, 0..phi-1}^d`` with exactly
``target_dims`` constrained positions, minimising the sparsity
coefficient (most-negative cubes = sparsest projections). Points inside
the best cubes are reported as outliers, each tagged with the cube's
dimension set as its "outlying subspace".

Implemented from the SIGMOD'00 description:

* rank-based roulette **selection**;
* projection-recombining **crossover** — child takes each parent's
  agreeing positions and resolves disagreements randomly, then is
  *repaired* to exactly ``target_dims`` constrained positions;
* two-mode **mutation** — re-draw a constrained range value, or swap a
  constrained position with a wildcard;
* **elitism** on the best solutions seen.

One deliberate deviation from a literal sparsity objective: a cube with
*zero* points has the most negative sparsity possible yet can flag no
outlier at all, so empty cubes receive a neutral fitness (0.0) and are
excluded from the best-cube archive. The method's purpose — report the
points inside abnormally sparse projections — is unchanged; without
this rule the GA converges on useless empty cells whenever they exist.

:func:`brute_force_sparse_cubes` enumerates every cube (small problems
only) and serves as the quality oracle in tests and experiment E6.

The adapter :meth:`EvolutionarySubspaceSearch.subspaces_for_point` turns
the global cube list into a per-point answer — the fairest possible
reading of the comparator for the paper's "outlier → spaces" task.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.grid import WILDCARD, EquiDepthGrid, SparseCube
from repro.core.exceptions import ConfigurationError, DataShapeError, NotFittedError
from repro.core.subspace import Subspace

__all__ = [
    "EvolutionaryConfig",
    "EvolutionarySubspaceSearch",
    "brute_force_sparse_cubes",
]


@dataclass(frozen=True, slots=True)
class EvolutionaryConfig:
    """GA hyper-parameters (paper notation in brackets).

    Attributes
    ----------
    phi:
        Equi-depth ranges per attribute (φ).
    target_dims:
        Cube dimensionality (k) — each solution constrains exactly this
        many positions.
    population:
        Population size (p).
    generations:
        Number of generations to evolve.
    best_cubes:
        How many best (sparsest) distinct cubes to retain (m).
    crossover_rate / mutation_rate:
        Standard GA rates.
    elite:
        Solutions copied unchanged into the next generation.
    seed:
        RNG seed.
    """

    phi: int = 5
    target_dims: int = 3
    population: int = 50
    generations: int = 40
    best_cubes: int = 10
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    elite: int = 4
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.phi < 2:
            raise ConfigurationError(f"phi must be >= 2, got {self.phi}")
        if self.target_dims < 1:
            raise ConfigurationError(f"target_dims must be >= 1, got {self.target_dims}")
        if self.population < 2:
            raise ConfigurationError(f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ConfigurationError(f"generations must be >= 1, got {self.generations}")
        if self.best_cubes < 1:
            raise ConfigurationError(f"best_cubes must be >= 1, got {self.best_cubes}")
        for name, rate in (
            ("crossover_rate", self.crossover_rate),
            ("mutation_rate", self.mutation_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.elite < 0 or self.elite >= self.population:
            raise ConfigurationError(
                f"elite must be in [0, population), got {self.elite}"
            )


class EvolutionarySubspaceSearch:
    """Genetic search for the sparsest k-dimensional grid cubes.

    Usage::

        search = EvolutionarySubspaceSearch(EvolutionaryConfig(target_dims=2))
        search.fit(X)
        search.best_cubes_          # sparsest cubes found
        search.outlier_rows_        # union of points inside them
        search.subspaces_for_point(row)
    """

    def __init__(self, config: EvolutionaryConfig | None = None, **overrides) -> None:
        if config is not None and overrides:
            raise ConfigurationError("pass either a config object or keyword overrides")
        self.config = config if config is not None else EvolutionaryConfig(**overrides)
        self._fitted = False
        self.grid_: EquiDepthGrid | None = None
        self.best_cubes_: list[SparseCube] = []
        self.outlier_rows_: list[int] = []
        self.evaluations_: int = 0
        self.fit_time_s: float = 0.0
        #: Best sparsity per generation (GA convergence trace).
        self.history_: list[float] = []

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "EvolutionarySubspaceSearch":
        """Run the GA over *X* and collect the best cubes."""
        start = time.perf_counter()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DataShapeError(f"expected an (n, d) matrix, got shape {X.shape}")
        cfg = self.config
        if cfg.target_dims > X.shape[1]:
            raise ConfigurationError(
                f"target_dims={cfg.target_dims} exceeds data dimensionality {X.shape[1]}"
            )
        rng = np.random.default_rng(cfg.seed)
        grid = EquiDepthGrid(X, cfg.phi)
        self.grid_ = grid
        self.evaluations_ = 0
        self.history_ = []

        population = [self._random_solution(rng, grid.d) for _ in range(cfg.population)]
        fitness = np.array([self._fitness(grid, sol) for sol in population])
        #: (sparsity, cube) of every distinct cube ever evaluated.
        archive: dict[tuple, SparseCube] = {}
        self._archive_population(grid, population, archive)

        for _ in range(cfg.generations):
            order = np.argsort(fitness, kind="stable")
            elites = [population[i].copy() for i in order[: cfg.elite]]
            next_population = elites
            while len(next_population) < cfg.population:
                parent_a = population[self._select(rng, order)]
                parent_b = population[self._select(rng, order)]
                if rng.random() < cfg.crossover_rate:
                    child = self._crossover(rng, parent_a, parent_b)
                else:
                    child = parent_a.copy()
                self._mutate(rng, child, grid.phi)
                next_population.append(child)
            population = next_population
            fitness = np.array([self._fitness(grid, sol) for sol in population])
            self._archive_population(grid, population, archive)
            self.history_.append(float(fitness.min()))

        ranked = sorted(archive.values(), key=lambda cube: (cube.sparsity, cube.dims, cube.ranges))
        self.best_cubes_ = ranked[: cfg.best_cubes]
        rows: set[int] = set()
        for cube in self.best_cubes_:
            rows.update(cube.rows)
        self.outlier_rows_ = sorted(rows)
        self._fitted = True
        self.fit_time_s = time.perf_counter() - start
        return self

    # ------------------------------------------------------------------
    def subspaces_for_point(self, row: int) -> list[Subspace]:
        """The "outlier → spaces" adapter: subspaces of the best cubes
        that contain dataset row *row* (deduplicated, sorted)."""
        self._require_fitted()
        d = self.grid_.d  # type: ignore[union-attr]
        found = {cube.dims for cube in self.best_cubes_ if cube.contains_row(row)}
        return sorted(Subspace.from_dims(dims, d) for dims in found)

    def is_outlier(self, row: int) -> bool:
        self._require_fitted()
        return row in set(self.outlier_rows_)

    # ------------------------------------------------------------------
    # GA operators
    # ------------------------------------------------------------------
    def _random_solution(self, rng: np.random.Generator, d: int) -> np.ndarray:
        solution = np.full(d, WILDCARD, dtype=np.int32)
        positions = rng.choice(d, size=self.config.target_dims, replace=False)
        solution[positions] = rng.integers(0, self.config.phi, size=positions.size)
        return solution

    def _fitness(self, grid: EquiDepthGrid, solution: np.ndarray) -> float:
        self.evaluations_ += 1
        cube = grid.evaluate_solution(solution)
        # Empty cubes are sparse but useless (no point to report);
        # neutral fitness steers the GA toward sparse *occupied* cells.
        if cube.count == 0:
            return 0.0
        return cube.sparsity

    def _select(self, rng: np.random.Generator, order: np.ndarray) -> int:
        """Rank-based roulette: rank r (0 = best) gets weight (P - r)."""
        size = order.size
        weights = np.arange(size, 0, -1, dtype=np.float64)
        weights /= weights.sum()
        return int(order[rng.choice(size, p=weights)])

    def _crossover(
        self, rng: np.random.Generator, parent_a: np.ndarray, parent_b: np.ndarray
    ) -> np.ndarray:
        child = parent_a.copy()
        take_b = rng.random(child.size) < 0.5
        child[take_b] = parent_b[take_b]
        self._repair(rng, child)
        return child

    def _mutate(self, rng: np.random.Generator, solution: np.ndarray, phi: int) -> None:
        if rng.random() >= self.config.mutation_rate:
            return
        constrained = np.flatnonzero(solution != WILDCARD)
        free = np.flatnonzero(solution == WILDCARD)
        if free.size > 0 and rng.random() < 0.5:
            # Swap a constrained position with a wildcard one.
            leave = int(rng.choice(constrained))
            enter = int(rng.choice(free))
            solution[leave] = WILDCARD
            solution[enter] = rng.integers(0, phi)
        else:
            # Re-draw one range value.
            position = int(rng.choice(constrained))
            solution[position] = rng.integers(0, phi)

    def _repair(self, rng: np.random.Generator, solution: np.ndarray) -> None:
        """Force exactly ``target_dims`` constrained positions."""
        target = self.config.target_dims
        constrained = np.flatnonzero(solution != WILDCARD)
        excess = constrained.size - target
        if excess > 0:
            drop = rng.choice(constrained, size=excess, replace=False)
            solution[drop] = WILDCARD
        elif excess < 0:
            free = np.flatnonzero(solution == WILDCARD)
            add = rng.choice(free, size=-excess, replace=False)
            solution[add] = rng.integers(0, self.config.phi, size=add.size)

    def _archive_population(
        self,
        grid: EquiDepthGrid,
        population: list[np.ndarray],
        archive: dict[tuple, SparseCube],
    ) -> None:
        for solution in population:
            cube = grid.evaluate_solution(solution)
            if cube.count > 0:
                archive[(cube.dims, cube.ranges)] = cube

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("call fit(X) before querying")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return (
            f"EvolutionarySubspaceSearch({state}, phi={self.config.phi}, "
            f"k={self.config.target_dims}, pop={self.config.population})"
        )


def brute_force_sparse_cubes(
    X: np.ndarray, phi: int, target_dims: int, best_cubes: int = 10
) -> list[SparseCube]:
    """Exhaustively enumerate every ``target_dims``-dimensional cube and
    return the *best_cubes* sparsest — the GA's quality oracle.

    Cost is ``C(d, target_dims) * phi^target_dims`` cube evaluations;
    keep ``d`` and ``target_dims`` small.
    """
    grid = EquiDepthGrid(X, phi)
    cubes: list[SparseCube] = []
    for dims in itertools.combinations(range(grid.d), target_dims):
        for ranges in itertools.product(range(phi), repeat=target_dims):
            cube = grid.evaluate_cube(dims, ranges)
            if cube.count > 0:  # same occupied-cube rule as the GA
                cubes.append(cube)
    cubes.sort(key=lambda cube: (cube.sparsity, cube.dims, cube.ranges))
    return cubes[:best_cubes]

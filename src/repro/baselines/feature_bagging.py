"""Feature bagging for outlier detection (Lazarevic & Kumar, KDD'05).

A third comparator family, published one year after HOS-Miner, that
attacks the same blind spot of full-space detectors: run a base detector
(LOF here) in many *random* subspaces and combine the scores. Included
because it brackets HOS-Miner from the other side — it samples subspaces
blindly where HOS-Miner searches them systematically — which makes the
comparison in ``examples/method_comparison.py`` and the E6 discussion
sharper.

The per-point "subspace answer" adapter reports the sampled subspaces in
which the point's base-detector score is extreme, which is the closest
feature-bagging analogue of an outlying-subspace answer: honest, but
limited to the subspaces that happened to be sampled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.lof import lof_scores
from repro.core.exceptions import ConfigurationError, DataShapeError, NotFittedError
from repro.core.subspace import Subspace

__all__ = ["FeatureBaggingConfig", "FeatureBaggingDetector"]


@dataclass(frozen=True, slots=True)
class FeatureBaggingConfig:
    """Ensemble parameters.

    Attributes
    ----------
    rounds:
        Number of random subspaces (ensemble members).
    k:
        LOF neighbour count.
    combine:
        ``"breadth"`` (rank-style: maximum score, the paper's breadth-
        first variant collapses to max for our use) or ``"cumulative"``
        (sum of scores — the paper's cumulative-sum variant).
    score_quantile:
        Per-subspace quantile above which a point counts as locally
        outlying for the subspace-answer adapter.
    seed:
        RNG seed for subspace sampling.
    """

    rounds: int = 20
    k: int = 10
    combine: str = "cumulative"
    score_quantile: float = 0.99
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.combine not in ("breadth", "cumulative"):
            raise ConfigurationError(
                f"combine must be 'breadth' or 'cumulative', got {self.combine!r}"
            )
        if not 0.0 < self.score_quantile < 1.0:
            raise ConfigurationError(
                f"score_quantile must be in (0, 1), got {self.score_quantile}"
            )


class FeatureBaggingDetector:
    """LOF feature-bagging ensemble with a subspace-answer adapter."""

    def __init__(self, config: FeatureBaggingConfig | None = None, **overrides) -> None:
        if config is not None and overrides:
            raise ConfigurationError("pass either a config object or keyword overrides")
        self.config = config if config is not None else FeatureBaggingConfig(**overrides)
        self._fitted = False
        self.subspaces_: list[tuple[int, ...]] = []
        self.member_scores_: np.ndarray | None = None
        self.scores_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "FeatureBaggingDetector":
        """Run the ensemble over *X*."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < self.config.k + 1:
            raise DataShapeError(
                f"need an (n > k, d) matrix, got shape {X.shape} with k={self.config.k}"
            )
        n, d = X.shape
        rng = np.random.default_rng(self.config.seed)
        low = max(1, d // 2)  # the paper samples sizes in [d/2, d-1]
        high = max(low, d - 1)
        self.subspaces_ = []
        member_scores = np.empty((self.config.rounds, n))
        for round_index in range(self.config.rounds):
            size = int(rng.integers(low, high + 1))
            dims = tuple(sorted(int(x) for x in rng.choice(d, size=size, replace=False)))
            self.subspaces_.append(dims)
            member_scores[round_index] = lof_scores(X, self.config.k, dims=dims)
        self.member_scores_ = member_scores
        if self.config.combine == "cumulative":
            self.scores_ = member_scores.sum(axis=0)
        else:
            self.scores_ = member_scores.max(axis=0)
        self._d = d
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def top_n(self, n_outliers: int) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """The ensemble's top-n outliers (ties by ascending row)."""
        self._require_fitted()
        if n_outliers < 1:
            raise ConfigurationError(f"n_outliers must be >= 1, got {n_outliers}")
        scores = self.scores_
        order = np.lexsort((np.arange(scores.size), -scores))[:n_outliers]
        return (
            tuple(int(row) for row in order),
            tuple(float(scores[row]) for row in order),
        )

    def subspaces_for_point(self, row: int) -> list[Subspace]:
        """Sampled subspaces in which *row*'s LOF is in the top
        ``1 - score_quantile`` tail — the feature-bagging reading of
        "where is this point an outlier?"."""
        self._require_fitted()
        found = set()
        for member, dims in zip(self.member_scores_, self.subspaces_):
            cutoff = np.quantile(member, self.config.score_quantile)
            if member[row] >= cutoff:
                found.add(dims)
        return sorted(Subspace.from_dims(dims, self._d) for dims in found)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("call fit(X) before querying")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return (
            f"FeatureBaggingDetector({state}, rounds={self.config.rounds}, "
            f"k={self.config.k}, combine={self.config.combine!r})"
        )

"""Distance-based DB(π, D) outliers (Knorr & Ng, VLDB'98).

The other classic "space → outliers" family the paper cites [5, 6]: a
point is a DB(π, D)-outlier when at least fraction π of the dataset
lies farther than distance D from it — equivalently, when fewer than
``(1 − π)·n`` points (besides itself) fall inside its D-ball.

The VLDB'99 follow-up [6] ("intentional knowledge") asks *in which
spaces* a point is a distance-based outlier — the closest ancestor of
HOS-Miner's task — so :func:`db_outlying_subspaces` also ships: a plain
exhaustive sweep that reports every subspace in which the point is a
DB(π, D)-outlier. It serves as a conceptual cross-check of the OD-based
answer in the examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import get_metric
from repro.core.subspace import Subspace, all_masks, dims_of_mask

__all__ = ["is_db_outlier", "db_outliers", "db_outlying_subspaces"]


def _neighbour_counts(
    X: np.ndarray, radius: float, dims: Sequence[int], metric: str
) -> np.ndarray:
    """Number of *other* points within *radius* of each row."""
    resolved = get_metric(metric)
    n = X.shape[0]
    counts = np.empty(n, dtype=np.int64)
    for row in range(n):
        distances = resolved.pairwise(X, X[row], dims)
        counts[row] = int((distances <= radius).sum()) - 1  # exclude self
    return counts


def db_outliers(
    X: np.ndarray,
    pi: float,
    radius: float,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
) -> np.ndarray:
    """Boolean mask of DB(π, D)-outliers in one space."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"expected an (n, d) matrix, got shape {X.shape}")
    if not 0.0 < pi < 1.0:
        raise ConfigurationError(f"pi must be in (0, 1), got {pi}")
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    dims = tuple(range(X.shape[1])) if dims is None else tuple(dims)
    counts = _neighbour_counts(X, radius, dims, metric)
    max_inside = (1.0 - pi) * X.shape[0]
    return counts < max_inside


def is_db_outlier(
    X: np.ndarray,
    row: int,
    pi: float,
    radius: float,
    dims: Sequence[int] | None = None,
    metric: str = "euclidean",
) -> bool:
    """DB(π, D) test for a single dataset row."""
    X = np.asarray(X, dtype=np.float64)
    dims = tuple(range(X.shape[1])) if dims is None else tuple(dims)
    resolved = get_metric(metric)
    distances = resolved.pairwise(X, X[row], dims)
    inside = int((distances <= radius).sum()) - 1
    return inside < (1.0 - pi) * X.shape[0]


def db_outlying_subspaces(
    X: np.ndarray,
    row: int,
    pi: float,
    radius: float,
    metric: str = "euclidean",
) -> list[Subspace]:
    """Every subspace in which *row* is a DB(π, D)-outlier (exhaustive).

    Note that the DB criterion is **also monotone** under subspace
    inclusion (distances only grow, so D-ball occupancy only shrinks),
    which independently corroborates the paper's Properties 1–2; the
    property test suite checks both measures side by side.
    """
    X = np.asarray(X, dtype=np.float64)
    d = X.shape[1]
    found = []
    for mask in all_masks(d):
        if is_db_outlier(X, row, pi, radius, dims_of_mask(mask), metric):
            found.append(Subspace(mask, d))
    return sorted(found)

"""Command-line interface — the interactive part of the demo (Section 4).

Subcommands
-----------
``demo``
    The guided tour the paper's demo promised: the Figure 1 scenario
    plus the athlete and patient applications, with explanations.
``query``
    Fit HOS-Miner on a CSV file and print the outlying subspaces of one
    or more rows (``--profile`` adds the per-level OD profile).
``detect``
    Fit on a CSV file and list every row that is an outlier in *some*
    subspace, strongest first.
``batch``
    Fit on a CSV file and answer many queries at once through the
    batched multi-query engine — rows of the fitted dataset, the rows
    of a second query CSV, or both; ``--workers``/``--shard`` fan the
    batch out to worker processes (persistent shared-memory row shards
    by default, whole-query splitting with ``--shard queries``).
``stream``
    Replay a synthetic drift or burst workload through the sliding-
    window streaming engine: fit once on a warm-up window, then push
    batches through the incremental ``insert``/``expire`` path and query
    every fresh row as it arrives, printing per-batch outliers, window
    occupancy and delta-cache retention. ``--workers`` streams through
    the live shard pool.
``experiment``
    Run one (or all) of the paper-table experiments (f1, e0–e11) and
    print its table; ``--full`` uses the complete parameter grids,
    ``--save`` writes the JSON artefact under ``results/``.
``bench``
    Run any benchmark spec by name through the declarative harness
    (``docs/benchmarking.md``): prints the table, writes the canonical
    ``BENCH_<name>.json`` snapshot, and with ``--check`` compares the
    fresh run against a committed baseline, exiting non-zero when a
    gated measure regresses beyond the tolerance (the CI perf gate).

The console script is installed under two names: ``hos-miner`` and
``repro`` (so ``repro bench e13`` reads naturally).

Examples::

    hos-miner demo
    hos-miner query data.csv --row 3 --k 5 --quantile 0.99 --profile
    hos-miner detect data.csv --normalize --top 10
    hos-miner batch data.csv --queries new_points.csv --workers 4
    hos-miner batch data.csv --all-rows --explain
    hos-miner stream --workload drift --batches 20 --window 256
    hos-miner stream --workload burst --workers 2 --index vafile
    hos-miner experiment e1 --full --save
    repro bench --list
    repro bench e13                      # smoke tier, writes BENCH_e13.json
    repro bench e12 --tier full
    repro bench e13 --check --out fresh.json   # CI regression gate
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import ALL_SPECS
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.snapshot import DEFAULT_TOLERANCE
from repro.core.exceptions import HOSMinerError
from repro.core.miner import HOSMiner
from repro.data.loaders import load_athletes, load_csv, load_patients
from repro.data.normalize import zscore
from repro.data.synthetic import make_figure1_data

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hos-miner",
        description="HOS-Miner: detect the outlying subspaces of high-dimensional data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="run the guided demo scenarios")

    query = subparsers.add_parser("query", help="query rows of a CSV dataset")
    query.add_argument("csv", help="numeric CSV file with a header row")
    query.add_argument(
        "--row", type=int, action="append", required=True,
        help="dataset row to query (repeatable)",
    )
    query.add_argument("--k", type=int, default=5, help="neighbour count (default 5)")
    query.add_argument(
        "--threshold", type=float, default=None,
        help="distance threshold T (default: calibrated from --quantile)",
    )
    query.add_argument(
        "--quantile", type=float, default=0.995,
        help="full-space OD quantile for auto T (default 0.995)",
    )
    query.add_argument(
        "--index", choices=["linear", "rstar", "xtree"], default="linear",
        help="kNN backend (default linear)",
    )
    query.add_argument(
        "--kernel", choices=["auto", "gemm", "exact"], default="auto",
        help="OD kernel: auto (default) uses the level-wide GEMM kernel when "
        "the metric supports it, gemm demands it (errors otherwise), exact "
        "always runs the bit-exact per-mask kernel; answers are identical",
    )
    query.add_argument(
        "--precision", choices=["auto", "float64", "float32"], default="auto",
        help="GEMM precision tier: auto (default) runs the level product in "
        "float32 under the GEMM kernel with exact float64 re-verification "
        "near the threshold; answer sets are identical at any setting",
    )
    query.add_argument(
        "--topk-kernel", choices=["auto", "partition", "filter", "numba"],
        default="auto",
        help="post-GEMM top-k selection kernel (auto prefers the compiled "
        "numba kernel when installed; all kernels are value-identical)",
    )
    query.add_argument(
        "--sample-size", type=int, default=10, help="learning sample size S (default 10)"
    )
    query.add_argument(
        "--normalize", action="store_true", help="z-score the data before mining"
    )
    query.add_argument(
        "--profile", action="store_true",
        help="also print the per-level OD profile of each queried row",
    )

    detect = subparsers.add_parser(
        "detect", help="list every dataset row that has an outlying subspace"
    )
    detect.add_argument("csv", help="numeric CSV file with a header row")
    detect.add_argument("--k", type=int, default=5, help="neighbour count (default 5)")
    detect.add_argument(
        "--quantile", type=float, default=0.995,
        help="full-space OD quantile for auto T (default 0.995)",
    )
    detect.add_argument(
        "--top", type=int, default=None, help="report at most this many outliers"
    )
    detect.add_argument(
        "--sample-size", type=int, default=10, help="learning sample size S (default 10)"
    )
    detect.add_argument(
        "--normalize", action="store_true", help="z-score the data before mining"
    )

    batch = subparsers.add_parser(
        "batch", help="answer many queries at once via the batched engine"
    )
    batch.add_argument("csv", help="numeric CSV file with a header row (fit data)")
    batch.add_argument(
        "--queries", default=None,
        help="CSV of external query points (same columns as the fit data)",
    )
    batch.add_argument(
        "--rows", default=None,
        help="comma-separated dataset rows to query, e.g. 0,3,17",
    )
    batch.add_argument(
        "--all-rows", action="store_true", help="query every dataset row"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the batch (default: the HOSMINER_WORKERS "
        "environment variable, else 1 = in-process)",
    )
    batch.add_argument(
        "--shard", choices=["rows", "queries"], default=None,
        help="multi-worker strategy: rows (default) scatters each work unit "
        "over a persistent shared-memory shard pool, queries splits the "
        "batch across full miner copies; answers are identical either way",
    )
    batch.add_argument(
        "--timeout-s", type=float, default=None,
        help="reply deadline per shard round in seconds (default: the "
        "HOSMINER_TIMEOUT_S environment variable, else 30; <= 0 disables "
        "deadlines); a hung worker is killed, respawned and the round "
        "replayed, so answers are unaffected",
    )
    batch.add_argument(
        "--max-retries", type=int, default=None,
        help="respawn-and-replay attempts per shard per round before the "
        "shard is served in-process via the sequential kernels (default 2)",
    )
    batch.add_argument(
        "--backoff-s", type=float, default=None,
        help="first exponential-backoff sleep between respawn attempts "
        "(default 0.05; doubles per attempt)",
    )
    batch.add_argument("--k", type=int, default=5, help="neighbour count (default 5)")
    batch.add_argument(
        "--threshold", type=float, default=None,
        help="distance threshold T (default: calibrated from --quantile)",
    )
    batch.add_argument(
        "--quantile", type=float, default=0.995,
        help="full-space OD quantile for auto T (default 0.995)",
    )
    batch.add_argument(
        "--index", choices=["linear", "rstar", "xtree", "vafile"], default="linear",
        help="kNN backend (default linear)",
    )
    batch.add_argument(
        "--kernel", choices=["auto", "gemm", "exact"], default="auto",
        help="OD kernel: auto (default) uses the level-wide GEMM kernel when "
        "the metric supports it, gemm demands it (errors otherwise), exact "
        "always runs the bit-exact per-mask kernel; answers are identical",
    )
    batch.add_argument(
        "--precision", choices=["auto", "float64", "float32"], default="auto",
        help="GEMM precision tier: auto (default) runs the level product in "
        "float32 under the GEMM kernel with exact float64 re-verification "
        "near the threshold; answer sets are identical at any setting",
    )
    batch.add_argument(
        "--topk-kernel", choices=["auto", "partition", "filter", "numba"],
        default="auto",
        help="post-GEMM top-k selection kernel (auto prefers the compiled "
        "numba kernel when installed; all kernels are value-identical)",
    )
    batch.add_argument(
        "--sample-size", type=int, default=10, help="learning sample size S (default 10)"
    )
    batch.add_argument(
        "--normalize", action="store_true",
        help="z-score the fit data (and map query points into the fitted scale)",
    )
    batch.add_argument(
        "--explain", action="store_true",
        help="print the per-point explanation for every outlier in the batch",
    )

    stream = subparsers.add_parser(
        "stream",
        help="replay a synthetic stream through the sliding-window engine",
    )
    stream.add_argument(
        "--workload", choices=["drift", "burst"], default="drift",
        help="stream shape: drift (cluster centres wander between batches) "
        "or burst (stationary background with periodic anomaly bursts)",
    )
    stream.add_argument(
        "--batches", type=int, default=20, help="number of pushed batches (default 20)"
    )
    stream.add_argument(
        "--batch-size", type=int, default=32, help="rows per pushed batch (default 32)"
    )
    stream.add_argument(
        "--window", type=int, default=256,
        help="sliding-window size; the warm-up fit has this many rows (default 256)",
    )
    stream.add_argument("--d", type=int, default=8, help="dimensionality (default 8)")
    stream.add_argument("--k", type=int, default=5, help="neighbour count (default 5)")
    stream.add_argument(
        "--threshold", type=float, default=None,
        help="distance threshold T, fixed for the whole stream (default: "
        "calibrated once on the warm-up window from --quantile)",
    )
    stream.add_argument(
        "--quantile", type=float, default=0.995,
        help="full-space OD quantile for auto T (default 0.995)",
    )
    stream.add_argument(
        "--index", choices=["linear", "vafile"], default="linear",
        help="kNN backend; only the windowed backends stream (default linear)",
    )
    stream.add_argument(
        "--kernel", choices=["auto", "gemm", "exact"], default="auto",
        help="OD kernel (answers are identical at any setting)",
    )
    stream.add_argument(
        "--precision", choices=["auto", "float64", "float32"], default="auto",
        help="GEMM precision tier (answer sets are identical at any setting)",
    )
    stream.add_argument(
        "--cache-invalidation", choices=["delta", "all"], default="delta",
        help="OD-cache treatment per window update: delta (default) keeps "
        "entries whose kth-distance bound proves them unaffected, all drops "
        "everything; answers are identical either way",
    )
    stream.add_argument(
        "--workers", type=int, default=None,
        help="worker processes; above 1 the window updates propagate into "
        "the live shard pool (default: HOSMINER_WORKERS, else 1)",
    )
    stream.add_argument(
        "--sample-size", type=int, default=10,
        help="learning sample size S (default 10)",
    )
    stream.add_argument(
        "--drift", type=float, default=0.2,
        help="drift workload: centre movement per batch in cluster sigmas "
        "(default 0.2)",
    )
    stream.add_argument(
        "--outlier-every", type=int, default=4,
        help="drift workload: plant one outlier every N batches (default 4; "
        "0 disables)",
    )
    stream.add_argument(
        "--burst-every", type=int, default=4,
        help="burst workload: burst period in batches (default 4)",
    )
    stream.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    stream.add_argument(
        "--quiet", action="store_true", help="suppress the per-batch lines"
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a paper-table experiment (f1, e0-e11)"
    )
    experiment.add_argument(
        "id", choices=sorted(ALL_EXPERIMENTS) + ["all"], help="experiment id, or 'all'"
    )
    experiment.add_argument(
        "--full", action="store_true", help="run the full (slow) parameter grid"
    )
    experiment.add_argument(
        "--save", action="store_true", help="write results/<id>.json"
    )

    bench = subparsers.add_parser(
        "bench", help="run a benchmark spec through the declarative harness"
    )
    bench.add_argument(
        "name",
        nargs="?",
        choices=sorted(ALL_SPECS) + ["all"],
        help="spec name (see --list), or 'all'",
    )
    bench.add_argument(
        "--list", action="store_true", help="list the available specs and exit"
    )
    bench.add_argument(
        "--tier", choices=["smoke", "full"], default="smoke",
        help="grid tier (default smoke — the CI-sized grids the committed "
        "baselines were recorded at)",
    )
    bench.add_argument(
        "--out", default=None, metavar="PATH",
        help="snapshot output path (default BENCH_<name>.json in the current "
        "directory; only valid with a single spec)",
    )
    bench.add_argument(
        "--no-save", action="store_true", help="do not write a snapshot"
    )
    bench.add_argument(
        "--check", action="store_true",
        help="compare the fresh run against the committed baseline and exit "
        "non-zero when a gated measure regresses beyond the tolerance",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline snapshot for --check (default BENCH_<name>.json in the "
        "current directory; only valid with a single spec)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed relative regression for --check (default {DEFAULT_TOLERANCE})",
    )
    return parser


def _run_demo() -> int:
    print("=" * 72)
    print("Scenario 1 — Figure 1: a point outlying in exactly one 2-d view")
    print("=" * 72)
    dataset = make_figure1_data(seed=0)
    miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(dataset.X)
    result = miner.query_row(0)
    print(result.explain())
    print()

    print("=" * 72)
    print("Scenario 2 — athlete training (which disciplines are weak?)")
    print("=" * 72)
    athletes = load_athletes()
    miner = HOSMiner(k=6, sample_size=8, threshold_quantile=0.99).fit(
        zscore(athletes.X), feature_names=athletes.feature_names
    )
    for row in athletes.outlier_rows:
        print(f"athlete #{row}: planted weakness "
              f"{athletes.true_subspaces[row].notation()}")
        print(miner.query_row(row).explain())
        print()

    print("=" * 72)
    print("Scenario 3 — medical screening (where is the patient abnormal?)")
    print("=" * 72)
    patients = load_patients()
    miner = HOSMiner(k=6, sample_size=8, threshold_quantile=0.99).fit(
        zscore(patients.X), feature_names=patients.feature_names
    )
    for row in patients.outlier_rows:
        print(f"patient #{row}: planted condition "
              f"{patients.true_subspaces[row].notation()}")
        print(miner.query_row(row).explain())
        print()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    dataset = load_csv(args.csv)
    X = zscore(dataset.X) if args.normalize else dataset.X
    miner = HOSMiner(
        k=args.k,
        threshold=args.threshold,
        threshold_quantile=args.quantile,
        index=args.index,
        sample_size=args.sample_size,
        kernel=args.kernel,
        precision=args.precision,
        topk_kernel=args.topk_kernel,
    ).fit(X, feature_names=dataset.feature_names)
    print(f"fitted on {dataset.n} rows x {dataset.d} columns; T = {miner.threshold_:.4g}")
    for row in args.row:
        print(f"\nrow {row}:")
        print(miner.query_row(row).explain())
        if args.profile:
            from repro.core.od import ODEvaluator
            from repro.core.profile import compute_od_profile

            evaluator = ODEvaluator(miner.backend_, X[row], args.k, exclude=row)
            print(compute_od_profile(evaluator, miner.threshold_).render())
    return 0


def _run_detect(args: argparse.Namespace) -> int:
    dataset = load_csv(args.csv)
    X = zscore(dataset.X) if args.normalize else dataset.X
    miner = HOSMiner(
        k=args.k,
        threshold_quantile=args.quantile,
        sample_size=args.sample_size,
    ).fit(X, feature_names=dataset.feature_names)
    detections = miner.detect_outliers(max_results=args.top)
    print(
        f"{len(detections)} outlier(s) among {dataset.n} rows "
        f"(k={args.k}, T={miner.threshold_:.4g})"
    )
    for row, result in detections:
        print(f"\nrow {row}:")
        print(result.explain())
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.data.normalize import ZScoreScaler

    dataset = load_csv(args.csv)
    scaler = ZScoreScaler().fit(dataset.X) if args.normalize else None
    X = scaler.transform(dataset.X) if scaler is not None else dataset.X
    supervision: dict = {}
    if args.timeout_s is not None:
        # <= 0 on the CLI means "disable deadlines" (None internally).
        supervision["timeout_s"] = args.timeout_s if args.timeout_s > 0 else None
    if args.max_retries is not None:
        supervision["max_retries"] = args.max_retries
    if args.backoff_s is not None:
        supervision["backoff_s"] = args.backoff_s
    miner = HOSMiner(
        k=args.k,
        threshold=args.threshold,
        threshold_quantile=args.quantile,
        index=args.index,
        sample_size=args.sample_size,
        kernel=args.kernel,
        precision=args.precision,
        topk_kernel=args.topk_kernel,
        **supervision,
    ).fit(X, feature_names=dataset.feature_names)
    print(
        f"fitted on {dataset.n} rows x {dataset.d} columns; "
        f"T = {miner.threshold_:.4g}; kernel = {miner.kernel_}"
    )

    targets: list = []
    if args.all_rows:
        targets.extend(range(dataset.n))
    elif args.rows is not None:
        try:
            targets.extend(int(row) for row in args.rows.split(","))
        except ValueError:
            raise HOSMinerError(
                f"--rows must be comma-separated integers, got {args.rows!r}"
            ) from None
    if args.queries is not None:
        query_set = load_csv(args.queries)
        if query_set.d != dataset.d:
            raise HOSMinerError(
                f"query CSV has {query_set.d} columns, the fit data has {dataset.d}"
            )
        Q = scaler.transform(query_set.X) if scaler is not None else query_set.X
        targets.extend(np.asarray(row, dtype=np.float64) for row in Q)
    if not targets:
        raise HOSMinerError("nothing to query: pass --queries, --rows or --all-rows")

    result = miner.query_batch(targets, workers=args.workers, shard=args.shard)
    miner.close()
    print(result.summary())
    if args.explain:
        for position, point_result in enumerate(result):
            if point_result.is_outlier:
                print(f"\ntarget {position}:")
                print(point_result.explain())
    return 0


def _run_stream(args: argparse.Namespace) -> int:
    import time

    from repro.core.stream import StreamEngine
    from repro.data.synthetic import (
        make_burst_stream,
        make_drift_stream,
        make_gaussian_mixture,
    )

    warm = make_gaussian_mixture(args.window, args.d, seed=args.seed).X
    if args.workload == "drift":
        batches = make_drift_stream(
            args.batches,
            args.batch_size,
            args.d,
            drift_per_batch=args.drift,
            outlier_every=args.outlier_every,
            seed=None if args.seed is None else args.seed + 1,
        )
    else:
        batches = make_burst_stream(
            args.batches,
            args.batch_size,
            args.d,
            burst_every=args.burst_every,
            seed=None if args.seed is None else args.seed + 1,
        )
    miner = HOSMiner(
        k=args.k,
        threshold=args.threshold,
        threshold_quantile=args.quantile,
        index=args.index,
        sample_size=args.sample_size,
        kernel=args.kernel,
        precision=args.precision,
        cache_invalidation=args.cache_invalidation,
        stream_window=args.window,
        **({} if args.workers is None else {"workers": args.workers}),
    ).fit(warm)
    print(
        f"fitted warm-up window of {args.window} rows x {args.d}; "
        f"T = {miner.threshold_:.4g} (fixed for the stream); "
        f"kernel = {miner.kernel_}"
    )
    outliers = 0
    start = time.perf_counter()
    with StreamEngine(miner) as engine:
        for b, rows in enumerate(batches):
            expired = engine.push(rows)
            fresh = list(range(engine.occupancy - rows.shape[0], engine.occupancy))
            result = engine.query_batch(fresh)
            found = sum(1 for point in result if point.is_outlier)
            outliers += found
            if not args.quiet:
                cache = miner.od_cache_
                print(
                    f"batch {b:>3}: +{rows.shape[0]}/-{expired} rows, "
                    f"occupancy {engine.occupancy}, outliers {found}, "
                    f"cache retained {cache.delta_retained} "
                    f"evicted {cache.delta_evicted}"
                )
        wall = time.perf_counter() - start
        print(
            f"\n{engine.pushes} pushes: {engine.inserted} rows in, "
            f"{engine.expired} expired, {outliers} outlier(s) flagged, "
            f"{engine.inserted / wall:.0f} rows/s sustained (push + query)"
        )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    ids = sorted(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    for experiment_id in ids:
        experiment = ALL_EXPERIMENTS[experiment_id](fast=not args.full)
        experiment.print()
        if args.save:
            path = experiment.save()
            print(f"saved {path}\n")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import run_spec
    from repro.bench.snapshot import (
        SnapshotError,
        compare_snapshots,
        load_snapshot,
        save_snapshot,
        snapshot_path,
    )

    if args.list:
        width = max(len(name) for name in ALL_SPECS)
        for name in sorted(ALL_SPECS):
            spec = ALL_SPECS[name]
            gated = ",".join(sorted(spec.regression)) or "-"
            print(f"{name:<{width}}  {spec.title}  [gated: {gated}]")
        return 0
    if args.name is None:
        print("error: pass a spec name (or --list)", file=sys.stderr)
        return 2
    names = sorted(ALL_SPECS) if args.name == "all" else [args.name]
    if len(names) > 1 and (args.out or args.baseline):
        print("error: --out/--baseline need a single spec name", file=sys.stderr)
        return 2

    failed = False
    for name in names:
        spec = ALL_SPECS[name]
        baseline = None
        if args.check:
            # Load before writing: --out may point at the baseline itself.
            baseline_path = args.baseline or snapshot_path(name)
            try:
                baseline = load_snapshot(baseline_path)
            except SnapshotError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        result = run_spec(spec, tier=args.tier)
        result.to_experiment(latency=True).print()
        snapshot = result.to_snapshot()
        if not args.no_save:
            path = save_snapshot(snapshot, args.out or snapshot_path(name))
            print(f"saved {path}")
        if baseline is not None:
            report = compare_snapshots(baseline, snapshot, tolerance=args.tolerance)
            print(report.render())
            if not report.passed:
                failed = True
    return 1 if failed else 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _run_demo()
        if args.command == "query":
            return _run_query(args)
        if args.command == "detect":
            return _run_detect(args)
        if args.command == "batch":
            return _run_batch(args)
        if args.command == "stream":
            return _run_stream(args)
        if args.command == "experiment":
            return _run_experiment(args)
        if args.command == "bench":
            return _run_bench(args)
    except HOSMinerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Best-first subspace kNN and range search over R*-/X-trees.

The classic Hjaltason–Samet incremental algorithm: a priority queue of
tree nodes ordered by MINDIST to the query, interleaved with a bounded
max-heap of the k best data points found so far. A node is expanded only
while its MINDIST does not exceed the current k-th best distance, which
makes the search exact for any metric whose MINDIST is a true lower
bound — all metrics in :mod:`repro.core.metrics` are.

Subspace support falls out for free: MINDIST and the point distances
are simply computed over the queried dimension subset. Projection can
only shrink distances, and the projected MINDIST is the exact MINDIST
of the projected box, so no correctness argument changes.

Tie handling matches the linear scan bit-for-bit: candidates are kept by
``(distance, row index)`` order, and node expansion uses ``<=`` against
the bound so an equal-distance, smaller-index row hiding in a farther
node can still displace a tie.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.index.heap import KnnHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.rstar import RStarTree

__all__ = ["tree_knn", "tree_range_query"]


def _validate(tree: "RStarTree", query: np.ndarray, dims: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (tree.d,):
        raise DataShapeError(
            f"query must be a length-{tree.d} vector, got shape {query.shape}"
        )
    dims = np.asarray(dims, dtype=np.intp)
    if dims.size == 0:
        raise ConfigurationError("a query subspace needs at least one dimension")
    if dims.min() < 0 or dims.max() >= tree.d:
        raise ConfigurationError(f"dims {dims.tolist()} out of range for d={tree.d}")
    return query, dims


def tree_knn(
    tree: "RStarTree",
    query: np.ndarray,
    k: int,
    dims: Sequence[int],
    exclude: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbours of *query* over subspace *dims*."""
    query, dims = _validate(tree, query, dims)
    available = tree.size - (1 if exclude is not None else 0)
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > available:
        raise ConfigurationError(
            f"k={k} neighbours requested but only {available} candidate rows exist"
        )

    metric = tree.metric
    stats = tree.stats
    X = tree.data
    result = KnnHeap(k)
    tiebreak = count()
    root = tree.root
    queue: list[tuple[float, int, object]] = []
    if root.mbr is not None:
        stats.mindist_computations += 1
        heapq.heappush(
            queue, (metric.mindist(query, root.mbr.lower, root.mbr.upper, dims), next(tiebreak), root)
        )

    while queue and queue[0][0] <= result.bound():
        _, __, node = heapq.heappop(queue)
        # A supernode spans `blocks` disk pages — charge its true width.
        stats.node_accesses += node.blocks
        if node.is_leaf:
            rows = node.rows
            if not rows:
                continue
            distances = metric.pairwise(X[rows], query, dims)
            stats.distance_computations += len(rows)
            for row, distance in zip(rows, distances):
                if row == exclude:
                    continue
                result.offer(float(distance), row)
        else:
            bound = result.bound()
            for child in node.children:
                if child.mbr is None:
                    continue
                stats.mindist_computations += 1
                lower_bound = metric.mindist(query, child.mbr.lower, child.mbr.upper, dims)
                if lower_bound <= bound:
                    heapq.heappush(queue, (lower_bound, next(tiebreak), child))

    stats.knn_queries += 1
    items = result.items()
    indices = np.array([row for row, _ in items], dtype=np.intp)
    distances = np.array([distance for _, distance in items], dtype=np.float64)
    return indices, distances


def tree_range_query(
    tree: "RStarTree",
    query: np.ndarray,
    radius: float,
    dims: Sequence[int],
    exclude: int | None = None,
) -> np.ndarray:
    """All rows within *radius* of *query* over subspace *dims*."""
    query, dims = _validate(tree, query, dims)
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")

    metric = tree.metric
    stats = tree.stats
    X = tree.data
    hits: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.mbr is None:
            continue
        stats.node_accesses += node.blocks
        if node.is_leaf:
            rows = node.rows
            if not rows:
                continue
            distances = metric.pairwise(X[rows], query, dims)
            stats.distance_computations += len(rows)
            for row, distance in zip(rows, distances):
                if row != exclude and distance <= radius:
                    hits.append(row)
        else:
            for child in node.children:
                if child.mbr is None:
                    continue
                stats.mindist_computations += 1
                if metric.mindist(query, child.mbr.lower, child.mbr.upper, dims) <= radius:
                    stack.append(child)

    stats.range_queries += 1
    return np.array(sorted(hits), dtype=np.intp)

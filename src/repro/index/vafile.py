"""VA-file: vector-approximation file (Weber, Schek & Blott, VLDB'98).

The third kNN substrate. Where the X-tree fights the curse of
dimensionality with supernodes, the VA-file embraces the sequential
scan: every point is approximated by ``bits`` quantisation bits per
dimension, and a query first scans the tiny approximation file to
derive a *lower* and *upper* bound of each point's distance, then
refines exact distances only for the survivors. In high dimensions this
filters out the vast majority of exact distance computations while
reading a file ~``64 / bits`` times smaller than the data.

Subspace queries come for free: bounds are combined only over the
queried dimensions.

Algorithm (the two-phase "VA-SSA" variant):

1. scan approximations: per point, a lower bound ``L_i`` (distance from
   the query to the point's cell box) and an upper bound ``U_i``
   (distance to the farthest cell corner);
2. ``tau`` = the k-th smallest upper bound — the true k-th neighbour
   distance cannot exceed it;
3. refine exactly the candidates with ``L_i <= tau``. Every pruned
   point has true distance ``>= L_i > tau >= d_k``, so the answer (and
   even its deterministic tie order) matches the linear scan exactly.

Bounds are metric-aware for every built-in L_p metric (per-dimension
gaps combined by the metric's own aggregation); custom metrics are
rejected at construction rather than silently mis-bounded.

Insertions append to the approximation file in place using the
quantisation grid frozen at build time; coordinates outside the
original data range clamp to the edge cells, which only loosens bounds
(never correctness). Sliding-window expiry advances a head offset over
the same buffers (see :meth:`VAFile.expire`), so the streaming engine
never rebuilds the file.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
    resolve_kernel,
)
from repro.core.precision import resolve_precision, reverify_rtol
from repro.index.base import (
    mask_matrix,
    normalize_excludes,
    validate_query_matrix,
    validate_sums_request,
)
from repro.index.stats import IndexStats

__all__ = ["VAFile", "APPROX_BLOCK_ROWS"]

#: Approximation rows per simulated disk block for node-access
#: accounting. Approximation entries are `bits`-per-dimension instead of
#: 64, so a block holds proportionally more of them than raw vectors.
APPROX_BLOCK_ROWS = 512

#: Memory ceiling for one batched bound intermediate (see
#: :data:`repro.index.linear.BATCH_CHUNK_BYTES`); divided by 16 rather
#: than 8 because the bound pass holds a lower and an upper gap array.
_BATCH_CHUNK_BYTES = 64 * 2**20


def _metric_order(metric: Metric) -> float:
    """The L_p order used to combine per-dimension gap vectors."""
    if isinstance(metric, EuclideanMetric):
        return 2.0
    if isinstance(metric, ManhattanMetric):
        return 1.0
    if isinstance(metric, ChebyshevMetric):
        return float("inf")
    if isinstance(metric, MinkowskiMetric):
        return metric.p
    raise ConfigurationError(
        f"VAFile needs an L_p metric to derive bounds, got {metric!r}"
    )


def _combine(gaps: np.ndarray, order: float) -> np.ndarray:
    """Aggregate per-dimension gaps (n, |dims|) into distances (n,)."""
    if order == 2.0:
        return np.sqrt(np.einsum("ij,ij->i", gaps, gaps))
    if order == 1.0:
        return gaps.sum(axis=1)
    if order == float("inf"):
        return gaps.max(axis=1)
    return np.power(np.power(gaps, order).sum(axis=1), 1.0 / order)


class VAFile:
    """Vector-approximation file over a (growable) data matrix.

    Parameters
    ----------
    X:
        Initial data matrix ``(n, d)``.
    metric:
        Any built-in L_p metric (instance or name).
    bits:
        Quantisation bits per dimension (``2**bits`` cells); the
        classic sweet spot is 4–8.
    partitioning:
        ``"equi_width"`` (default) or ``"equi_depth"`` cell boundaries.
        Equi-depth adapts to skew at the cost of a sort per dimension.
    """

    def __init__(
        self,
        X: np.ndarray,
        metric: "Metric | str" = "euclidean",
        bits: int = 6,
        partitioning: str = "equi_width",
    ) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        if not 1 <= bits <= 16:
            raise ConfigurationError(f"bits must be in [1, 16], got {bits}")
        if partitioning not in ("equi_width", "equi_depth"):
            raise ConfigurationError(
                f"partitioning must be 'equi_width' or 'equi_depth', got {partitioning!r}"
            )
        self.metric = get_metric(metric)
        self._order = _metric_order(self.metric)
        self.bits = bits
        self.partitioning = partitioning
        self.cells = 1 << bits
        self.stats = IndexStats()

        # Data and approximation files live in parallel capacity-doubling
        # buffers with a _lo head offset, exactly like the linear scan's:
        # insert() writes into spare tail capacity, expire() advances the
        # head, and growth compacts the live window to the front. _X and
        # _approx are always the [_lo:_n) window views, so every bound /
        # refinement kernel below is window-agnostic.
        self._buf = X
        self._lo = 0
        self._n = X.shape[0]
        n, d = X.shape
        #: Cell boundaries, shape (d, cells + 1); cell c of dim j spans
        #: [boundaries[j, c], boundaries[j, c + 1]].
        self.boundaries = np.empty((d, self.cells + 1))
        for dim in range(d):
            column = X[:, dim]
            if partitioning == "equi_width":
                low, high = float(column.min()), float(column.max())
                if high <= low:
                    high = low + 1.0  # constant column: one fat cell
                self.boundaries[dim] = np.linspace(low, high, self.cells + 1)
            else:
                quantiles = np.linspace(0.0, 1.0, self.cells + 1)
                edges = np.quantile(column, quantiles)
                # Strictly increasing edges (ties collapse cells).
                edges = np.maximum.accumulate(edges)
                for i in range(1, edges.size):
                    if edges[i] <= edges[i - 1]:
                        edges[i] = edges[i - 1] + 1e-12
                self.boundaries[dim] = edges
        self._abuf = np.empty((n, d), dtype=np.uint16)
        for dim in range(d):
            self._abuf[:, dim] = self._quantise(X[:, dim], dim)
        self._refresh_views()

    def _refresh_views(self) -> None:
        self._X = self._buf[self._lo : self._n]
        self._approx = self._abuf[self._lo : self._n]

    # ------------------------------------------------------------------
    # KnnBackend interface
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._X.shape[0]

    @property
    def d(self) -> int:
        return self._X.shape[1]

    @property
    def data(self) -> np.ndarray:
        view = self._X.view()
        view.flags.writeable = False
        return view

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        query, dims = self._validate(query, dims)
        available = self.size - (1 if exclude is not None else 0)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )

        lower, upper = self._bounds(query, dims)
        if exclude is not None:
            lower[exclude] = np.inf
            upper[exclude] = np.inf
        tau = np.partition(upper, k - 1)[k - 1]
        candidates = np.flatnonzero(lower <= tau)
        self.stats.bump("candidates_refined", int(candidates.size))

        distances = self.metric.pairwise(self._X[candidates], query, dims)
        self.stats.distance_computations += int(candidates.size)
        self.stats.node_accesses += int(candidates.size)  # one row read each
        order = np.lexsort((candidates, distances))[:k]
        self.stats.knn_queries += 1
        return candidates[order], distances[order]

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims: Sequence[int],
        excludes: "Sequence[int | None] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Vectorised multi-query kNN: one approximation-file scan for
        the whole batch.

        Phase 1 (the bulk of VA-file work — scanning the approximation
        file for lower/upper bounds) is computed for all ``m`` queries in
        one broadcasted pass per dimension. Phase 2 (per-query candidate
        refinement) is inherently query-local and stays a loop, exactly
        mirroring :meth:`knn` so answers and tie order are identical.
        """
        queries = validate_query_matrix(queries, self.d)
        m = queries.shape[0]
        excludes = normalize_excludes(excludes, m, self.size)
        dims = self._validate_dims(dims)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        for exclude in excludes:
            available = self.size - (1 if exclude is not None else 0)
            if k > available:
                raise ConfigurationError(
                    f"k={k} neighbours requested but only {available} candidate rows exist"
                )
        if m == 0:
            return []

        # Chunk the query axis so the (m_chunk, n, |dims|) bound
        # intermediates stay bounded for huge batches; per-query results
        # are unaffected by the chunking.
        chunk = max(1, _BATCH_CHUNK_BYTES // (self.size * dims.size * 16))
        results = []
        for start in range(0, m, chunk):
            stop = min(start + chunk, m)
            lower, upper = self._bounds_many(queries[start:stop], dims)
            for i in range(start, stop):
                row_lower, row_upper = lower[i - start], upper[i - start]
                exclude = excludes[i]
                if exclude is not None:
                    row_lower[exclude] = np.inf
                    row_upper[exclude] = np.inf
                tau = np.partition(row_upper, k - 1)[k - 1]
                candidates = np.flatnonzero(row_lower <= tau)
                self.stats.bump("candidates_refined", int(candidates.size))
                distances = self.metric.pairwise(self._X[candidates], queries[i], dims)
                self.stats.distance_computations += int(candidates.size)
                self.stats.node_accesses += int(candidates.size)
                order = np.lexsort((candidates, distances))[:k]
                results.append((candidates[order], distances[order]))
        self.stats.knn_queries += m
        return results

    def knn_distance_sums(
        self,
        query: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        exclude: int | None = None,
        components: "np.ndarray | None" = None,
        kernel: str = "exact",
        precision: str = "float64",
        components32: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sum of the ``k`` smallest distances in many subspaces at once.

        The VA-file's OD kernel: subspace bounds come from the
        approximation file, the survivors are refined exactly, and the
        ``k`` smallest exact distances are summed ascending — so every
        value is bit-identical to ``float(knn(...)[1].sum())`` under
        **either** kernel (the kernels differ only in how the candidate
        prefilter is computed, and any superset of the true kNN refines
        to the same answer).

        ``kernel="gemm"`` builds per-dimension lower/upper gap component
        tables once (power-domain, one approximation-file pass) and
        derives every subspace's bounds with two ``M @ G.T`` GEMMs; a
        tiny relative slack on the pruning comparison absorbs the BLAS
        accumulation-order difference, which can only *add* candidates,
        never lose a true neighbour. Under ``precision="float32"`` the
        two bound GEMMs inherit the float32 tier: gap tables are cast
        once per call and the slack widens to the rigorous float32
        rounding band (:func:`repro.core.precision.reverify_rtol`) on
        *both* sides of the comparison, so the candidate set can again
        only grow — refinement stays exact, hence values stay
        bit-identical at any precision (overflowing gap tables or a
        non-finite bound product silently fall back to float64).
        ``kernel="exact"`` computes bounds per mask exactly as
        :meth:`knn` does. The *components*/*components32* arguments are
        accepted for interface parity and ignored — refinement always
        gathers exact rows itself.
        """
        del components, components32  # interface parity with LinearScanIndex
        query, _ = self._validate(query, range(self.d))
        dims_arrays = validate_sums_request(
            dims_list, self._validate_dims, k, self.size, [exclude]
        )
        kernel = resolve_kernel(kernel, self.metric)
        count = len(dims_arrays)
        if count == 0:
            return np.empty(0)

        sums = np.empty(count)
        candidates_list = self._mask_candidates(
            query, k, dims_arrays, exclude, kernel, precision
        )
        for j, dims in enumerate(dims_arrays):
            sums[j] = float(
                self._refine_prefix(query, k, dims, candidates_list[j]).sum()
            )
        self.stats.knn_queries += count
        return sums

    def knn_distance_prefix(
        self,
        query: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        exclude: int | None = None,
        components: "np.ndarray | None" = None,
        kernel: str = "exact",
        precision: str = "float64",
        components32: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sorted k-nearest *distances* per subspace, shape ``(m, k)``.

        The VA-file's shard partial for the scatter-gather engine
        (:mod:`repro.core.shard`): a shard-local view runs the same
        approximation-file candidate prefilter as
        :meth:`knn_distance_sums` (under either bound *kernel* and
        *precision*), refines the survivors exactly, and hands the
        coordinator its sorted k-prefix — candidate partials whose
        cross-shard merge is the global exact prefix, because refinement
        is exact per row and never crosses shard boundaries.
        ``knn_distance_sums`` is exactly ``prefix.sum(axis=1)``.
        """
        del components, components32  # interface parity with LinearScanIndex
        query, _ = self._validate(query, range(self.d))
        dims_arrays = validate_sums_request(
            dims_list, self._validate_dims, k, self.size, [exclude]
        )
        kernel = resolve_kernel(kernel, self.metric)
        count = len(dims_arrays)
        if count == 0:
            return np.empty((0, k))

        out = np.empty((count, k))
        candidates_list = self._mask_candidates(
            query, k, dims_arrays, exclude, kernel, precision
        )
        for j, dims in enumerate(dims_arrays):
            out[j] = self._refine_prefix(query, k, dims, candidates_list[j])
        self.stats.knn_queries += count
        return out

    def _mask_candidates(
        self,
        query: np.ndarray,
        k: int,
        dims_arrays: "list[np.ndarray]",
        exclude: int | None,
        kernel: str,
        precision: str,
    ) -> "list[np.ndarray]":
        """Per-mask candidate supersets of the true kNN (bounds prefilter).

        The shared front half of :meth:`knn_distance_sums` and
        :meth:`knn_distance_prefix` — see the sums docstring for the
        bound derivation and the float32 slack argument.
        """
        count = len(dims_arrays)
        candidates_list: list[np.ndarray] = []
        if kernel == "gemm":
            lower_gaps, upper_gaps = self._gap_components(query)
            precision = resolve_precision(precision, kernel)
            # Power-domain bounds for every (point, subspace) pair in
            # two GEMMs; the L_p root is monotone, so candidate
            # selection can stay in the power domain.
            SL = SU = None
            rtol = 1e-9
            if precision == "float32":
                L32 = np.ascontiguousarray(lower_gaps.T, dtype=np.float32)
                U32 = np.ascontiguousarray(upper_gaps.T, dtype=np.float32)
                if np.isfinite(L32).all() and np.isfinite(U32).all():
                    M32 = mask_matrix(dims_arrays, self.d, dtype=np.float32)
                    SL = M32 @ L32
                    SU = M32 @ U32
                    if np.isfinite(SL).all() and np.isfinite(SU).all():
                        rtol = reverify_rtol(precision, self.d)
                    else:
                        SL = SU = None  # accumulation overflow: use float64
            if SL is None:
                M = mask_matrix(dims_arrays, self.d)
                SL = M @ lower_gaps.T
                SU = M @ upper_gaps.T
            self.stats.record_peak(
                "peak_intermediate_bytes", SL.nbytes + SU.nbytes
            )
            if exclude is not None:
                SL[:, exclude] = np.inf
                SU[:, exclude] = np.inf
            SU.partition(k - 1, axis=1)
            taus = SU[:, k - 1]
            self.stats.mindist_computations += count * self.size
            self.stats.bump("gemm_flops", 2 * 2 * self.size * self.d * count)
            self.stats.bump("gemm_masks", count)
            for j in range(count):
                # Slack absorbs GEMM-vs-exact bound noise (and, at
                # float32, the full rounding band on both comparison
                # sides): loosening the filter only adds refinements,
                # never drops a neighbour. The negated comparison keeps
                # non-finite bounds (gap overflow to inf can make the
                # product NaN) on the candidate side — refinement is
                # exact, so pathological rows cost time, never answers.
                slack = rtol * (float(taus[j]) + 1.0)
                candidates_list.append(
                    np.flatnonzero(~(SL[j] > taus[j] + slack))
                )
        else:
            for dims in dims_arrays:
                lower, upper = self._bounds(query, dims)
                if exclude is not None:
                    lower[exclude] = np.inf
                    upper[exclude] = np.inf
                tau = np.partition(upper, k - 1)[k - 1]
                candidates_list.append(np.flatnonzero(lower <= tau))
        return candidates_list

    def knn_distance_sums_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        excludes: "Sequence[int | None] | None" = None,
        components_list: "Sequence[np.ndarray | None] | None" = None,
        kernel: str = "auto",
        precision: str = "float64",
        components32_list: "Sequence[np.ndarray | None] | None" = None,
    ) -> np.ndarray:
        """OD sums for every ``(query row, subspace)`` pair, ``(q, m)``.

        Candidate refinement is inherently query-local for a VA-file, so
        this is a loop over :meth:`knn_distance_sums` — each query still
        gets the one-pass gap tables and two-GEMM bound derivation (in
        *precision*, resolved there against the kernel).
        """
        del components_list, components32_list  # interface parity
        queries = validate_query_matrix(queries, self.d)
        excludes = normalize_excludes(excludes, queries.shape[0], self.size)
        out = np.empty((queries.shape[0], len(dims_list)))
        for i, (query, exclude) in enumerate(zip(queries, excludes)):
            out[i] = self.knn_distance_sums(
                query, k, dims_list, exclude=exclude, kernel=kernel,
                precision=precision,
            )
        return out

    def knn_distance_prefix_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        excludes: "Sequence[int | None] | None" = None,
        components_list: "Sequence[np.ndarray | None] | None" = None,
        kernel: str = "auto",
        precision: str = "float64",
        components32_list: "Sequence[np.ndarray | None] | None" = None,
    ) -> np.ndarray:
        """Sorted k-nearest distances per ``(query row, subspace)`` pair,
        ``(q, m, k)`` — the prefix-grade sibling of
        :meth:`knn_distance_sums_batch`, same per-query loop."""
        del components_list, components32_list  # interface parity
        queries = validate_query_matrix(queries, self.d)
        excludes = normalize_excludes(excludes, queries.shape[0], self.size)
        out = np.empty((queries.shape[0], len(dims_list), k))
        for i, (query, exclude) in enumerate(zip(queries, excludes)):
            out[i] = self.knn_distance_prefix(
                query, k, dims_list, exclude=exclude, kernel=kernel,
                precision=precision,
            )
        return out

    def _refine_prefix(
        self, query: np.ndarray, k: int, dims: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact sorted k-nearest distances over a candidate superset."""
        self.stats.bump("candidates_refined", int(candidates.size))
        distances = self.metric.pairwise(self._X[candidates], query, dims)
        self.stats.distance_computations += int(candidates.size)
        self.stats.node_accesses += int(candidates.size)
        distances.partition(k - 1)
        smallest = distances[:k]
        smallest.sort()
        return smallest

    def _gap_components(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension power-domain gap tables, each ``(n, d)``.

        One approximation-file pass builds the lower-bound (cell gap)
        and upper-bound (farthest corner) contribution of every
        ``(point, dim)`` pair; any subspace's bounds are then plain sums
        of columns — exactly the shape the mask-matrix GEMM consumes.
        Chebyshev never reaches here (``resolve_kernel`` routes its
        max-reduction to the exact kernel).
        """
        n, d = self.size, self.d
        lower_gaps = np.empty((n, d))
        upper_gaps = np.empty((n, d))
        for dim in range(d):
            edges = self.boundaries[dim]
            q = query[dim]
            cell_lower = edges[:-1]
            cell_upper = edges[1:]
            low_gap = np.maximum(0.0, np.maximum(cell_lower - q, q - cell_upper))
            up_gap = np.maximum(np.abs(q - cell_lower), np.abs(q - cell_upper))
            if self._order == 2.0:
                low_gap = low_gap * low_gap
                up_gap = up_gap * up_gap
            elif self._order != 1.0:
                low_gap = np.power(low_gap, self._order)
                up_gap = np.power(up_gap, self._order)
            codes = self._approx[:, dim]
            lower_gaps[:, dim] = low_gap[codes]
            upper_gaps[:, dim] = up_gap[codes]
        self.stats.node_accesses += -(-n // APPROX_BLOCK_ROWS)
        return lower_gaps, upper_gaps

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        query, dims = self._validate(query, dims)
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        lower, _ = self._bounds(query, dims)
        candidates = np.flatnonzero(lower <= radius)
        self.stats.bump("candidates_refined", int(candidates.size))
        distances = self.metric.pairwise(self._X[candidates], query, dims)
        self.stats.distance_computations += int(candidates.size)
        self.stats.node_accesses += int(candidates.size)
        hits = candidates[distances <= radius]
        if exclude is not None:
            hits = hits[hits != exclude]
        self.stats.range_queries += 1
        return np.sort(hits)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> int:
        """Append a point; returns its row id.

        Amortised O(d): the point and its approximation cell are written
        into spare buffer capacity (both buffers double when full, which
        also compacts expired head rows away). The *interior* grid
        boundaries are frozen, but an out-of-range coordinate stretches
        the outermost edge to cover it: the point lands in an edge cell
        whose interval genuinely contains it, so its bounds stay valid.
        Widening an edge cell never invalidates existing codes — points
        already in that cell remain inside the wider interval, their
        bounds only loosen, and refinement is exact either way. (Merely
        *clamping* an outside point into an unstretched edge cell would
        be wrong: the cell-gap lower bound could exceed the point's true
        distance and prune it off a k-NN set it belongs to.)
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise DataShapeError(
                f"point must be a length-{self.d} vector, got shape {point.shape}"
            )
        for dim in range(self.d):
            edges = self.boundaries[dim]
            if point[dim] < edges[0]:
                edges[0] = point[dim]
            elif point[dim] > edges[-1]:
                edges[-1] = point[dim]
        approx = np.array(
            [self._quantise(point[dim : dim + 1], dim)[0] for dim in range(self.d)],
            dtype=np.uint16,
        )
        if self._n == self._buf.shape[0]:
            live = self._n - self._lo
            cap = max(2 * live, live + 1)
            grown = np.empty((cap, self.d))
            grown[:live] = self._buf[self._lo : self._n]
            agrown = np.empty((cap, self.d), dtype=np.uint16)
            agrown[:live] = self._abuf[self._lo : self._n]
            self._buf, self._abuf = grown, agrown
            self._lo = 0
            self._n = live
        self._buf[self._n] = point
        self._abuf[self._n] = approx
        self._n += 1
        self._refresh_views()
        return self.size - 1

    def expire(self, count: int) -> np.ndarray:
        """Drop the ``count`` oldest rows; returns a copy of them.

        O(1) per call (plus the O(count·d) copy handed back for delta
        cache invalidation): both the data and approximation windows just
        advance their head offset. The quantisation grid stays frozen —
        bounds remain valid for any grid and refinement is exact, so
        answers match a freshly built VA-file element-wise even though
        candidate-set sizes may differ.
        """
        count = int(count)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if count >= self.size:
            raise ConfigurationError(
                f"cannot expire {count} of {self.size} rows: "
                "the approximation file must stay non-empty"
            )
        removed = self._buf[self._lo : self._lo + count].copy()
        self._lo += count
        self._refresh_views()
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _quantise(self, values: np.ndarray, dim: int) -> np.ndarray:
        cells = np.searchsorted(self.boundaries[dim][1:-1], values, side="right")
        return np.clip(cells, 0, self.cells - 1).astype(np.uint16)

    def _bounds(self, query: np.ndarray, dims: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-point lower/upper distance bounds over *dims*."""
        n = self.size
        gaps_lower = np.empty((n, dims.size))
        gaps_upper = np.empty((n, dims.size))
        for j, dim in enumerate(dims):
            edges = self.boundaries[dim]
            q = query[dim]
            cell_lower = edges[:-1]
            cell_upper = edges[1:]
            # Distance from q to each cell interval (0 inside) and to the
            # farthest end of each interval — precomputed per cell, then
            # gathered through the approximation column.
            low_gap = np.maximum(0.0, np.maximum(cell_lower - q, q - cell_upper))
            up_gap = np.maximum(np.abs(q - cell_lower), np.abs(q - cell_upper))
            codes = self._approx[:, dim]
            gaps_lower[:, j] = low_gap[codes]
            gaps_upper[:, j] = up_gap[codes]
        self.stats.node_accesses += -(-n // APPROX_BLOCK_ROWS)
        self.stats.mindist_computations += n
        return _combine(gaps_lower, self._order), _combine(gaps_upper, self._order)

    def _bounds_many(
        self, queries: np.ndarray, dims: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper distance bounds for a whole query batch, ``(m, n)``.

        Same per-cell gap tables as :meth:`_bounds`, but built for all
        queries at once: each dimension produces an ``(m, cells)`` table
        that is gathered through the shared approximation column.
        """
        m, n = queries.shape[0], self.size
        gaps_lower = np.empty((m, n, dims.size))
        gaps_upper = np.empty((m, n, dims.size))
        for j, dim in enumerate(dims):
            edges = self.boundaries[dim]
            q = queries[:, dim][:, None]
            cell_lower = edges[:-1][None, :]
            cell_upper = edges[1:][None, :]
            low_gap = np.maximum(0.0, np.maximum(cell_lower - q, q - cell_upper))
            up_gap = np.maximum(np.abs(q - cell_lower), np.abs(q - cell_upper))
            codes = self._approx[:, dim]
            gaps_lower[:, :, j] = low_gap[:, codes]
            gaps_upper[:, :, j] = up_gap[:, codes]
        self.stats.node_accesses += m * -(-n // APPROX_BLOCK_ROWS)
        self.stats.mindist_computations += m * n
        lower = _combine(gaps_lower.reshape(m * n, dims.size), self._order)
        upper = _combine(gaps_upper.reshape(m * n, dims.size), self._order)
        return lower.reshape(m, n), upper.reshape(m, n)

    def _validate(self, query: np.ndarray, dims: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        return query, self._validate_dims(dims)

    def _validate_dims(self, dims: Sequence[int]) -> np.ndarray:
        dims = np.asarray(dims, dtype=np.intp)
        if dims.size == 0:
            raise ConfigurationError("a query subspace needs at least one dimension")
        if dims.min() < 0 or dims.max() >= self.d:
            raise ConfigurationError(f"dims {dims.tolist()} out of range for d={self.d}")
        return dims

    def candidate_fraction(self) -> float:
        """Average fraction of points refined exactly per query so far —
        the VA-file's headline selectivity figure."""
        queries = self.stats.knn_queries + self.stats.range_queries
        if queries == 0:
            return 0.0
        return self.stats.extra.get("candidates_refined", 0) / (queries * self.size)

    def __repr__(self) -> str:
        return (
            f"VAFile(n={self.size}, d={self.d}, bits={self.bits}, "
            f"partitioning={self.partitioning!r})"
        )

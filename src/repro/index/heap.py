"""A bounded max-heap of (distance, id) pairs for k-nearest-neighbour search.

Keeps the *k smallest* distances seen so far; the root is always the
current k-th best, so tree traversals can prune any branch whose MINDIST
exceeds :meth:`KnnHeap.bound`. Python's :mod:`heapq` is a min-heap, so
entries are stored as ``(-distance, -item)``: negating the distance
turns it into a max-heap, and negating the item id makes equal-distance
ties evict the *largest* id first, which reproduces the linear scan's
deterministic ``(distance, index)`` ordering exactly.
"""

from __future__ import annotations

import heapq

from repro.core.exceptions import ConfigurationError

__all__ = ["KnnHeap"]


class KnnHeap:
    """Fixed-capacity container of the k closest candidates.

    Parameters
    ----------
    k:
        Number of neighbours to retain; must be positive.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """Whether k candidates have been collected."""
        return len(self._heap) >= self.k

    def bound(self) -> float:
        """Current pruning bound: the k-th smallest distance so far,
        or ``+inf`` while fewer than k candidates are held."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, distance: float, item: int) -> bool:
        """Consider a candidate; returns ``True`` if it was retained.

        A candidate replaces the current worst when it is strictly
        closer, or equally close with a smaller id.
        """
        candidate = (-distance, -item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, candidate)
            return True
        if candidate > self._heap[0]:
            heapq.heapreplace(self._heap, candidate)
            return True
        return False

    def items(self) -> list[tuple[int, float]]:
        """Retained ``(item, distance)`` pairs, closest first.

        Ties are broken by ascending item id, matching the linear scan.
        """
        decoded = sorted((-neg_d, -neg_item) for neg_d, neg_item in self._heap)
        return [(item, distance) for distance, item in decoded]

"""Minimum bounding rectangles (MBRs) for the R*-tree / X-tree substrate.

An MBR is the axis-aligned box ``[lower, upper]`` enclosing a set of
points or child boxes. All geometry the tree algorithms need lives here:
area/margin (for the R* split heuristics), overlap volume and the
normalised overlap ratio (the X-tree split-or-supernode decision), and
union/enlargement (for ChooseSubtree).

Boxes are stored as two float64 numpy arrays. Degenerate boxes (points)
are legal: ``lower == upper``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.exceptions import DataShapeError

__all__ = ["MBR"]


class MBR:
    """A mutable axis-aligned bounding box.

    Mutability is deliberate: tree maintenance constantly tightens and
    extends boxes in place, and copying ``d``-vectors on every insert
    dominated profiles of an earlier immutable design.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise DataShapeError(
                f"MBR bounds must be equal-length vectors, got {lower.shape} / {upper.shape}"
            )
        if np.any(lower > upper):
            raise DataShapeError("MBR lower bound exceeds upper bound")
        self.lower = lower
        self.upper = upper

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_point(cls, point: np.ndarray) -> "MBR":
        """Degenerate box around a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(point.copy(), point.copy())

    @classmethod
    def union_of(cls, boxes: Iterable["MBR"]) -> "MBR":
        """Smallest box containing every input box."""
        boxes = list(boxes)
        if not boxes:
            raise DataShapeError("cannot take the union of zero boxes")
        lower = boxes[0].lower.copy()
        upper = boxes[0].upper.copy()
        for box in boxes[1:]:
            np.minimum(lower, box.lower, out=lower)
            np.maximum(upper, box.upper, out=upper)
        return cls(lower, upper)

    def copy(self) -> "MBR":
        return MBR(self.lower.copy(), self.upper.copy())

    # -- geometry -----------------------------------------------------------
    @property
    def d(self) -> int:
        """Dimensionality of the box."""
        return self.lower.shape[0]

    def area(self) -> float:
        """Volume of the box (product of extents)."""
        return float(np.prod(self.upper - self.lower))

    def margin(self) -> float:
        """Sum of edge lengths — the R* split axis criterion."""
        return float(np.sum(self.upper - self.lower))

    def center(self) -> np.ndarray:
        return (self.lower + self.upper) * 0.5

    def contains_point(self, point: np.ndarray) -> bool:
        return bool(np.all(point >= self.lower) and np.all(point <= self.upper))

    def contains_box(self, other: "MBR") -> bool:
        return bool(np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper))

    def intersects(self, other: "MBR") -> bool:
        return bool(np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper))

    def intersection_volume(self, other: "MBR") -> float:
        """Volume of the overlap region (0.0 when disjoint)."""
        extents = np.minimum(self.upper, other.upper) - np.maximum(self.lower, other.lower)
        if np.any(extents < 0):
            return 0.0
        return float(np.prod(extents))

    def overlap_ratio(self, other: "MBR") -> float:
        """Normalised overlap used by the X-tree split test:

        ``||A ∩ B|| / ||A ∪ B||`` (intersection volume over the volume of
        the union *of the two boxes' own volumes*, inclusion–exclusion).
        Returns 0 for disjoint boxes and 1 for identical non-degenerate
        ones. Degenerate unions (zero total volume) count as fully
        overlapping only when the boxes intersect.
        """
        intersection = self.intersection_volume(other)
        union = self.area() + other.area() - intersection
        if union <= 0.0:
            return 1.0 if self.intersects(other) else 0.0
        return intersection / union

    # -- mutation ---------------------------------------------------------
    def extend_point(self, point: np.ndarray) -> None:
        """Grow in place to cover *point*."""
        np.minimum(self.lower, point, out=self.lower)
        np.maximum(self.upper, point, out=self.upper)

    def extend_box(self, other: "MBR") -> None:
        """Grow in place to cover *other*."""
        np.minimum(self.lower, other.lower, out=self.lower)
        np.maximum(self.upper, other.upper, out=self.upper)

    def union(self, other: "MBR") -> "MBR":
        """New box covering both operands."""
        return MBR(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
        )

    def enlargement(self, other: "MBR") -> float:
        """Extra volume needed to also cover *other* — ChooseSubtree cost."""
        return self.union(other).area() - self.area()

    def overlap_enlargement(self, other: "MBR", siblings: Sequence["MBR"]) -> float:
        """Increase in summed overlap with *siblings* if *other* is added.

        This is the R* leaf-level ChooseSubtree criterion.
        """
        grown = self.union(other)
        before = sum(self.intersection_volume(sib) for sib in siblings)
        after = sum(grown.intersection_volume(sib) for sib in siblings)
        return after - before

    def __repr__(self) -> str:
        return f"MBR(lower={self.lower.tolist()}, upper={self.upper.tolist()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self.lower, other.lower)
            and np.array_equal(self.upper, other.upper)
        )

    def __hash__(self) -> int:  # pragma: no cover - boxes are not dict keys
        return hash((self.lower.tobytes(), self.upper.tobytes()))

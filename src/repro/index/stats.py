"""Machine-independent cost counters for the kNN backends.

The original X-tree evaluation reports page accesses; we run in memory,
so the equivalent logical costs are *node accesses* (one per visited
tree node — a disk-resident tree would pay one page read each) and
*distance computations* (dominant CPU cost of a scan). Every backend
increments the same counter object so experiment E8 can compare
backends on identical axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IndexStats"]


@dataclass(slots=True)
class IndexStats:
    """Cumulative logical costs of one index instance.

    Attributes
    ----------
    node_accesses:
        Tree nodes visited (directory + leaf). Linear scan counts one
        access per *block* of rows, mirroring sequential page reads.
    distance_computations:
        Point-to-point distance evaluations.
    mindist_computations:
        Box lower-bound evaluations (tree backends only).
    knn_queries / range_queries:
        Number of top-level queries answered.
    extra:
        Backend-specific named counters. The scan backends use
        ``component_gathers`` (per-dimension terms re-read from a cached
        component matrix — reuse traffic, deliberately *not* counted as
        distance computations because no per-dimension arithmetic is
        redone), ``gemm_flops`` (floating-point operations spent in the
        level-wide ``M @ C.T`` OD kernel), ``gemm_masks`` /
        ``reverified_masks`` (masks answered by the GEMM kernel and the
        subset re-computed exactly near the threshold — their ratio is
        the ``reverify_fraction`` honesty counter of the precision
        tier), ``peak_intermediate_bytes`` (high-water mark of one GEMM
        intermediate, kept as a maximum via :meth:`record_peak`) and,
        for the VA-file, ``candidates_refined`` (points surviving the
        approximation prefilter).
    """

    node_accesses: int = 0
    distance_computations: int = 0
    mindist_computations: int = 0
    knn_queries: int = 0
    range_queries: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (including backend-specific extras)."""
        self.node_accesses = 0
        self.distance_computations = 0
        self.mindist_computations = 0
        self.knn_queries = 0
        self.range_queries = 0
        self.extra.clear()

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a backend-specific named counter."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def record_peak(self, key: str, value: int) -> None:
        """Record a high-water mark (e.g. ``peak_intermediate_bytes``).

        Unlike :meth:`bump`, repeated observations keep the *maximum* —
        the right aggregation for transient allocation sizes, where a
        sum over calls would measure traffic, not footprint.
        """
        if value > self.extra.get(key, 0):
            self.extra[key] = int(value)

    def snapshot(self) -> dict[str, int]:
        """Flat dict of all counters — convenient for bench tables."""
        data = {
            "node_accesses": self.node_accesses,
            "distance_computations": self.distance_computations,
            "mindist_computations": self.mindist_computations,
            "knn_queries": self.knn_queries,
            "range_queries": self.range_queries,
        }
        data.update(self.extra)
        return data

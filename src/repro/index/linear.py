"""Vectorised linear-scan kNN backend.

The reference backend: exact, simple, and — thanks to numpy — usually
the fastest option in pure Python for the dataset sizes of the 2004
demo. The tree backends are benched against it in experiment E8 on
logical-I/O metrics, where they win; on raw wall-time the scan wins
because its inner loop is C. Both facts show up honestly in the E8
table (``repro bench e8``).

Cost accounting mirrors a sequential scan of a disk-resident file: one
node access per :data:`BLOCK_ROWS` rows touched plus one distance
computation per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import Metric, get_metric, resolve_kernel
from repro.core.precision import resolve_precision
from repro.index.base import (
    components32_from,
    mask_matrix,
    normalize_excludes,
    validate_query_matrix,
    validate_sums_request,
)
from repro.index.stats import IndexStats
from repro.index.topk import TOPK_KERNELS, resolve_topk_kernel, topk_prefix

__all__ = ["LinearScanIndex", "BLOCK_ROWS"]

#: Rows per simulated disk block for node-access accounting.
BLOCK_ROWS = 64

#: Memory ceiling for one batched distance intermediate. The multi-query
#: kernels chunk their query axis — and the single-query level GEMM its
#: *column* axis — so no temporary exceeds this many bytes. The budget
#: counts elements at the kernel's dtype, so the float32 tier fits twice
#: the columns per block. Chunking never changes results: the query axis
#: is independent per query, and the column blocking never splits a dot
#: product's reduction axis (see :meth:`LinearScanIndex._level_prefix`).
BATCH_CHUNK_BYTES = 64 * 2**20


class LinearScanIndex:
    """Exact kNN / range search by full vectorised scan.

    Parameters
    ----------
    X:
        Data matrix, shape ``(n, d)``; copied to float64 and kept
        contiguous for fast fancy-indexing on dimension subsets.
    metric:
        Metric instance or registry name (default ``"euclidean"``).
    topk_kernel:
        Post-GEMM top-k selection kernel, one of
        :data:`repro.index.topk.TOPK_KERNELS` (default ``"auto"``).
        Every kernel returns identical values; the knob only moves time.
    """

    def __init__(
        self,
        X: np.ndarray,
        metric: "Metric | str" = "euclidean",
        topk_kernel: str = "auto",
    ) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        if topk_kernel not in TOPK_KERNELS:
            raise ConfigurationError(
                f"topk_kernel must be one of {TOPK_KERNELS}, got {topk_kernel!r}"
            )
        # The scanned matrix lives in a capacity-doubling buffer so that
        # insert() is amortised O(d) instead of an O(n·d) vstack per
        # call. Sliding-window expiry only bumps the _lo head offset —
        # the dead rows are reclaimed when the next growth compacts the
        # live window to the front — so _X is always the contiguous
        # [_lo:_n) window view and every kernel below is window-agnostic.
        self._buf = X
        self._lo = 0
        self._n = X.shape[0]
        self._X = self._buf[self._lo : self._n]
        self.metric = get_metric(metric)
        self.topk_kernel = topk_kernel
        self.stats = IndexStats()

    # -- KnnBackend interface ------------------------------------------------
    @property
    def size(self) -> int:
        return self._X.shape[0]

    @property
    def d(self) -> int:
        return self._X.shape[1]

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the indexed matrix."""
        view = self._X.view()
        view.flags.writeable = False
        return view

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        query, dims = self._validate(query, dims)
        available = self.size - (1 if exclude is not None else 0)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )

        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        if exclude is not None:
            distances = distances.copy()
            distances[exclude] = np.inf

        # argpartition gives the k smallest in O(n); a final stable sort of
        # just k entries yields the deterministic (distance, index) order.
        candidate = np.argpartition(distances, k - 1)[:k]
        order = np.lexsort((candidate, distances[candidate]))
        indices = candidate[order]
        self.stats.knn_queries += 1
        return indices, distances[indices]

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims: Sequence[int],
        excludes: "Sequence[int | None] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Vectorised multi-query kNN: one broadcasted distance pass.

        The whole ``(m, n)`` distance matrix is computed in a single
        numpy kernel (via the metric's ``pairwise_many`` when available),
        then each row is reduced with the same argpartition + stable
        lexsort as :meth:`knn`, so results — including tie order — are
        identical to ``m`` sequential calls while the dominant distance
        work runs ``m``-wide.
        """
        queries = validate_query_matrix(queries, self.d)
        m = queries.shape[0]
        excludes = normalize_excludes(excludes, m, self.size)
        dims = self._validate_dims(dims)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        for exclude in excludes:
            available = self.size - (1 if exclude is not None else 0)
            if k > available:
                raise ConfigurationError(
                    f"k={k} neighbours requested but only {available} candidate rows exist"
                )
        if m == 0:
            return []

        pairwise_many = getattr(self.metric, "pairwise_many", None)
        chunk = max(1, BATCH_CHUNK_BYTES // (self.size * max(1, dims.size) * 8))
        results = []
        for start in range(0, m, chunk):
            stop = min(start + chunk, m)
            if pairwise_many is not None:
                distances = pairwise_many(self._X, queries[start:stop], dims)
            else:
                distances = np.stack(
                    [
                        self.metric.pairwise(self._X, query, dims)
                        for query in queries[start:stop]
                    ]
                )
            for i in range(start, stop):
                row = distances[i - start]
                exclude = excludes[i]
                if exclude is not None:
                    row[exclude] = np.inf
                candidate = np.argpartition(row, k - 1)[:k]
                order = np.lexsort((candidate, row[candidate]))
                indices = candidate[order]
                results.append((indices, row[indices]))
                self._account_scan()
        self.stats.knn_queries += m
        return results

    def distance_components(self, query: np.ndarray) -> "np.ndarray | None":
        """Per-dimension distance contribution matrix for *query*.

        Shape ``(n, d)``; feed it to :meth:`knn_distance_sums` to answer
        many subspace queries for the same point without recomputing any
        per-dimension term. Returns ``None`` when the metric does not
        expose a component decomposition (custom metrics) — callers then
        fall back to plain :meth:`knn`.
        """
        components_fn = getattr(self.metric, "pairwise_components", None)
        if components_fn is None or not hasattr(self.metric, "reduce_components"):
            # Both halves of the optional pair are needed: a component
            # matrix is useless without the matching reduction.
            return None
        query, _ = self._validate(query, range(self.d))
        # Building the matrix is one full per-dimension pass over the
        # data — the same logical work as one full-space distance scan —
        # and is charged here, once; later component-reuse calls charge
        # only gathers (see knn_distance_sums).
        self._account_scan()
        return components_fn(self._X, query)

    def knn_distance_sums(
        self,
        query: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        exclude: int | None = None,
        components: "np.ndarray | None" = None,
        kernel: str = "exact",
        precision: str = "float64",
        components32: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sum of the ``k`` smallest distances in many subspaces at once.

        The OD kernel of the search engines — the dual of
        :meth:`knn_batch`: there the query axis is vectorised for one
        subspace, here one query is evaluated in ``m`` subspaces. Two
        kernels serve the call:

        ``kernel="exact"`` (default)
            One gather-and-reduce per subspace over the *components*
            matrix (see :meth:`distance_components`) when given, else
            one ``pairwise`` projection pass per subspace. Every value
            is bit-identical to
            ``float(knn(query, k, dims, exclude)[1].sum())``: the
            gathered reduction replays ``pairwise``'s arithmetic
            exactly, and the ``k`` smallest distances are summed in
            ascending order — the same value sequence the sorted kNN
            result produces (ties are equal values, so neighbour
            identity cannot change the sum).
        ``kernel="gemm"`` (or ``"auto"`` with a capable metric)
            The level-wide kernel: all ``m`` subspaces' component sums
            come from one BLAS product ``M @ C.T`` of the 0/1 mask
            matrix against the component matrix, followed by one
            axis-wise top-k partition. Per-mask Python looping, dimension
            gathers and reduction passes all disappear into the GEMM.
            BLAS accumulates in its own order, so values agree with the
            exact kernel to float tolerance (~1e-13 relative) rather
            than bit-for-bit — threshold decisions made on GEMM output
            are re-verified near the threshold by the OD layer. The
            product is blocked along the column (point) axis whenever it
            would exceed :data:`BATCH_CHUNK_BYTES`, with a streaming
            top-k merge that is value-identical to the unblocked kernel.

        *precision* selects the GEMM dtype (``"float64"`` default at
        this layer; resolved via
        :func:`repro.core.precision.resolve_precision`). Under
        ``"float32"`` the product runs on a pre-transposed ``(d, n)``
        float32 component copy — *components32*, built here via
        :func:`~repro.index.base.components32_from` when not supplied —
        and the OD layer widens its exact re-verification band to the
        rigorous float32 rounding bound, so answer *sets* stay identical
        to the float64 kernel. Data whose components overflow float32
        silently falls back to the float64 product.
        """
        prefixes = self.knn_distance_prefix(
            query,
            k,
            dims_list,
            exclude=exclude,
            components=components,
            kernel=kernel,
            precision=precision,
            components32=components32,
        )
        # Ascending sum over each sorted prefix row — the exact
        # accumulation order of the sorted kNN result.
        return prefixes.sum(axis=1)

    def knn_distance_prefix(
        self,
        query: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        exclude: int | None = None,
        components: "np.ndarray | None" = None,
        kernel: str = "exact",
        precision: str = "float64",
        components32: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sorted k-nearest *distances* per subspace, shape ``(m, k)``.

        The shard partial behind :meth:`knn_distance_sums` (which is
        exactly ``prefix.sum(axis=1)``) and the scatter-gather engine
        (:mod:`repro.core.shard`): because the ``k`` smallest of a union
        of per-shard sorted k-prefixes is the global k smallest, a
        coordinator can merge these rows across row shards and recover
        values identical to one full scan. Kernels and *precision*
        behave exactly as documented on :meth:`knn_distance_sums`; under
        the GEMM kernel the selection happens on component sums and the
        monotone L_p finalizer maps the prefix to distances afterwards,
        so the returned rows are ascending under either kernel.
        """
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        dims_arrays = validate_sums_request(
            dims_list, self._validate_dims, k, self.size, [exclude]
        )
        kernel = resolve_kernel(kernel, self.metric)
        count = len(dims_arrays)
        if count == 0:
            return np.empty((0, k))

        if kernel == "gemm":
            if components is None:
                components = self.metric.pairwise_components(self._X, query)
                self._account_scan()
            precision = resolve_precision(precision, kernel)
            if precision == "float32" and components32 is None:
                components32 = components32_from(components)
            if precision == "float32" and components32 is not None:
                M = mask_matrix(dims_arrays, self.d, dtype=np.float32)
                prefix = self._level_prefix(M, components32, k, exclude)
                prefix = prefix.astype(np.float64)
            else:
                M = mask_matrix(dims_arrays, self.d)
                prefix = self._level_prefix(M, components.T, k, exclude)
            out = self.metric.finalize_component_sums(prefix)
            self.stats.bump("gemm_flops", 2 * self.size * self.d * count)
            self.stats.bump("gemm_masks", count)
            self.stats.knn_queries += count
            return out

        out = np.empty((count, k))
        gathered_terms = 0
        for j, dims in enumerate(dims_arrays):
            if components is not None:
                distances = self.metric.reduce_components(components[:, dims])
                gathered_terms += self.size * dims.size
            else:
                distances = self.metric.pairwise(self._X, query, dims)
                self._account_scan()
            if exclude is not None:
                distances[exclude] = np.inf
            # In-place partition + sort of the k-prefix: `distances` is a
            # fresh array, and the sorted k smallest match the sorted kNN
            # result's value sequence exactly.
            distances.partition(k - 1)
            smallest = distances[:k]
            smallest.sort()
            out[j] = smallest
        if gathered_terms:
            # Component reuse redoes no per-dimension work — it re-reads
            # cached terms. Charging a full scan here (as the first
            # batched engine did) would overstate E1–E5 distance counts,
            # so gathers get their own counter.
            self.stats.bump("component_gathers", gathered_terms)
        self.stats.knn_queries += count
        return out

    def knn_distance_sums_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        excludes: "Sequence[int | None] | None" = None,
        components_list: "Sequence[np.ndarray | None] | None" = None,
        kernel: str = "auto",
        precision: str = "float64",
        components32_list: "Sequence[np.ndarray | None] | None" = None,
    ) -> np.ndarray:
        """OD sums for every ``(query row, subspace)`` pair, ``(q, m)``.

        The mask-major fusion point of the batched engine: when several
        concurrent searches request the same subspace list in one round,
        their component matrices are stacked into ``C_batch`` and a
        single ``M @ C_batch.T`` GEMM serves every search at once. Each
        query's block of the product is then reduced exactly like the
        single-query kernel, so ``out[i]`` equals
        ``knn_distance_sums(queries[i], ...)`` under the same kernel
        and *precision* (``"float64"`` default at this layer — the
        miner resolves ``"auto"`` and passes the tier down explicitly;
        under ``"float32"`` the stack concatenates the pre-transposed
        ``(d, n)`` float32 copies — *components32_list* when supplied —
        and any overflowing query drops the whole batch back to
        float64).

        The query axis is chunked so the ``(m, chunk·n)`` product stays
        under :data:`BATCH_CHUNK_BYTES` at the kernel's element size;
        chunking never changes results.
        """
        # Ascending sum over each sorted prefix row — the exact
        # accumulation order of the single-query kernel's _topk_sums.
        return self.knn_distance_prefix_batch(
            queries,
            k,
            dims_list,
            excludes=excludes,
            components_list=components_list,
            kernel=kernel,
            precision=precision,
            components32_list=components32_list,
        ).sum(axis=2)

    def knn_distance_prefix_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        excludes: "Sequence[int | None] | None" = None,
        components_list: "Sequence[np.ndarray | None] | None" = None,
        kernel: str = "auto",
        precision: str = "float64",
        components32_list: "Sequence[np.ndarray | None] | None" = None,
    ) -> np.ndarray:
        """Sorted k-nearest distances per ``(query row, subspace)`` pair,
        shape ``(q, m, k)``.

        The prefix-grade sibling of :meth:`knn_distance_sums_batch` (the
        sums ARE ``prefix.sum(axis=2)``) and the batch-fusion point where
        the streaming delta cache harvests kth-neighbour bounds for
        free: ``out[..., -1]`` is each pair's kth distance. Kernels,
        *precision* and query-axis chunking behave exactly as documented
        there; ``out[i]`` equals ``knn_distance_prefix(queries[i], ...)``
        under the same kernel.
        """
        queries = validate_query_matrix(queries, self.d)
        q_count = queries.shape[0]
        excludes = normalize_excludes(excludes, q_count, self.size)
        dims_arrays = validate_sums_request(
            dims_list, self._validate_dims, k, self.size, excludes
        )
        kernel = resolve_kernel(kernel, self.metric)
        m = len(dims_arrays)
        out = np.empty((q_count, m, k))
        if q_count == 0 or m == 0:
            return out
        components_list = (
            [None] * q_count if components_list is None else list(components_list)
        )

        if kernel == "exact":
            for i in range(q_count):
                out[i] = self.knn_distance_prefix(
                    queries[i],
                    k,
                    dims_arrays,
                    exclude=excludes[i],
                    components=components_list[i],
                    kernel="exact",
                )
            return out

        n = self.size
        comp32 = None
        if resolve_precision(precision, kernel) == "float32":
            comp32 = self._batch_components32(
                queries, components_list, components32_list
            )
        M = mask_matrix(
            dims_arrays, self.d, dtype=np.float32 if comp32 is not None else np.float64
        )
        itemsize = M.dtype.itemsize
        # Both per-chunk intermediates — the (m, chunk·n) product and the
        # stacked component matrix — must fit the budget at this dtype
        # (float32 fits twice the queries per chunk).
        chunk = max(1, BATCH_CHUNK_BYTES // (n * max(m, self.d) * itemsize))
        for start in range(0, q_count, chunk):
            stop = min(start + chunk, q_count)
            if comp32 is not None:
                parts = comp32[start:stop]
                right = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
            else:
                parts = []
                for i in range(start, stop):
                    C = components_list[i]
                    if C is None:
                        C = self.metric.pairwise_components(self._X, queries[i])
                        self._account_scan()
                    parts.append(C)
                C_batch = parts[0] if len(parts) == 1 else np.concatenate(parts)
                right = C_batch.T
            S = M @ right  # (m, chunk·n): every search's sums at once
            self.stats.record_peak("peak_intermediate_bytes", S.nbytes)
            for i in range(start, stop):
                block = S[:, (i - start) * n : (i - start + 1) * n]
                if excludes[i] is not None:
                    block[:, excludes[i]] = np.inf
                out[i] = self._topk_distances(block, k)
        self.stats.bump("gemm_flops", 2 * n * self.d * m * q_count)
        self.stats.bump("gemm_masks", m * q_count)
        self.stats.knn_queries += q_count * m
        return out

    def _batch_components32(
        self,
        queries: np.ndarray,
        components_list: "list[np.ndarray | None]",
        components32_list: "Sequence[np.ndarray | None] | None",
    ) -> "list[np.ndarray] | None":
        """Per-query ``(d, n)`` float32 component stacks for the batch
        GEMM, or ``None`` when any query's components overflow float32
        (the whole batch then falls back to the float64 product, keeping
        one dtype — and one fused GEMM — per chunk). Component matrices
        built here are written back into *components_list* so a
        fallback does not recompute them.
        """
        if components32_list is None:
            components32_list = [None] * len(components_list)
        out = []
        for i, c32 in enumerate(components32_list):
            if c32 is None:
                C = components_list[i]
                if C is None:
                    C = self.metric.pairwise_components(self._X, queries[i])
                    self._account_scan()
                    components_list[i] = C
                c32 = components32_from(C)
            if c32 is None:
                return None
            out.append(c32)
        return out

    def _level_prefix(
        self,
        M: np.ndarray,
        right: np.ndarray,
        k: int,
        exclude: int | None,
    ) -> np.ndarray:
        """Sorted k-prefix of every row of ``M @ right``, blocked along
        the column (point) axis.

        When the full ``(m, n)`` product fits :data:`BATCH_CHUNK_BYTES`
        it is computed in one GEMM; otherwise column blocks are produced
        one at a time and merged through a streaming top-k. Blocking is
        value-identical to the unblocked kernel: a dot product's
        reduction axis (``d``) is never split, so every element of every
        block equals the corresponding element of the full product, and
        the k smallest of a union of block k-prefixes is the global
        k smallest. Peak intermediate memory is recorded on
        ``stats.extra["peak_intermediate_bytes"]``.
        """
        m = M.shape[0]
        n = right.shape[1]
        itemsize = M.dtype.itemsize
        topk = resolve_topk_kernel(self.topk_kernel, M.dtype)
        block = max(k, BATCH_CHUNK_BYTES // max(1, m * itemsize))
        if block >= n:
            S = M @ right
            self.stats.record_peak("peak_intermediate_bytes", S.nbytes)
            if exclude is not None:
                S[:, exclude] = np.inf
            return topk_prefix(S, k, topk)
        self.stats.record_peak("peak_intermediate_bytes", m * block * itemsize)
        running = None
        for start in range(0, n, block):
            stop = min(start + block, n)
            S = M @ right[:, start:stop]
            if exclude is not None and start <= exclude < stop:
                S[:, exclude - start] = np.inf
            prefix = topk_prefix(S, min(k, stop - start), topk)
            if running is not None:
                merged = np.concatenate([running, prefix], axis=1)
                prefix = topk_prefix(merged, min(k, merged.shape[1]), "partition")
            running = prefix
        return running

    def _topk_distances(self, S: np.ndarray, k: int) -> np.ndarray:
        """Reduce an ``(m, n)`` component-sum block to sorted k-nearest
        distances, ``(m, k)``.

        Selects each row's sorted k-prefix with the configured top-k
        kernel (every kernel returns identical values — see
        :mod:`repro.index.topk`) and finalizes component sums into
        distances only for those ``m·k`` entries — the L_p finalizers
        are monotone, so selecting on component sums selects exactly the
        k nearest. ``S`` is owned by the caller and may be partitioned in
        place; row layout (contiguous vs strided view) cannot change the
        result, which is determined by values alone.
        """
        prefix = topk_prefix(S, k, resolve_topk_kernel(self.topk_kernel, S.dtype))
        if prefix.dtype != np.float64:
            prefix = prefix.astype(np.float64)
        return self.metric.finalize_component_sums(prefix)

    def _topk_sums(self, S: np.ndarray, k: int) -> np.ndarray:
        """Per-row OD sums of an ``(m, n)`` component-sum block: the
        sorted k-prefix distances summed ascending in float64."""
        return self._topk_distances(S, k).sum(axis=1)

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        query, dims = self._validate(query, dims)
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        hits = distances <= radius
        if exclude is not None:
            hits[exclude] = False
        self.stats.range_queries += 1
        return np.flatnonzero(hits)

    def insert(self, point: np.ndarray) -> int:
        """Append a point to the scanned matrix; returns its row id.

        Amortised O(d): the point is written into spare buffer capacity,
        and the buffer doubles when full, so ``extend``-heavy dynamic
        workloads pay O(n·d) total for n inserts instead of O(n²·d).
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise DataShapeError(
                f"point must be a length-{self.d} vector, got shape {point.shape}"
            )
        if self._n == self._buf.shape[0]:
            live = self._n - self._lo
            grown = np.empty((max(2 * live, live + 1), self.d))
            grown[:live] = self._buf[self._lo : self._n]
            self._buf = grown
            self._lo = 0
            self._n = live
        self._buf[self._n] = point
        self._n += 1
        self._X = self._buf[self._lo : self._n]
        return self.size - 1

    def expire(self, count: int) -> np.ndarray:
        """Drop the ``count`` oldest rows; returns a copy of them.

        O(1) per call (plus the O(count·d) copy handed back for delta
        cache invalidation): expiry just advances the window's head
        offset, and the dead prefix is reclaimed the next time growth
        compacts the live window to the buffer front. Row ids shift down
        by ``count`` — window coordinates, matching :attr:`data`.
        """
        count = int(count)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if count >= self.size:
            raise ConfigurationError(
                f"cannot expire {count} of {self.size} rows: "
                "the scanned matrix must stay non-empty"
            )
        removed = self._buf[self._lo : self._lo + count].copy()
        self._lo += count
        self._X = self._buf[self._lo : self._n]
        return removed

    # -- internals ------------------------------------------------------------
    def _validate(self, query: np.ndarray, dims: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        return query, self._validate_dims(dims)

    def _validate_dims(self, dims: Sequence[int]) -> np.ndarray:
        dims = np.asarray(dims, dtype=np.intp)
        if dims.size == 0:
            raise ConfigurationError("a query subspace needs at least one dimension")
        if dims.min() < 0 or dims.max() >= self.d:
            raise ConfigurationError(f"dims {dims.tolist()} out of range for d={self.d}")
        return dims

    def _account_scan(self) -> None:
        self.stats.distance_computations += self.size
        self.stats.node_accesses += -(-self.size // BLOCK_ROWS)  # ceil division

    def __repr__(self) -> str:
        return f"LinearScanIndex(n={self.size}, d={self.d}, metric={self.metric.name})"

"""Vectorised linear-scan kNN backend.

The reference backend: exact, simple, and — thanks to numpy — usually
the fastest option in pure Python for the dataset sizes of the 2004
demo. The tree backends are benched against it in experiment E8 on
logical-I/O metrics, where they win; on raw wall-time the scan wins
because its inner loop is C. Both facts are reported honestly in
EXPERIMENTS.md.

Cost accounting mirrors a sequential scan of a disk-resident file: one
node access per :data:`BLOCK_ROWS` rows touched plus one distance
computation per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import Metric, get_metric
from repro.index.stats import IndexStats

__all__ = ["LinearScanIndex", "BLOCK_ROWS"]

#: Rows per simulated disk block for node-access accounting.
BLOCK_ROWS = 64


class LinearScanIndex:
    """Exact kNN / range search by full vectorised scan.

    Parameters
    ----------
    X:
        Data matrix, shape ``(n, d)``; copied to float64 and kept
        contiguous for fast fancy-indexing on dimension subsets.
    metric:
        Metric instance or registry name (default ``"euclidean"``).
    """

    def __init__(self, X: np.ndarray, metric: "Metric | str" = "euclidean") -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        self._X = X
        self.metric = get_metric(metric)
        self.stats = IndexStats()

    # -- KnnBackend interface ------------------------------------------------
    @property
    def size(self) -> int:
        return self._X.shape[0]

    @property
    def d(self) -> int:
        return self._X.shape[1]

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the indexed matrix."""
        view = self._X.view()
        view.flags.writeable = False
        return view

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        query, dims = self._validate(query, dims)
        available = self.size - (1 if exclude is not None else 0)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )

        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        if exclude is not None:
            distances = distances.copy()
            distances[exclude] = np.inf

        # argpartition gives the k smallest in O(n); a final stable sort of
        # just k entries yields the deterministic (distance, index) order.
        candidate = np.argpartition(distances, k - 1)[:k]
        order = np.lexsort((candidate, distances[candidate]))
        indices = candidate[order]
        self.stats.knn_queries += 1
        return indices, distances[indices]

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        query, dims = self._validate(query, dims)
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        hits = distances <= radius
        if exclude is not None:
            hits[exclude] = False
        self.stats.range_queries += 1
        return np.flatnonzero(hits)

    def insert(self, point: np.ndarray) -> int:
        """Append a point to the scanned matrix; returns its row id."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise DataShapeError(
                f"point must be a length-{self.d} vector, got shape {point.shape}"
            )
        self._X = np.ascontiguousarray(np.vstack([self._X, point[None, :]]))
        return self.size - 1

    # -- internals ------------------------------------------------------------
    def _validate(self, query: np.ndarray, dims: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        dims = np.asarray(dims, dtype=np.intp)
        if dims.size == 0:
            raise ConfigurationError("a query subspace needs at least one dimension")
        if dims.min() < 0 or dims.max() >= self.d:
            raise ConfigurationError(f"dims {dims.tolist()} out of range for d={self.d}")
        return query, dims

    def _account_scan(self) -> None:
        self.stats.distance_computations += self.size
        self.stats.node_accesses += -(-self.size // BLOCK_ROWS)  # ceil division

    def __repr__(self) -> str:
        return f"LinearScanIndex(n={self.size}, d={self.d}, metric={self.metric.name})"

"""Vectorised linear-scan kNN backend.

The reference backend: exact, simple, and — thanks to numpy — usually
the fastest option in pure Python for the dataset sizes of the 2004
demo. The tree backends are benched against it in experiment E8 on
logical-I/O metrics, where they win; on raw wall-time the scan wins
because its inner loop is C. Both facts are reported honestly in
EXPERIMENTS.md.

Cost accounting mirrors a sequential scan of a disk-resident file: one
node access per :data:`BLOCK_ROWS` rows touched plus one distance
computation per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.metrics import Metric, get_metric
from repro.index.base import normalize_excludes, validate_query_matrix
from repro.index.stats import IndexStats

__all__ = ["LinearScanIndex", "BLOCK_ROWS"]

#: Rows per simulated disk block for node-access accounting.
BLOCK_ROWS = 64

#: Memory ceiling for one batched distance intermediate; the multi-query
#: kernels chunk their query axis so the (m_chunk, n, |dims|) temporary
#: stays under this, keeping huge batches from materialising O(m * n)
#: float64 blocks at once. Chunking never changes results — each query's
#: arithmetic is independent.
BATCH_CHUNK_BYTES = 64 * 2**20


class LinearScanIndex:
    """Exact kNN / range search by full vectorised scan.

    Parameters
    ----------
    X:
        Data matrix, shape ``(n, d)``; copied to float64 and kept
        contiguous for fast fancy-indexing on dimension subsets.
    metric:
        Metric instance or registry name (default ``"euclidean"``).
    """

    def __init__(self, X: np.ndarray, metric: "Metric | str" = "euclidean") -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        self._X = X
        self.metric = get_metric(metric)
        self.stats = IndexStats()

    # -- KnnBackend interface ------------------------------------------------
    @property
    def size(self) -> int:
        return self._X.shape[0]

    @property
    def d(self) -> int:
        return self._X.shape[1]

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the indexed matrix."""
        view = self._X.view()
        view.flags.writeable = False
        return view

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        query, dims = self._validate(query, dims)
        available = self.size - (1 if exclude is not None else 0)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )

        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        if exclude is not None:
            distances = distances.copy()
            distances[exclude] = np.inf

        # argpartition gives the k smallest in O(n); a final stable sort of
        # just k entries yields the deterministic (distance, index) order.
        candidate = np.argpartition(distances, k - 1)[:k]
        order = np.lexsort((candidate, distances[candidate]))
        indices = candidate[order]
        self.stats.knn_queries += 1
        return indices, distances[indices]

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims: Sequence[int],
        excludes: "Sequence[int | None] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Vectorised multi-query kNN: one broadcasted distance pass.

        The whole ``(m, n)`` distance matrix is computed in a single
        numpy kernel (via the metric's ``pairwise_many`` when available),
        then each row is reduced with the same argpartition + stable
        lexsort as :meth:`knn`, so results — including tie order — are
        identical to ``m`` sequential calls while the dominant distance
        work runs ``m``-wide.
        """
        queries = validate_query_matrix(queries, self.d)
        m = queries.shape[0]
        excludes = normalize_excludes(excludes, m, self.size)
        dims = self._validate_dims(dims)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        for exclude in excludes:
            available = self.size - (1 if exclude is not None else 0)
            if k > available:
                raise ConfigurationError(
                    f"k={k} neighbours requested but only {available} candidate rows exist"
                )
        if m == 0:
            return []

        pairwise_many = getattr(self.metric, "pairwise_many", None)
        chunk = max(1, BATCH_CHUNK_BYTES // (self.size * max(1, dims.size) * 8))
        results = []
        for start in range(0, m, chunk):
            stop = min(start + chunk, m)
            if pairwise_many is not None:
                distances = pairwise_many(self._X, queries[start:stop], dims)
            else:
                distances = np.stack(
                    [
                        self.metric.pairwise(self._X, query, dims)
                        for query in queries[start:stop]
                    ]
                )
            for i in range(start, stop):
                row = distances[i - start]
                exclude = excludes[i]
                if exclude is not None:
                    row[exclude] = np.inf
                candidate = np.argpartition(row, k - 1)[:k]
                order = np.lexsort((candidate, row[candidate]))
                indices = candidate[order]
                results.append((indices, row[indices]))
                self._account_scan()
        self.stats.knn_queries += m
        return results

    def distance_components(self, query: np.ndarray) -> "np.ndarray | None":
        """Per-dimension distance contribution matrix for *query*.

        Shape ``(n, d)``; feed slices of it to :meth:`knn_masks` to
        answer many subspace queries for the same point without
        recomputing any per-dimension term. Returns ``None`` when the
        metric does not expose a component decomposition (custom
        metrics) — callers then fall back to plain :meth:`knn`.
        """
        components_fn = getattr(self.metric, "pairwise_components", None)
        if components_fn is None or not hasattr(self.metric, "reduce_components"):
            # Both halves of the optional pair are needed: a component
            # matrix is useless without the matching reduction.
            return None
        query, _ = self._validate(query, range(self.d))
        return components_fn(self._X, query)

    def knn_distance_sums(
        self,
        query: np.ndarray,
        k: int,
        dims_list: "Sequence[Sequence[int]]",
        exclude: int | None = None,
        components: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sum of the ``k`` smallest distances in many subspaces at once.

        The OD kernel of the batched engine — the dual of
        :meth:`knn_batch`: there the query axis is vectorised for one
        subspace, here one query is evaluated in ``K`` subspaces. With a
        precomputed *components* matrix (see
        :meth:`distance_components`) each subspace's distances come from
        a gather-and-reduce over cached per-dimension terms instead of a
        fresh projection pass; without one, each subspace falls back to
        the metric's ``pairwise``.

        Every returned value is bit-identical to
        ``float(knn(query, k, dims, exclude)[1].sum())``: the gathered
        reduction replays ``pairwise``'s arithmetic exactly, and the
        ``k`` smallest distances are summed in ascending order — the
        same value sequence the sorted kNN result produces (ties are
        equal values, so neighbour identity cannot change the sum).
        """
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        # Ready-made intp arrays are trusted (the batch engine validates
        # and caches them once per mask); anything else is checked here.
        dims_arrays = [
            dims
            if isinstance(dims, np.ndarray) and dims.dtype == np.intp
            else self._validate_dims(dims)
            for dims in dims_list
        ]
        available = self.size - (1 if exclude is not None else 0)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )

        sums = np.empty(len(dims_arrays))
        for j, dims in enumerate(dims_arrays):
            if components is not None:
                distances = self.metric.reduce_components(components[:, dims])
            else:
                distances = self.metric.pairwise(self._X, query, dims)
            if exclude is not None:
                distances[exclude] = np.inf
            # In-place partition + sort of the k-prefix: `distances` is a
            # fresh array, and summing the k smallest ascending matches
            # the sorted kNN result's accumulation exactly.
            distances.partition(k - 1)
            smallest = distances[:k]
            smallest.sort()
            sums[j] = smallest.sum()
        count = len(dims_arrays)
        self.stats.distance_computations += count * self.size
        self.stats.node_accesses += count * (-(-self.size // BLOCK_ROWS))
        self.stats.knn_queries += count
        return sums

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        query, dims = self._validate(query, dims)
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        distances = self.metric.pairwise(self._X, query, dims)
        self._account_scan()
        hits = distances <= radius
        if exclude is not None:
            hits[exclude] = False
        self.stats.range_queries += 1
        return np.flatnonzero(hits)

    def insert(self, point: np.ndarray) -> int:
        """Append a point to the scanned matrix; returns its row id."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise DataShapeError(
                f"point must be a length-{self.d} vector, got shape {point.shape}"
            )
        self._X = np.ascontiguousarray(np.vstack([self._X, point[None, :]]))
        return self.size - 1

    # -- internals ------------------------------------------------------------
    def _validate(self, query: np.ndarray, dims: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.d,):
            raise DataShapeError(
                f"query must be a length-{self.d} vector, got shape {query.shape}"
            )
        return query, self._validate_dims(dims)

    def _validate_dims(self, dims: Sequence[int]) -> np.ndarray:
        dims = np.asarray(dims, dtype=np.intp)
        if dims.size == 0:
            raise ConfigurationError("a query subspace needs at least one dimension")
        if dims.min() < 0 or dims.max() >= self.d:
            raise ConfigurationError(f"dims {dims.tolist()} out of range for d={self.d}")
        return dims

    def _account_scan(self) -> None:
        self.stats.distance_computations += self.size
        self.stats.node_accesses += -(-self.size // BLOCK_ROWS)  # ceil division

    def __repr__(self) -> str:
        return f"LinearScanIndex(n={self.size}, d={self.d}, metric={self.metric.name})"

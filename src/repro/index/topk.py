"""Row-wise top-k selection kernels for the level-wide OD GEMM.

After the ``M @ C.T`` product, every row of the ``(m, n)`` component-sum
block must be reduced to its ``k`` smallest values in ascending order.
At realistic level widths this selection — not the BLAS product — is
where the kernel's time goes, so it sits behind its own knob with three
interchangeable implementations that all return the *same values*
(``np.sort(S, axis=1)[:, :k]``; ties are equal values, so any of them
feeds the same OD sum):

``"partition"``
    numpy introselect + sort of the k-prefix — the PR 2 reference
    reduction, and the reference the float64 GEMM kernel keeps.
``"filter"``
    A two-stage min-filter: the row is viewed as ``G`` interleaved
    chunks of ``B`` columns, one SIMD pass takes each chunk's minimum,
    and only the ``k`` chunks with the smallest minima (plus the
    ungrouped tail) are gathered and partitioned. Sound because a chunk
    whose minimum exceeds the k-th smallest chunk minimum ``tau``
    cannot hold a top-k element: the ``k`` chunks at or below ``tau``
    each already contain an element strictly smaller than anything in
    it. The first stage is bandwidth-bound, which is exactly where a
    float32 block is twice as cheap as float64 — this is the default
    selection of the float32 GEMM tier.
``"numba"``
    A compiled per-row selection (`@njit` insertion top-k), imported
    lazily. When numba is absent the knob silently falls back to the
    numpy kernels — the knob is a performance hint and every kernel is
    value-identical, so there is nothing to fail loudly about;
    :func:`resolve_topk_kernel` reports what actually runs.

``"auto"`` resolves to ``"numba"`` when importable, else to the
per-dtype defaults (``"filter"`` for float32 blocks, ``"partition"``
for float64 — keeping the reference kernel's reduction byte-stable).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = ["TOPK_KERNELS", "resolve_topk_kernel", "topk_prefix"]

#: Valid values of the ``topk_kernel`` knob.
TOPK_KERNELS = ("auto", "partition", "filter", "numba")

#: Chunk-count bounds for the min-filter first stage: enough chunks that
#: ``k`` of them stay a small candidate set, few enough that the
#: per-chunk bookkeeping (argpartition + gather) stays negligible.
_FILTER_MIN_CHUNKS = 64
_FILTER_MAX_CHUNKS = 256

# Lazily-resolved compiled kernel: None = not probed yet, False = numba
# unavailable, else the jitted function.
_NUMBA_TOPK: "object | None" = None


def _load_numba_topk():
    """Compile the numba selection on first use; ``False`` when absent."""
    global _NUMBA_TOPK
    if _NUMBA_TOPK is not None:
        return _NUMBA_TOPK
    try:
        from numba import njit
    except ImportError:
        _NUMBA_TOPK = False
        return _NUMBA_TOPK

    @njit(cache=True)
    def _topk_rows(S, out):  # pragma: no cover - compiled
        m, n = S.shape
        k = out.shape[1]
        for i in range(m):
            count = 0
            for j in range(n):
                value = S[i, j]
                if count < k:
                    # Insertion into the growing sorted prefix.
                    pos = count
                    while pos > 0 and out[i, pos - 1] > value:
                        out[i, pos] = out[i, pos - 1]
                        pos -= 1
                    out[i, pos] = value
                    count += 1
                elif value < out[i, k - 1]:
                    pos = k - 1
                    while pos > 0 and out[i, pos - 1] > value:
                        out[i, pos] = out[i, pos - 1]
                        pos -= 1
                    out[i, pos] = value
        return out

    _NUMBA_TOPK = _topk_rows
    return _NUMBA_TOPK


def numba_available() -> bool:
    """Whether the compiled selection kernel can actually run."""
    return _load_numba_topk() is not False


def resolve_topk_kernel(topk_kernel: str, dtype: "np.dtype | None" = None) -> str:
    """Resolve the knob to the kernel that will actually run.

    ``"auto"`` prefers the compiled kernel when numba is importable and
    otherwise picks the per-dtype numpy default; an explicit
    ``"numba"`` without numba falls back the same way (silently — the
    kernels are value-identical, see module docstring).
    """
    if topk_kernel not in TOPK_KERNELS:
        raise ConfigurationError(
            f"topk_kernel must be one of {TOPK_KERNELS}, got {topk_kernel!r}"
        )
    if topk_kernel in ("auto", "numba"):
        if numba_available():
            return "numba"
        return "filter" if dtype == np.float32 else "partition"
    return topk_kernel


def _partition_prefix(S: np.ndarray, k: int) -> np.ndarray:
    """In-place introselect + sorted k-prefix (the reference reduction)."""
    S.partition(k - 1, axis=1)
    prefix = S[:, :k]
    prefix.sort(axis=1)
    return prefix


def _filter_prefix(S: np.ndarray, k: int) -> np.ndarray:
    """Two-stage min-filter selection (see module docstring).

    Chunk ``g`` is the interleaved column set ``{g, g+G, g+2G, ...}``,
    so the chunk-min pass reduces over the *leading* axis of a strided
    ``(m, B, G)`` view and vectorises across the contiguous ``G``-wide
    inner axis. Correctness of the filter: if chunk ``X`` has
    ``min(X) > tau`` (the k-th smallest chunk min) and ``e ∈ X``, then
    the ``k`` chunks with minima ``<= tau`` each contain an element
    ``<= tau < e`` — that is ``k`` elements strictly smaller than
    ``e``, so ``e`` cannot be among the ``k`` smallest. The candidate
    set (the ``k`` best chunks plus the ungrouped tail) therefore
    contains the exact multiset of the ``k`` smallest row values.
    """
    m, n = S.shape
    G = max(_FILTER_MIN_CHUNKS, min(_FILTER_MAX_CHUNKS, n // 16))
    B = n // G
    if B < 4 or G <= 2 * k:
        # Too small for two stages to pay off (or to be valid): the
        # plain partition is optimal at these widths.
        return _partition_prefix(S, k)
    body = G * B
    view = np.lib.stride_tricks.as_strided(
        S,
        shape=(m, B, G),
        strides=(S.strides[0], G * S.strides[1], S.strides[1]),
    )
    mins = view.min(axis=1)
    chunk_ids = np.argpartition(mins, k - 1, axis=1)[:, :k]
    columns = (
        chunk_ids[:, None, :] + G * np.arange(B)[None, :, None]
    ).reshape(m, k * B)
    candidates = np.take_along_axis(S, columns, axis=1)
    if body < n:
        candidates = np.concatenate([candidates, S[:, body:]], axis=1)
    return _partition_prefix(candidates, k)


def topk_prefix(S: np.ndarray, k: int, topk_kernel: str = "partition") -> np.ndarray:
    """Sorted ascending k-prefix of every row of ``S``, shape ``(m, k)``.

    ``S`` is owned by the caller and may be mutated (the partition
    kernel selects in place). *topk_kernel* must already be resolved
    (:func:`resolve_topk_kernel`); every kernel returns the exact value
    sequence ``np.sort(S, axis=1)[:, :k]``.
    """
    if topk_kernel == "filter":
        return _filter_prefix(S, k)
    if topk_kernel == "numba":
        compiled = _load_numba_topk()
        if compiled is not False:
            out = np.empty((S.shape[0], k), dtype=S.dtype)
            return compiled(np.ascontiguousarray(S), out)
        return _partition_prefix(S, k)
    return _partition_prefix(S, k)

"""Tree nodes shared by the R*-tree and the X-tree.

One node class serves both leaf and directory roles:

* a **leaf** (``level == 0``) stores row indices into the tree's data
  matrix;
* a **directory node** (``level > 0``) stores child nodes.

X-tree extensions live on the same class: ``blocks`` is the supernode
width (a supernode occupies ``blocks`` consecutive "disk blocks", i.e.
its capacity is ``blocks * max_entries``), and ``split_dims`` records
the split history — the set of dimensions along which splits created
this node's region, used for introspection and tested against the
overlap-minimal split scan.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.exceptions import IndexError_
from repro.index.mbr import MBR

__all__ = ["Node"]


class Node:
    """A leaf or directory node of an R*-/X-tree.

    Attributes
    ----------
    level:
        Height above the leaves (0 = leaf).
    rows:
        Row indices stored here (leaves only).
    children:
        Child nodes (directory nodes only).
    mbr:
        Bounding box of everything below this node; ``None`` while empty.
    blocks:
        Supernode width; 1 for a normal node.
    split_dims:
        Dimensions used by historical splits of this subtree's region.
    """

    __slots__ = ("level", "rows", "children", "mbr", "blocks", "split_dims")

    def __init__(self, level: int) -> None:
        self.level = level
        self.rows: list[int] = []
        self.children: list["Node"] = []
        self.mbr: Optional[MBR] = None
        self.blocks = 1
        self.split_dims: frozenset[int] = frozenset()

    # -- structure ----------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def is_supernode(self) -> bool:
        return self.blocks > 1

    def entry_count(self) -> int:
        """Number of stored entries (rows for leaves, children otherwise)."""
        return len(self.rows) if self.is_leaf else len(self.children)

    def capacity(self, max_entries: int) -> int:
        """Current capacity given the base block capacity."""
        return self.blocks * max_entries

    def overflows(self, max_entries: int) -> bool:
        return self.entry_count() > self.capacity(max_entries)

    # -- geometry -------------------------------------------------------------
    def recompute_mbr(self, X: np.ndarray) -> None:
        """Tighten this node's MBR from its entries (non-recursive)."""
        if self.is_leaf:
            if not self.rows:
                self.mbr = None
                return
            points = X[self.rows]
            self.mbr = MBR(points.min(axis=0), points.max(axis=0))
        else:
            if not self.children:
                self.mbr = None
                return
            self.mbr = MBR.union_of(
                child.mbr for child in self.children if child.mbr is not None
            )

    def child_mbrs(self) -> list[MBR]:
        """MBRs of the children (directory nodes only)."""
        boxes = []
        for child in self.children:
            if child.mbr is None:
                raise IndexError_("directory node holds a child with no MBR")
            boxes.append(child.mbr)
        return boxes

    # -- traversal helpers -------------------------------------------------------
    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and every descendant, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def subtree_rows(self) -> list[int]:
        """Every data row stored beneath this node."""
        rows: list[int] = []
        for node in self.iter_subtree():
            if node.is_leaf:
                rows.extend(node.rows)
        return rows

    def height(self) -> int:
        """Height of the subtree rooted here (leaf = 1)."""
        return self.level + 1

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else ("supernode" if self.is_supernode else "dir")
        return f"Node({kind}, level={self.level}, entries={self.entry_count()}, blocks={self.blocks})"

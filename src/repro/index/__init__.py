"""Indexing substrate: subspace-capable kNN backends.

Three interchangeable backends implement :class:`~repro.index.base.KnnBackend`:

* :class:`LinearScanIndex` — exact vectorised brute force (default);
* :class:`RStarTree` — the classic R*-tree;
* :class:`XTree` — the paper's high-dimensional index [2], an R*-tree
  with supernodes and overlap-aware directory splits.

All three answer kNN and range queries over an arbitrary *subspace*
(dimension subset) of the indexed data, which is exactly the operation
HOS-Miner's outlying-degree evaluation needs.
"""

from repro.index.base import KnnBackend
from repro.index.heap import KnnHeap
from repro.index.linear import LinearScanIndex
from repro.index.mbr import MBR
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.index.stats import IndexStats
from repro.index.vafile import VAFile
from repro.index.xtree import XTree

__all__ = [
    "KnnBackend",
    "KnnHeap",
    "LinearScanIndex",
    "MBR",
    "Node",
    "RStarTree",
    "IndexStats",
    "VAFile",
    "XTree",
    "make_backend",
]


def make_backend(name: str, X, metric="euclidean", **kwargs) -> KnnBackend:
    """Build a kNN backend by registry name.

    ``name`` is one of ``"linear"``, ``"rstar"``, ``"xtree"``,
    ``"vafile"``; extra keyword arguments are forwarded to the backend
    constructor.
    """
    from repro.core.exceptions import ConfigurationError

    registry = {
        "linear": LinearScanIndex,
        "rstar": RStarTree,
        "xtree": XTree,
        "vafile": VAFile,
    }
    key = name.strip().lower()
    if key not in registry:
        raise ConfigurationError(
            f"unknown index backend {name!r}; known: {', '.join(sorted(registry))}"
        )
    return registry[key](X, metric=metric, **kwargs)

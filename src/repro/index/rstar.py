"""R*-tree: the base spatial index beneath the X-tree.

Implements the full Beckmann et al. (SIGMOD'90) insertion algorithm:

* **ChooseSubtree** — minimum overlap enlargement at the level above the
  leaves, minimum area enlargement elsewhere (both vectorised);
* **Forced reinsert** — on first overflow per level per insertion, the
  30% of entries farthest from the node centre are removed and
  re-inserted ("close reinsert" order);
* **Topological split** — axis chosen by minimum margin sum over all
  distributions, distribution chosen by minimum overlap volume with
  ties broken by minimum total area.

The tree is insert-only: HOS-Miner indexes a static dataset once and
then issues many subspace kNN queries, so deletion is out of scope (the
X-tree paper's experiments are likewise build-then-query). An optional
STR bulk load (`bulk_load="str"`) packs the tree bottom-up when build
time, not split behaviour, is what matters.

Subspace queries are delegated to :mod:`repro.index.knn`, which performs
best-first search with the metric's projected MINDIST.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, DataShapeError, IndexError_
from repro.core.metrics import Metric, get_metric
from repro.index.base import knn_batch_fallback
from repro.index.knn import tree_knn, tree_range_query
from repro.index.mbr import MBR
from repro.index.node import Node
from repro.index.stats import IndexStats

__all__ = ["RStarTree"]


class RStarTree:
    """In-memory R*-tree over a static data matrix.

    Parameters
    ----------
    X:
        Data matrix of shape ``(n, d)``.
    metric:
        Metric instance or name used by queries (default ``euclidean``).
    max_entries:
        Block capacity M (entries per node). Minimum node fill is
        ``min_fill * M``.
    min_fill:
        Fraction of M that every split group must retain (R* uses 0.4).
    reinsert_fraction:
        Fraction of M force-reinserted on first overflow (R* uses 0.3);
        0 disables forced reinsert.
    bulk_load:
        ``None`` (default) inserts row by row, exercising the split
        machinery; ``"str"`` packs with Sort-Tile-Recursive.
    """

    def __init__(
        self,
        X: np.ndarray,
        metric: "Metric | str" = "euclidean",
        max_entries: int = 32,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        bulk_load: str | None = None,
    ) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        if max_entries < 4:
            raise ConfigurationError(f"max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise ConfigurationError(f"min_fill must be in (0, 0.5], got {min_fill}")
        if not 0.0 <= reinsert_fraction < 0.5:
            raise ConfigurationError(
                f"reinsert_fraction must be in [0, 0.5), got {reinsert_fraction}"
            )
        self._X = X
        self.metric = get_metric(metric)
        self.max_entries = max_entries
        self.min_fill = min_fill
        self.reinsert_fraction = reinsert_fraction
        self.stats = IndexStats()
        self._root = Node(level=0)
        self._reinserted_levels: set[int] = set()

        if bulk_load is None:
            for row in range(X.shape[0]):
                self._insert_row(row)
        elif bulk_load == "str":
            self._bulk_load_str()
        else:
            raise ConfigurationError(f"unknown bulk_load strategy {bulk_load!r}")

    # ------------------------------------------------------------------
    # KnnBackend interface
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._X.shape[0]

    @property
    def d(self) -> int:
        return self._X.shape[1]

    @property
    def data(self) -> np.ndarray:
        view = self._X.view()
        view.flags.writeable = False
        return view

    @property
    def root(self) -> Node:
        """Root node — exposed for tests and structure inspection."""
        return self._root

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return tree_knn(self, query, k, dims, exclude)

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        return tree_range_query(self, query, radius, dims, exclude)

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims: Sequence[int],
        excludes: "Sequence[int | None] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-query loop fallback: best-first tree descent is inherently
        query-local, so there is nothing to vectorise across the batch.
        (Inherited unchanged by :class:`~repro.index.xtree.XTree`.)"""
        return knn_batch_fallback(self, queries, k, dims, excludes)

    def insert(self, point: np.ndarray) -> int:
        """Insert one new point through the full R*/X-tree machinery
        (splits, supernodes, ...); returns its row id."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise DataShapeError(
                f"point must be a length-{self.d} vector, got shape {point.shape}"
            )
        self._X = np.ascontiguousarray(np.vstack([self._X, point[None, :]]))
        row = self.size - 1
        self._insert_row(row)
        return row

    # ------------------------------------------------------------------
    # Structure inspection
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self._root.level + 1

    def node_count(self) -> int:
        return sum(1 for _ in self._root.iter_subtree())

    def leaf_count(self) -> int:
        return sum(1 for node in self._root.iter_subtree() if node.is_leaf)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexError_` on breach.

        Verified: every row appears exactly once; every node's MBR equals
        the tight bound of its contents; levels decrease by one per step;
        no node exceeds its capacity; non-root nodes respect minimum fill
        (modulo supernodes, which follow their own rule).
        """
        seen: list[int] = []
        for node in self._root.iter_subtree():
            if node.overflows(self.max_entries):
                raise IndexError_(f"{node!r} exceeds capacity")
            if node.is_leaf:
                seen.extend(node.rows)
                if node.level != 0:
                    raise IndexError_("leaf node with non-zero level")
            else:
                for child in node.children:
                    if child.level != node.level - 1:
                        raise IndexError_("child level mismatch")
                    if child.mbr is None or node.mbr is None:
                        raise IndexError_("missing MBR")
                    if not node.mbr.contains_box(child.mbr):
                        raise IndexError_("parent MBR does not contain child MBR")
            expected = node.mbr
            node.recompute_mbr(self._X)
            if (expected is None) != (node.mbr is None) or (
                expected is not None and expected != node.mbr
            ):
                raise IndexError_(f"stale MBR on {node!r}")
        if sorted(seen) != list(range(self.size)):
            raise IndexError_("stored rows do not cover the dataset exactly once")

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _insert_row(self, row: int) -> None:
        self._reinserted_levels = set()
        self._insert_entry(MBR.from_point(self._X[row]), row, target_level=0)

    def _insert_entry(self, box: MBR, payload: "int | Node", target_level: int) -> None:
        """Insert a data row (``target_level == 0``) or an orphaned subtree
        (``target_level == subtree.level + 1``) and resolve overflows."""
        path = self._choose_path(box, target_level)
        target = path[-1]
        if isinstance(payload, Node):
            target.children.append(payload)
        else:
            target.rows.append(payload)
        for node in path:
            if node.mbr is None:
                node.mbr = box.copy()
            else:
                node.mbr.extend_box(box)

        index = len(path) - 1
        while index >= 0:
            node = path[index]
            if node.overflows(self.max_entries):
                self._overflow_treatment(path, index)
            index -= 1

    def _choose_path(self, box: MBR, target_level: int) -> list[Node]:
        node = self._root
        path = [node]
        while node.level > target_level:
            node = self._choose_subtree(node, box)
            path.append(node)
        if node.level != target_level:
            raise IndexError_(
                f"cannot reach level {target_level} from a height-{self.height()} tree"
            )
        return path

    def _choose_subtree(self, node: Node, box: MBR) -> Node:
        children = node.children
        lowers = np.array([child.mbr.lower for child in children])
        uppers = np.array([child.mbr.upper for child in children])
        new_lowers = np.minimum(lowers, box.lower)
        new_uppers = np.maximum(uppers, box.upper)
        areas = np.prod(uppers - lowers, axis=1)
        enlargements = np.prod(new_uppers - new_lowers, axis=1) - areas

        if node.level == 1:
            # Children are leaves: minimise overlap enlargement (R* rule).
            old_overlap = _pairwise_overlap_sums(lowers, uppers, lowers, uppers)
            new_overlap = _pairwise_overlap_sums(new_lowers, new_uppers, lowers, uppers)
            # Remove each box's overlap with itself (old: its own area;
            # new: overlap of grown box with its old self = old area).
            overlap_growth = (new_overlap - areas) - (old_overlap - areas)
            keys = list(zip(overlap_growth, enlargements, areas))
        else:
            keys = list(zip(enlargements, areas))
        best = min(range(len(children)), key=lambda i: keys[i])
        return children[best]

    # ------------------------------------------------------------------
    # Overflow treatment
    # ------------------------------------------------------------------
    def _overflow_treatment(self, path: list[Node], index: int) -> None:
        node = path[index]
        can_reinsert = (
            self.reinsert_fraction > 0.0
            and node is not self._root
            and node.level not in self._reinserted_levels
        )
        if can_reinsert:
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(path, index)
        else:
            self._split_node(path, index)

    def _forced_reinsert(self, path: list[Node], index: int) -> None:
        node = path[index]
        boxes = self._entry_boxes(node)
        center = node.mbr.center()
        centers = np.array([box.center() for box in boxes])
        distances = np.linalg.norm(centers - center, axis=1)
        count = max(1, round(self.reinsert_fraction * node.capacity(self.max_entries)))
        # Farthest entries leave; they come back closest-first ("close reinsert").
        order = np.argsort(-distances, kind="stable")
        leaving = sorted(order[:count].tolist(), key=lambda i: distances[i])

        leaving_set = set(leaving)
        if node.is_leaf:
            removed: list[tuple[MBR, int | Node]] = [(boxes[i], node.rows[i]) for i in leaving]
            node.rows = [row for i, row in enumerate(node.rows) if i not in leaving_set]
        else:
            removed = [(boxes[i], node.children[i]) for i in leaving]
            node.children = [
                child for i, child in enumerate(node.children) if i not in leaving_set
            ]
        for ancestor in reversed(path[: index + 1]):
            ancestor.recompute_mbr(self._X)
        for box, payload in removed:
            self._insert_entry(box, payload, target_level=node.level)

    def _split_node(self, path: list[Node], index: int) -> None:
        node = path[index]
        boxes = self._entry_boxes(node)
        group_a, group_b, axis = self._topological_split(boxes)
        self._apply_split(path, index, group_a, group_b, axis)

    def _apply_split(
        self,
        path: list[Node],
        index: int,
        group_a: list[int],
        group_b: list[int],
        axis: int,
    ) -> None:
        """Materialise a computed split and push the new sibling upward."""
        node = path[index]
        sibling = Node(level=node.level)
        history = node.split_dims | {axis}
        node.split_dims = history
        sibling.split_dims = history
        # A split always resets the node to a single block: both halves
        # fit in one block again (X-tree semantics; harmless for R*).
        node.blocks = 1
        sibling.blocks = 1

        if node.is_leaf:
            rows = node.rows
            node.rows = [rows[i] for i in group_a]
            sibling.rows = [rows[i] for i in group_b]
        else:
            children = node.children
            node.children = [children[i] for i in group_a]
            sibling.children = [children[i] for i in group_b]
        node.recompute_mbr(self._X)
        sibling.recompute_mbr(self._X)

        if node is self._root:
            new_root = Node(level=node.level + 1)
            new_root.children = [node, sibling]
            new_root.recompute_mbr(self._X)
            new_root.split_dims = history
            self._root = new_root
        else:
            parent = path[index - 1]
            parent.children.append(sibling)
            parent.recompute_mbr(self._X)

    # ------------------------------------------------------------------
    # R* topological split
    # ------------------------------------------------------------------
    def _topological_split(self, boxes: list[MBR]) -> tuple[list[int], list[int], int]:
        """Beckmann et al. split: returns (group_a, group_b, axis)."""
        lowers = np.array([box.lower for box in boxes])
        uppers = np.array([box.upper for box in boxes])
        total = len(boxes)
        min_entries = max(1, int(math.ceil(self.min_fill * total)))
        if total < 2 * min_entries:
            min_entries = total // 2
        axis = self._choose_split_axis(lowers, uppers, min_entries)
        return self._choose_split_index(lowers, uppers, axis, min_entries)

    def _choose_split_axis(
        self, lowers: np.ndarray, uppers: np.ndarray, min_entries: int
    ) -> int:
        d = lowers.shape[1]
        best_axis, best_margin = 0, math.inf
        for axis in range(d):
            margin_total = 0.0
            for order in _split_orders(lowers, uppers, axis):
                prefix_margin, suffix_margin, _, _ = _distribution_geometry(
                    lowers[order], uppers[order]
                )
                for split in _valid_splits(len(order), min_entries):
                    margin_total += prefix_margin[split - 1] + suffix_margin[split]
            if margin_total < best_margin:
                best_axis, best_margin = axis, margin_total
        return best_axis

    def _choose_split_index(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        axis: int,
        min_entries: int,
    ) -> tuple[list[int], list[int], int]:
        best: tuple[float, float] | None = None
        best_groups: tuple[list[int], list[int]] | None = None
        for order in _split_orders(lowers, uppers, axis):
            _, _, (pl, pu), (sl, su) = _distribution_geometry(lowers[order], uppers[order])
            for split in _valid_splits(len(order), min_entries):
                overlap = _box_overlap_volume(
                    pl[split - 1], pu[split - 1], sl[split], su[split]
                )
                area = float(
                    np.prod(pu[split - 1] - pl[split - 1])
                    + np.prod(su[split] - sl[split])
                )
                key = (overlap, area)
                if best is None or key < best:
                    best = key
                    best_groups = (
                        order[:split].tolist(),
                        order[split:].tolist(),
                    )
        if best_groups is None:
            raise IndexError_("split found no valid distribution")
        return best_groups[0], best_groups[1], axis

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _bulk_load_str(self) -> None:
        rows = np.arange(self.size)
        leaves = self._str_pack_rows(rows, axis=0)
        level = 0
        nodes = leaves
        while len(nodes) > 1:
            level += 1
            nodes = self._str_pack_nodes(nodes, level)
        self._root = nodes[0]

    def _str_pack_rows(self, rows: np.ndarray, axis: int) -> list[Node]:
        capacity = self.max_entries
        if rows.size <= capacity:
            leaf = Node(level=0)
            leaf.rows = rows.tolist()
            leaf.recompute_mbr(self._X)
            return [leaf]
        pages = math.ceil(rows.size / capacity)
        slabs = max(1, math.ceil(pages ** (1.0 / self.d)))
        per_slab = math.ceil(rows.size / slabs)
        order = rows[np.argsort(self._X[rows, axis % self.d], kind="stable")]
        leaves: list[Node] = []
        for start in range(0, order.size, per_slab):
            chunk = order[start : start + per_slab]
            leaves.extend(self._str_pack_rows(chunk, axis + 1))
        return leaves

    def _str_pack_nodes(self, nodes: list[Node], level: int) -> list[Node]:
        centers = np.array([node.mbr.center() for node in nodes])
        order = np.argsort(centers[:, 0], kind="stable")
        parents: list[Node] = []
        for start in range(0, len(nodes), self.max_entries):
            parent = Node(level=level)
            parent.children = [nodes[i] for i in order[start : start + self.max_entries]]
            parent.recompute_mbr(self._X)
            parents.append(parent)
        return parents

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _entry_boxes(self, node: Node) -> list[MBR]:
        if node.is_leaf:
            return [MBR.from_point(self._X[row]) for row in node.rows]
        return node.child_mbrs()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.size}, d={self.d}, M={self.max_entries}, "
            f"height={self.height()}, nodes={self.node_count()})"
        )


# ----------------------------------------------------------------------
# Module-level split geometry (shared with the X-tree)
# ----------------------------------------------------------------------
def _split_orders(lowers: np.ndarray, uppers: np.ndarray, axis: int):
    """The two R* sort orders along *axis*: by lower and by upper bound."""
    yield np.argsort(lowers[:, axis], kind="stable")
    yield np.argsort(uppers[:, axis], kind="stable")


def _valid_splits(total: int, min_entries: int) -> range:
    """Split positions leaving at least *min_entries* on each side."""
    return range(min_entries, total - min_entries + 1)


def _distribution_geometry(lowers: np.ndarray, uppers: np.ndarray):
    """Cumulative group geometry for every prefix/suffix of a sorted order.

    Returns ``(prefix_margin, suffix_margin, (prefix_lower, prefix_upper),
    (suffix_lower, suffix_upper))`` where index ``i`` of a prefix array
    describes the group ``items[:i+1]`` and index ``i`` of a suffix array
    describes ``items[i:]``.
    """
    prefix_lower = np.minimum.accumulate(lowers, axis=0)
    prefix_upper = np.maximum.accumulate(uppers, axis=0)
    suffix_lower = np.minimum.accumulate(lowers[::-1], axis=0)[::-1]
    suffix_upper = np.maximum.accumulate(uppers[::-1], axis=0)[::-1]
    prefix_margin = (prefix_upper - prefix_lower).sum(axis=1)
    suffix_margin = (suffix_upper - suffix_lower).sum(axis=1)
    return (
        prefix_margin,
        suffix_margin,
        (prefix_lower, prefix_upper),
        (suffix_lower, suffix_upper),
    )


def _box_overlap_volume(
    lower_a: np.ndarray, upper_a: np.ndarray, lower_b: np.ndarray, upper_b: np.ndarray
) -> float:
    extents = np.minimum(upper_a, upper_b) - np.maximum(lower_a, lower_b)
    if np.any(extents < 0):
        return 0.0
    return float(np.prod(extents))


def _pairwise_overlap_sums(
    lowers_a: np.ndarray,
    uppers_a: np.ndarray,
    lowers_b: np.ndarray,
    uppers_b: np.ndarray,
) -> np.ndarray:
    """For each box ``i`` in set A, the summed overlap volume with every
    box of set B (including any self pairing — callers subtract it)."""
    lower = np.maximum(lowers_a[:, None, :], lowers_b[None, :, :])
    upper = np.minimum(uppers_a[:, None, :], uppers_b[None, :, :])
    extents = np.clip(upper - lower, 0.0, None)
    volumes = np.prod(extents, axis=2)
    return volumes.sum(axis=1)

"""X-tree: the paper's high-dimensional index substrate [2].

Berchtold, Keim & Kriegel (VLDB'96) observed that R*-style splits of
*directory* nodes produce heavily overlapping regions as dimensionality
grows, which destroys query performance. The X-tree therefore makes a
three-way decision on directory overflow:

1. try the **topological (R*) split**; accept it when the two result
   regions overlap by at most ``max_overlap`` (the paper derives ~20%);
2. otherwise try an **overlap-minimal split**: partition along one
   dimension so the halves barely (or never) overlap. The original uses
   the *split history* to locate such a dimension cheaply; we scan all
   dimensions exhaustively, which finds an overlap-minimal balanced
   split whenever one exists (a complete decision procedure for the
   same rule);
3. if the minimal split would be unbalanced (one side under
   ``min_fanout``), **do not split**: extend the node into a
   **supernode** spanning one more block.

Leaf nodes always split topologically, as in the original. Forced
reinsert is disabled (the X-tree inherits R*-tree algorithms minus
reinsertion, whose benefit vanishes once supernodes absorb bad splits).

Split history is additionally recorded on every node (``split_dims``)
for introspection and tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.metrics import Metric
from repro.index.node import Node
from repro.index.rstar import (
    RStarTree,
    _box_overlap_volume,
    _distribution_geometry,
    _valid_splits,
)

__all__ = ["XTree", "DEFAULT_MAX_OVERLAP", "DEFAULT_MIN_FANOUT"]

#: Overlap ratio above which a topological directory split is rejected.
DEFAULT_MAX_OVERLAP = 0.2
#: Minimum fraction of entries each side of an overlap-minimal split must keep.
DEFAULT_MIN_FANOUT = 0.35


class XTree(RStarTree):
    """X-tree index over a static data matrix.

    Parameters
    ----------
    X, metric, max_entries, min_fill, bulk_load:
        As in :class:`~repro.index.rstar.RStarTree`.
    max_overlap:
        Directory-split overlap tolerance (paper: 0.2).
    min_fanout:
        Balance floor for the overlap-minimal split (paper: 0.35).
    """

    def __init__(
        self,
        X: np.ndarray,
        metric: "Metric | str" = "euclidean",
        max_entries: int = 32,
        min_fill: float = 0.4,
        max_overlap: float = DEFAULT_MAX_OVERLAP,
        min_fanout: float = DEFAULT_MIN_FANOUT,
        bulk_load: str | None = None,
    ) -> None:
        if not 0.0 <= max_overlap <= 1.0:
            raise ConfigurationError(f"max_overlap must be in [0, 1], got {max_overlap}")
        if not 0.0 < min_fanout <= 0.5:
            raise ConfigurationError(f"min_fanout must be in (0, 0.5], got {min_fanout}")
        self.max_overlap = max_overlap
        self.min_fanout = min_fanout
        super().__init__(
            X,
            metric=metric,
            max_entries=max_entries,
            min_fill=min_fill,
            reinsert_fraction=0.0,  # X-tree: no forced reinsert
            bulk_load=bulk_load,
        )

    # ------------------------------------------------------------------
    # Supernode bookkeeping
    # ------------------------------------------------------------------
    def supernode_count(self) -> int:
        """Number of directory nodes currently wider than one block."""
        return sum(1 for node in self.root.iter_subtree() if node.is_supernode)

    def max_supernode_blocks(self) -> int:
        """Width (in blocks) of the largest supernode; 1 when none exist."""
        return max(node.blocks for node in self.root.iter_subtree())

    # ------------------------------------------------------------------
    # Overflow handling (directory nodes get the X-tree treatment)
    # ------------------------------------------------------------------
    def _split_node(self, path: list[Node], index: int) -> None:
        node = path[index]
        if node.is_leaf:
            super()._split_node(path, index)
            return

        boxes = self._entry_boxes(node)
        group_a, group_b, axis = self._topological_split(boxes)
        if self._groups_overlap_ratio(boxes, group_a, group_b) <= self.max_overlap:
            self._apply_split(path, index, group_a, group_b, axis)
            return

        minimal = self._overlap_minimal_split(boxes)
        if minimal is not None:
            group_a, group_b, axis = minimal
            self._apply_split(path, index, group_a, group_b, axis)
            return

        # No acceptable split exists: absorb the overflow into a supernode.
        node.blocks += 1
        self.stats.bump("supernodes_extended")
        if node.blocks == 2:
            self.stats.bump("supernodes_created")

    def _groups_overlap_ratio(
        self, boxes, group_a: list[int], group_b: list[int]
    ) -> float:
        from repro.index.mbr import MBR

        mbr_a = MBR.union_of(boxes[i] for i in group_a)
        mbr_b = MBR.union_of(boxes[i] for i in group_b)
        return mbr_a.overlap_ratio(mbr_b)

    def _overlap_minimal_split(
        self, boxes
    ) -> tuple[list[int], list[int], int] | None:
        """Exhaustive scan for the least-overlapping balanced split.

        Tries every dimension, sorting entries by lower bound, and every
        balanced cut position; keeps the candidate with the smallest
        overlap ratio. Returns ``None`` when even the best candidate
        exceeds ``max_overlap`` — the caller then builds a supernode.
        """
        lowers = np.array([box.lower for box in boxes])
        uppers = np.array([box.upper for box in boxes])
        total = len(boxes)
        min_entries = max(1, int(math.ceil(self.min_fanout * total)))
        if total < 2 * min_entries:
            return None

        best_ratio = math.inf
        best: tuple[list[int], list[int], int] | None = None
        for axis in range(self.d):
            order = np.argsort(lowers[:, axis], kind="stable")
            _, __, (pl, pu), (sl, su) = _distribution_geometry(lowers[order], uppers[order])
            for split in _valid_splits(total, min_entries):
                la, ua = pl[split - 1], pu[split - 1]
                lb, ub = sl[split], su[split]
                intersection = _box_overlap_volume(la, ua, lb, ub)
                union = float(np.prod(ua - la) + np.prod(ub - lb)) - intersection
                if union <= 0.0:
                    ratio = 0.0 if intersection == 0.0 else 1.0
                else:
                    ratio = intersection / union
                if ratio < best_ratio:
                    best_ratio = ratio
                    best = (order[:split].tolist(), order[split:].tolist(), axis)
        if best is None or best_ratio > self.max_overlap:
            return None
        return best

"""Common interface of every kNN backend.

HOS-Miner evaluates ``OD(p, s)`` for thousands of ``(point, subspace)``
pairs, so the kNN search is abstracted behind one small protocol with
three interchangeable implementations:

* :class:`repro.index.linear.LinearScanIndex` — vectorised brute force,
  the speed default in pure Python;
* :class:`repro.index.rstar.RStarTree` — the classic R*-tree;
* :class:`repro.index.xtree.XTree` — the paper's substrate [2].

All backends answer *subspace* queries: distances are computed over an
arbitrary subset ``dims`` of the indexed dimensions. The tree backends
achieve this by projecting MINDIST onto ``dims``, which stays a valid
lower bound, so branch-and-bound correctness is untouched.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.index.stats import IndexStats

__all__ = ["KnnBackend"]


@runtime_checkable
class KnnBackend(Protocol):
    """Structural interface of a subspace-capable kNN index."""

    #: Cumulative logical cost counters.
    stats: IndexStats
    #: Number of indexed points.
    size: int
    #: Dimensionality of the indexed points.
    d: int

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours of *query* within subspace *dims*.

        Parameters
        ----------
        query:
            Full-dimensional query vector (projection happens inside).
        k:
            Number of neighbours.
        dims:
            Sorted 0-based dimension indices of the subspace.
        exclude:
            Optional row index to skip — used when the query point is a
            member of the indexed dataset.

        Returns
        -------
        (indices, distances), both length ``min(k, available)``, sorted
        by ascending distance with ties broken by row index.
        """

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        """Row indices within *radius* of *query* in subspace *dims*."""

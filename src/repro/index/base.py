"""Common interface of every kNN backend.

HOS-Miner evaluates ``OD(p, s)`` for thousands of ``(point, subspace)``
pairs, so the kNN search is abstracted behind one small protocol with
three interchangeable implementations:

* :class:`repro.index.linear.LinearScanIndex` — vectorised brute force,
  the speed default in pure Python;
* :class:`repro.index.rstar.RStarTree` — the classic R*-tree;
* :class:`repro.index.xtree.XTree` — the paper's substrate [2].

All backends answer *subspace* queries: distances are computed over an
arbitrary subset ``dims`` of the indexed dimensions. The tree backends
achieve this by projecting MINDIST onto ``dims``, which stays a valid
lower bound, so branch-and-bound correctness is untouched.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.index.stats import IndexStats

__all__ = [
    "KnnBackend",
    "components32_from",
    "knn_batch_fallback",
    "mask_matrix",
    "normalize_excludes",
    "validate_query_matrix",
    "validate_sums_request",
]


@runtime_checkable
class KnnBackend(Protocol):
    """Structural interface of a subspace-capable kNN index."""

    #: Cumulative logical cost counters.
    stats: IndexStats
    #: Number of indexed points.
    size: int
    #: Dimensionality of the indexed points.
    d: int

    def knn(
        self,
        query: np.ndarray,
        k: int,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours of *query* within subspace *dims*.

        Parameters
        ----------
        query:
            Full-dimensional query vector (projection happens inside).
        k:
            Number of neighbours.
        dims:
            Sorted 0-based dimension indices of the subspace.
        exclude:
            Optional row index to skip — used when the query point is a
            member of the indexed dataset.

        Returns
        -------
        (indices, distances), both length ``min(k, available)``, sorted
        by ascending distance with ties broken by row index.
        """

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        dims: Sequence[int],
        exclude: int | None = None,
    ) -> np.ndarray:
        """Row indices within *radius* of *query* in subspace *dims*."""

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        dims: Sequence[int],
        excludes: "Sequence[int | None] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """kNN of every row of *queries* within subspace *dims*.

        The multi-query entry point of the batched engine. Each element
        of the returned list is exactly what :meth:`knn` returns for the
        corresponding query row (same values, same deterministic tie
        order), so the two paths are interchangeable.

        Parameters
        ----------
        queries:
            Query matrix, shape ``(m, d)``; ``m = 0`` is legal.
        k:
            Number of neighbours per query.
        dims:
            Sorted 0-based dimension indices of the shared subspace.
        excludes:
            Per-query row exclusions (``None`` entries for external
            points), or ``None`` for no exclusions anywhere.

        Backends without a vectorised multi-query path may implement
        this as :func:`knn_batch_fallback`, which loops over :meth:`knn`.
        """


def mask_matrix(
    dims_list: "Sequence[np.ndarray]", d: int, dtype: "np.dtype | type" = np.float64
) -> np.ndarray:
    """Pack subspace dimension lists into a 0/1 selection matrix.

    Returns the ``(m, d)`` matrix ``M`` with ``M[j, dim] = 1`` for
    every dimension of subspace ``j`` — the left-hand operand of the
    level-wide OD kernel's ``M @ C.T`` GEMM. Putting masks on the left
    makes the (freshly allocated, C-order) product mask-major: row
    ``j`` holds subspace ``j``'s per-point component sums contiguously,
    which is the layout the axis-wise top-k reduction wants. *dtype*
    selects the GEMM precision; 0 and 1 are exact in every float dtype,
    so the mask itself never loses information.
    """
    M = np.zeros((len(dims_list), d), dtype=dtype)
    for j, dims in enumerate(dims_list):
        M[j, dims] = 1.0
    return M


def components32_from(components: "np.ndarray | None") -> "np.ndarray | None":
    """Transposed float32 copy of a component matrix, or ``None``.

    The float32 GEMM tier's right-hand operand: ``(d, n)`` C-contiguous
    (pre-transposed so the sgemm consumes two contiguous operands — the
    float64 path keeps the shared ``(n, d)`` cache layout instead).
    Returns ``None`` when any entry overflows float32 (magnitudes above
    ~3.4e38): a non-finite operand could turn masked-out dimensions
    into ``0 * inf = NaN`` inside the GEMM, and NaN escapes the
    re-verification band — callers fall back to the float64 kernel for
    such data instead. Finite entries can still overflow to ``inf``
    during *accumulation*, which is safe: ``inf`` values are always
    re-verified exactly.
    """
    if components is None:
        return None
    transposed = np.ascontiguousarray(components.T, dtype=np.float32)
    if not np.isfinite(transposed).all():
        return None
    return transposed


def validate_sums_request(
    dims_list,
    validate_dims,
    k: int,
    size: int,
    excludes: "Sequence[int | None]",
) -> "list[np.ndarray]":
    """Shared argument validation of the OD-sum kernels.

    Coerces every entry of *dims_list* through the backend's
    *validate_dims* (ready-made intp arrays are trusted — the batch
    engine validates and caches them once per mask) and checks ``k``
    against the candidate rows available to each exclusion. One helper
    so every backend's sums kernel validates — and errors — identically.
    """
    from repro.core.exceptions import ConfigurationError

    dims_arrays = [
        dims
        if isinstance(dims, np.ndarray) and dims.dtype == np.intp
        else validate_dims(dims)
        for dims in dims_list
    ]
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    for exclude in excludes:
        available = size - (1 if exclude is not None else 0)
        if k > available:
            raise ConfigurationError(
                f"k={k} neighbours requested but only {available} candidate rows exist"
            )
    return dims_arrays


def normalize_excludes(
    excludes: "Sequence[int | None] | None", m: int, size: int
) -> "list[int | None]":
    """Validate a per-query exclusion list against batch size and n."""
    from repro.core.exceptions import ConfigurationError

    if excludes is None:
        return [None] * m
    excludes = list(excludes)
    if len(excludes) != m:
        raise ConfigurationError(
            f"{len(excludes)} exclusions supplied for {m} queries"
        )
    for exclude in excludes:
        if exclude is not None and not 0 <= exclude < size:
            raise ConfigurationError(
                f"exclude row {exclude} out of range for n={size}"
            )
    return excludes


def validate_query_matrix(queries: np.ndarray, d: int) -> np.ndarray:
    """Coerce *queries* to a float64 ``(m, d)`` matrix or raise
    :class:`~repro.core.exceptions.DataShapeError` naming both shapes."""
    from repro.core.exceptions import DataShapeError

    try:
        queries = np.ascontiguousarray(queries, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataShapeError(
            f"query matrix could not be converted to float64: {exc}"
        ) from exc
    if queries.ndim != 2 or queries.shape[1] != d:
        raise DataShapeError(
            f"expected a query matrix of shape (m, {d}), got {queries.shape}"
        )
    return queries


def knn_batch_fallback(
    backend: KnnBackend,
    queries: np.ndarray,
    k: int,
    dims: Sequence[int],
    excludes: "Sequence[int | None] | None" = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Reference :meth:`KnnBackend.knn_batch` implementation: one
    :meth:`~KnnBackend.knn` call per query row.

    Tree backends use this directly — their branch-and-bound descent is
    inherently per-query — which keeps ``knn_batch`` universally
    available while the scan-shaped backends provide truly vectorised
    overrides.
    """
    queries = validate_query_matrix(queries, backend.d)
    excludes = normalize_excludes(excludes, queries.shape[0], backend.size)
    return [
        backend.knn(query, k, dims, exclude=exclude)
        for query, exclude in zip(queries, excludes)
    ]

"""HOS-Miner: detecting outlying subspaces of high-dimensional data.

A full reproduction of *HOS-Miner: A System for Detecting Outlying
Subspaces of High-dimensional Data* (Zhang, Lou, Ling, Wang — VLDB
2004), including the X-tree indexing substrate, the Aggarwal–Yu
evolutionary comparator, classic full-space outlier detectors, data
generators, and the experiment harness. See README.md for a tour and
docs/architecture.md for the system inventory.

Quickstart::

    import numpy as np
    from repro import HOSMiner
    from repro.data import make_planted_outliers

    dataset = make_planted_outliers(n=1000, d=8, n_outliers=5, seed=7)
    miner = HOSMiner(k=5, sample_size=10).fit(dataset.X)
    result = miner.query_row(dataset.outlier_rows[0])
    print(result.explain())
"""

from repro.core import (
    BatchQueryEngine,
    BatchResult,
    DynamicSubspaceSearch,
    HOSMiner,
    HOSMinerConfig,
    HOSMinerError,
    ODEvaluator,
    OutlyingSubspaceResult,
    PruningPriors,
    SearchOutcome,
    SearchStats,
    SharedODCache,
    StreamEngine,
    Subspace,
    calibrate_threshold,
    learn_priors,
    minimal_subspaces,
    outlying_degree,
)
from repro.index import LinearScanIndex, RStarTree, XTree, make_backend

__version__ = "1.1.0"

__all__ = [
    "BatchQueryEngine",
    "BatchResult",
    "DynamicSubspaceSearch",
    "HOSMiner",
    "HOSMinerConfig",
    "HOSMinerError",
    "LinearScanIndex",
    "ODEvaluator",
    "OutlyingSubspaceResult",
    "PruningPriors",
    "RStarTree",
    "SearchOutcome",
    "SearchStats",
    "SharedODCache",
    "StreamEngine",
    "Subspace",
    "XTree",
    "__version__",
    "calibrate_threshold",
    "learn_priors",
    "make_backend",
    "minimal_subspaces",
    "outlying_degree",
]

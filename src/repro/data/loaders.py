"""Deterministic "real-life-like" datasets.

The paper demos on real datasets we cannot redistribute (and its two
motivating applications — athlete training analysis and medical
screening — reference proprietary data). As substitutes, these loaders
generate *fixed, seeded* datasets with the same
shape as those applications: named features, one dominant "normal"
population, and a handful of individuals who deviate only in specific
feature subsets. Every call returns byte-identical data, so examples
and docs can reference concrete rows.
"""

from __future__ import annotations

import csv
import io

import numpy as np

from repro.core.exceptions import DataShapeError
from repro.core.subspace import Subspace
from repro.data.synthetic import Dataset

__all__ = ["load_athletes", "load_patients", "load_csv", "dataset_to_csv"]

ATHLETE_FEATURES = [
    "sprint_speed",
    "stamina",
    "strength",
    "agility",
    "reaction_time",
    "flexibility",
    "jump_height",
    "accuracy",
]

PATIENT_FEATURES = [
    "temperature",
    "heart_rate",
    "bp_systolic",
    "bp_diastolic",
    "glucose",
    "wbc_count",
    "o2_saturation",
    "respiration",
    "cholesterol",
    "bmi",
]


def load_athletes(n: int = 240) -> Dataset:
    """A training squad with known per-discipline weaknesses.

    The squad's measurements cluster around position-typical profiles.
    Three athletes deviate in specific discipline subsets (the paper's
    "identify the subspace in which an athlete deviates from the
    teammates" scenario):

    * row 0 — collapses in ``{stamina}`` only;
    * row 1 — weak in ``{sprint_speed, agility}`` jointly;
    * row 2 — weak in ``{strength, jump_height, accuracy}`` jointly.
    """
    rng = np.random.default_rng(42)
    d = len(ATHLETE_FEATURES)
    profiles = np.array(
        [
            [30.0, 55.0, 70.0, 60.0, 0.25, 40.0, 55.0, 75.0],
            [26.0, 70.0, 55.0, 70.0, 0.22, 55.0, 45.0, 80.0],
            [33.0, 45.0, 85.0, 50.0, 0.28, 30.0, 65.0, 70.0],
        ]
    )
    spread = np.array([1.5, 4.0, 5.0, 4.0, 0.02, 4.0, 4.0, 3.0])
    assignment = rng.integers(0, profiles.shape[0], size=n)
    X = profiles[assignment] + rng.normal(size=(n, d)) * spread

    dataset = Dataset(X=X, name="athletes", feature_names=list(ATHLETE_FEATURES))
    weaknesses = {
        0: ("stamina",),
        1: ("sprint_speed", "agility"),
        2: ("strength", "jump_height", "accuracy"),
    }
    for row, features in weaknesses.items():
        dims = tuple(ATHLETE_FEATURES.index(name) for name in features)
        for dim in dims:
            # 14 within-profile sigmas: dramatic even against the wider
            # between-profile spread of the mixed squad.
            X[row, dim] -= 14.0 * spread[dim]
        dataset.outlier_rows.append(row)
        dataset.true_subspaces[row] = Subspace.from_dims(dims, d)
    return dataset


def load_patients(n: int = 400) -> Dataset:
    """A patient cohort with three abnormal cases.

    Vitals cluster around a healthy profile; three patients are abnormal
    in clinically coherent subsets (the paper's "identify the subspaces
    in which a particular patient is found abnormal"):

    * row 0 — febrile infection: ``{temperature, wbc_count}``;
    * row 1 — hypertensive crisis: ``{bp_systolic, bp_diastolic,
      heart_rate}``;
    * row 2 — metabolic: ``{glucose, bmi}``.
    """
    rng = np.random.default_rng(7)
    d = len(PATIENT_FEATURES)
    healthy = np.array([36.8, 72.0, 118.0, 77.0, 95.0, 7.0, 97.5, 15.0, 185.0, 24.0])
    spread = np.array([0.3, 8.0, 8.0, 6.0, 9.0, 1.5, 1.0, 2.0, 20.0, 3.0])
    X = healthy + rng.normal(size=(n, d)) * spread

    dataset = Dataset(X=X, name="patients", feature_names=list(PATIENT_FEATURES))
    conditions = {
        0: (("temperature", 10.0), ("wbc_count", 9.0)),
        1: (("bp_systolic", 9.0), ("bp_diastolic", 9.0), ("heart_rate", 8.0)),
        2: (("glucose", 11.0), ("bmi", 8.0)),
    }
    for row, shifts in conditions.items():
        dims = []
        for feature, sigmas in shifts:
            dim = PATIENT_FEATURES.index(feature)
            X[row, dim] += sigmas * spread[dim]
            dims.append(dim)
        dataset.outlier_rows.append(row)
        dataset.true_subspaces[row] = Subspace.from_dims(tuple(dims), d)
    return dataset


def load_csv(path: str, name: str | None = None) -> Dataset:
    """Load a numeric CSV with a header row into a :class:`Dataset`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[float(value) for value in row] for row in reader if row]
    if not rows:
        raise DataShapeError(f"{path} contains no data rows")
    widths = {len(row) for row in rows}
    if widths != {len(header)}:
        raise DataShapeError(f"{path} has ragged rows (widths {sorted(widths)})")
    return Dataset(
        X=np.asarray(rows, dtype=np.float64),
        name=name or path,
        feature_names=list(header),
    )


def dataset_to_csv(dataset: Dataset) -> str:
    """Serialise a dataset to CSV text (round-trips through
    :func:`load_csv`; handy for the CLI and tests)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = dataset.feature_names or [f"x{i + 1}" for i in range(dataset.d)]
    writer.writerow(names)
    for row in dataset.X:
        writer.writerow([repr(float(value)) for value in row])
    return buffer.getvalue()

"""Feature scaling for heterogeneous attributes.

The OD measure adds distances across dimensions, so wildly different
attribute scales (0.25 s reaction times vs 180 mg/dL cholesterol) would
let one attribute dominate every subspace. The loaders' examples
normalise first; both scalers follow the fit/transform convention so a
query point can be mapped into the fitted space.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import DataShapeError, NotFittedError

__all__ = ["ZScoreScaler", "MinMaxScaler", "zscore", "minmax"]


class _FittedScaler:
    """Shared fit/transform plumbing."""

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, X: np.ndarray) -> "_FittedScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataShapeError(f"expected a non-empty (n, d) matrix, got shape {X.shape}")
        self._fit(X)
        self._fitted = True
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("call fit(X) before transform")
        return self._transform(np.asarray(X, dtype=np.float64))

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def _fit(self, X: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _transform(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class ZScoreScaler(_FittedScaler):
    """Standardise every column to zero mean, unit variance.

    Constant columns (zero variance) map to zero rather than NaN.
    """

    def _fit(self, X: np.ndarray) -> None:
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std == 0.0, 1.0, std)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.mean_) / self.std_


class MinMaxScaler(_FittedScaler):
    """Rescale every column to [0, 1] (constant columns map to 0)."""

    def _fit(self, X: np.ndarray) -> None:
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.span_ = np.where(span == 0.0, 1.0, span)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.min_) / self.span_


def zscore(X: np.ndarray) -> np.ndarray:
    """One-shot z-score normalisation."""
    return ZScoreScaler().fit_transform(X)


def minmax(X: np.ndarray) -> np.ndarray:
    """One-shot min-max normalisation."""
    return MinMaxScaler().fit_transform(X)

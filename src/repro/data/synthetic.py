"""Synthetic dataset generators for the demo's experiments.

The paper evaluates on "both synthetic and real-life datasets". The
synthetic side needs, above all, *planted ground truth*: datasets where
we know exactly in which subspace each outlier hides, so effectiveness
(E6) can be scored. Every generator takes an explicit seed and returns
a :class:`Dataset` bundle.

The planting scheme of :func:`make_planted_outliers`: background points
are drawn from a mixture of Gaussian clusters spanning **all**
dimensions; each planted outlier starts as a regular cluster member and
is then displaced by ``displacement`` (in units of cluster σ) along the
dimensions of a randomly chosen subspace ``s*``, leaving its remaining
coordinates untouched. The point is therefore ordinary in every
dimension outside ``s*`` and abnormal in (supersets of parts of)
``s*`` — the "athlete weak in exactly these disciplines" situation the
paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.subspace import Subspace

__all__ = [
    "Dataset",
    "make_gaussian_mixture",
    "make_uniform_noise",
    "make_correlated",
    "make_planted_outliers",
    "make_figure1_data",
    "make_drift_stream",
    "make_burst_stream",
]


@dataclass(slots=True)
class Dataset:
    """A generated dataset with (optional) planted ground truth.

    Attributes
    ----------
    X:
        Data matrix ``(n, d)``.
    name:
        Generator tag for bench tables.
    outlier_rows:
        Rows that were planted as outliers (empty when none).
    true_subspaces:
        For each planted row, the subspace ``s*`` it was displaced in.
    feature_names:
        Column names (loaders fill these; generators leave ``None``).
    """

    X: np.ndarray
    name: str = "synthetic"
    outlier_rows: list[int] = field(default_factory=list)
    true_subspaces: dict[int, Subspace] = field(default_factory=dict)
    feature_names: list[str] | None = None

    @property
    def n(self) -> int:
        return self.X.shape[0]

    @property
    def d(self) -> int:
        return self.X.shape[1]

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, n={self.n}, d={self.d}, "
            f"planted={len(self.outlier_rows)})"
        )


def _check_shape(n: int, d: int) -> None:
    if n < 1 or d < 1:
        raise ConfigurationError(f"need n >= 1 and d >= 1, got n={n}, d={d}")


def make_gaussian_mixture(
    n: int,
    d: int,
    n_clusters: int = 3,
    cluster_std: float = 1.0,
    center_spread: float = 10.0,
    seed: int | None = 0,
) -> Dataset:
    """Background data: a mixture of axis-aligned Gaussian clusters."""
    _check_shape(n, d)
    if n_clusters < 1:
        raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_spread, center_spread, size=(n_clusters, d))
    assignment = rng.integers(0, n_clusters, size=n)
    X = centers[assignment] + rng.normal(scale=cluster_std, size=(n, d))
    return Dataset(X=X, name=f"gaussian(k={n_clusters})")


def make_uniform_noise(
    n: int, d: int, low: float = 0.0, high: float = 1.0, seed: int | None = 0
) -> Dataset:
    """Structureless uniform data — the "no outliers anywhere" control."""
    _check_shape(n, d)
    rng = np.random.default_rng(seed)
    return Dataset(X=rng.uniform(low, high, size=(n, d)), name="uniform")


def make_correlated(
    n: int,
    d: int,
    correlation: float = 0.8,
    seed: int | None = 0,
) -> Dataset:
    """Linearly correlated attributes (stress data for grid and trees).

    Every pair of attributes shares correlation ≈ ``correlation`` via a
    single latent factor; high-dimensional indexes hate this shape.
    """
    _check_shape(n, d)
    if not 0.0 <= correlation < 1.0:
        raise ConfigurationError(f"correlation must be in [0, 1), got {correlation}")
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 1))
    noise = rng.normal(size=(n, d))
    weight = np.sqrt(correlation)
    X = weight * latent + np.sqrt(1.0 - correlation) * noise
    return Dataset(X=X, name=f"correlated(rho={correlation:g})")


def make_planted_outliers(
    n: int,
    d: int,
    n_outliers: int = 5,
    subspace_dims: "tuple[int, ...] | int" = (2, 3),
    displacement: float = 8.0,
    n_clusters: int = 3,
    cluster_std: float = 1.0,
    center_spread: float = 10.0,
    seed: int | None = 0,
) -> Dataset:
    """Gaussian-mixture background with outliers planted in known subspaces.

    Parameters
    ----------
    subspace_dims:
        Dimensionality (or tuple of choices) of each planted subspace.
    displacement:
        Offset per planted dimension, in units of ``cluster_std``. Large
        values make even single planted dimensions outlying on their
        own; moderate values (~3–4) need the joint subspace.

    The planted rows are the first ``n_outliers`` rows (so row ↔ truth
    bookkeeping is trivial in experiments).
    """
    _check_shape(n, d)
    if n_outliers < 0 or n_outliers > n:
        raise ConfigurationError(f"n_outliers must be in [0, n], got {n_outliers}")
    if isinstance(subspace_dims, int):
        subspace_dims = (subspace_dims,)
    if any(size < 1 or size > d for size in subspace_dims):
        raise ConfigurationError(
            f"every planted subspace size must be in [1, d], got {subspace_dims}"
        )

    base = make_gaussian_mixture(
        n,
        d,
        n_clusters=n_clusters,
        cluster_std=cluster_std,
        center_spread=center_spread,
        seed=seed,
    )
    X = base.X
    rng = np.random.default_rng(None if seed is None else seed + 1)
    dataset = Dataset(X=X, name=f"planted(d={d}, m={subspace_dims})")
    # A displaced point can, by bad luck, land right on top of *another*
    # cluster's projection, which would void the planted ground truth.
    # Rejection-sample displacement directions until the point is
    # genuinely isolated inside its planted subspace.
    min_gap = 0.4 * displacement * cluster_std
    for row in range(n_outliers):
        original = X[row].copy()
        placed = False
        for _ in range(50):
            size = int(rng.choice(subspace_dims))
            dims = list(
                sorted(int(x) for x in rng.choice(d, size=size, replace=False))
            )
            signs = rng.choice((-1.0, 1.0), size=size)
            candidate = original.copy()
            candidate[dims] += signs * displacement * cluster_std
            others = np.delete(X, row, axis=0)
            gaps = np.sqrt(((others[:, dims] - candidate[dims]) ** 2).sum(axis=1))
            if gaps.min() >= min_gap:
                placed = True
                break
        if not placed:  # pragma: no cover - 50 draws essentially never fail
            raise ConfigurationError(
                "could not isolate a planted outlier; lower n_outliers or "
                "raise displacement"
            )
        X[row] = candidate
        dataset.outlier_rows.append(row)
        dataset.true_subspaces[row] = Subspace.from_dims(tuple(dims), d)
    return dataset


def _stream_checks(n_batches: int, batch_size: int, d: int) -> None:
    _check_shape(batch_size, d)
    if n_batches < 1:
        raise ConfigurationError(f"n_batches must be >= 1, got {n_batches}")


def make_drift_stream(
    n_batches: int,
    batch_size: int,
    d: int,
    drift_per_batch: float = 0.2,
    n_clusters: int = 3,
    cluster_std: float = 1.0,
    center_spread: float = 10.0,
    outlier_every: int = 0,
    displacement: float = 8.0,
    seed: int | None = 0,
) -> list[np.ndarray]:
    """Concept-drift stream: cluster centres wander between batches.

    Each cluster moves ``drift_per_batch`` (in units of ``cluster_std``)
    along its own fixed random direction before every batch, so the data
    distribution a sliding window sees keeps changing — the workload
    that makes stale cached state *wrong*, hence the stress input of the
    streaming differential suite and of the E17 benchmark. With
    ``outlier_every > 0`` the last row of every ``outlier_every``-th
    batch is displaced along two random dimensions (the planted-outlier
    scheme of :func:`make_planted_outliers`, without the isolation
    rejection loop), so queries have something to find.

    Returns a list of ``(batch_size, d)`` matrices, oldest first.
    """
    _stream_checks(n_batches, batch_size, d)
    if drift_per_batch < 0:
        raise ConfigurationError(
            f"drift_per_batch must be >= 0, got {drift_per_batch}"
        )
    if outlier_every < 0:
        raise ConfigurationError(
            f"outlier_every must be >= 0, got {outlier_every}"
        )
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_spread, center_spread, size=(n_clusters, d))
    velocity = rng.normal(size=(n_clusters, d))
    norms = np.maximum(np.linalg.norm(velocity, axis=1, keepdims=True), 1e-12)
    velocity *= drift_per_batch * cluster_std / norms
    batches: list[np.ndarray] = []
    for b in range(n_batches):
        assignment = rng.integers(0, n_clusters, size=batch_size)
        rows = centers[assignment] + rng.normal(
            scale=cluster_std, size=(batch_size, d)
        )
        if outlier_every and (b + 1) % outlier_every == 0:
            dims = rng.choice(d, size=min(2, d), replace=False)
            signs = rng.choice((-1.0, 1.0), size=dims.size)
            rows[-1, dims] += signs * displacement * cluster_std
        batches.append(rows)
        centers = centers + velocity
    return batches


def make_burst_stream(
    n_batches: int,
    batch_size: int,
    d: int,
    burst_every: int = 4,
    burst_fraction: float = 0.25,
    displacement: float = 6.0,
    n_clusters: int = 3,
    cluster_std: float = 1.0,
    center_spread: float = 10.0,
    seed: int | None = 0,
) -> list[np.ndarray]:
    """Bursty stream: calm background punctuated by anomaly bursts.

    The background distribution is stationary (the same Gaussian mixture
    every batch), but every ``burst_every``-th batch displaces a
    ``burst_fraction`` of its rows along two random dimensions — a
    sudden cluster of near-duplicate anomalies, the workload that
    hammers the delta cache-invalidation path (a burst lands inside many
    cached kth-distance bounds at once, an expiring burst un-lands them).

    Returns a list of ``(batch_size, d)`` matrices, oldest first.
    """
    _stream_checks(n_batches, batch_size, d)
    if burst_every < 1:
        raise ConfigurationError(f"burst_every must be >= 1, got {burst_every}")
    if not 0.0 < burst_fraction <= 1.0:
        raise ConfigurationError(
            f"burst_fraction must be in (0, 1], got {burst_fraction}"
        )
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_spread, center_spread, size=(n_clusters, d))
    batches: list[np.ndarray] = []
    for b in range(n_batches):
        assignment = rng.integers(0, n_clusters, size=batch_size)
        rows = centers[assignment] + rng.normal(
            scale=cluster_std, size=(batch_size, d)
        )
        if (b + 1) % burst_every == 0:
            count = max(1, int(round(burst_fraction * batch_size)))
            dims = rng.choice(d, size=min(2, d), replace=False)
            signs = rng.choice((-1.0, 1.0), size=(count, dims.size))
            rows[:count, dims] += signs * displacement * cluster_std
        batches.append(rows)
    return batches


def make_figure1_data(
    n: int = 400,
    cluster_std: float = 1.0,
    displacement: float = 7.0,
    seed: int | None = 0,
) -> Dataset:
    """The Figure 1 scenario: one point, three 2-d views, one outlying view.

    Builds a 6-dimensional dataset whose three 2-d views are dimension
    pairs ``(0,1)``, ``(2,3)``, ``(4,5)``. Point ``p`` (row 0) is pushed
    out of the data mass **only** in view ``(0,1)``: it is "clearly an
    outlier" there (leftmost panel) and unremarkable in the other two
    views, exactly like the paper's figure.
    """
    _check_shape(n, 6)
    rng = np.random.default_rng(seed)
    X = rng.normal(scale=cluster_std, size=(n, 6))
    # Views 2 and 3 get mild cluster structure so they look like data,
    # not noise; p stays inside one of the clusters in both.
    X[:, 2:4] += rng.choice((-3.0, 3.0), size=(n, 1))
    X[:, 4:6] += rng.choice((-3.0, 0.0, 3.0), size=(n, 1))
    p = 0
    X[p, 2:6] = X[1, 2:6]  # identical to a typical inlier in views 2–3
    X[p, 0:2] = displacement * cluster_std  # far corner of view 1
    dataset = Dataset(X=X, name="figure1")
    dataset.outlier_rows.append(p)
    dataset.true_subspaces[p] = Subspace.from_dims((0, 1), 6)
    return dataset

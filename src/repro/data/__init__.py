"""Datasets: synthetic generators, deterministic loaders, scaling."""

from repro.data.loaders import (
    ATHLETE_FEATURES,
    PATIENT_FEATURES,
    dataset_to_csv,
    load_athletes,
    load_csv,
    load_patients,
)
from repro.data.normalize import MinMaxScaler, ZScoreScaler, minmax, zscore
from repro.data.synthetic import (
    Dataset,
    make_burst_stream,
    make_correlated,
    make_drift_stream,
    make_figure1_data,
    make_gaussian_mixture,
    make_planted_outliers,
    make_uniform_noise,
)

__all__ = [
    "ATHLETE_FEATURES",
    "Dataset",
    "MinMaxScaler",
    "PATIENT_FEATURES",
    "ZScoreScaler",
    "dataset_to_csv",
    "load_athletes",
    "load_csv",
    "load_patients",
    "make_burst_stream",
    "make_correlated",
    "make_drift_stream",
    "make_figure1_data",
    "make_gaussian_mixture",
    "make_planted_outliers",
    "make_uniform_noise",
    "minmax",
    "zscore",
]

"""Deterministic failure tooling for the execution engine.

This package holds the *testing seams* of the runtime — hooks that let
the chaos test suite, the CI chaos job and the E16 robustness benchmark
drive the fault-tolerant shard engine through precisely scripted
failures. Nothing here is imported on the happy path unless a fault
spec is actually configured.
"""

from repro.testing.faults import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultClause,
    FaultPlan,
    fault_env,
    parse_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultClause",
    "FaultPlan",
    "fault_env",
    "parse_faults",
]

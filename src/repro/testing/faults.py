"""Deterministic fault injection for the sharded execution engine.

A production coordinator must survive workers that crash, hang or crawl
— but *testing* that survival needs failures that happen at an exact,
reproducible point. This module is that scripting layer: a tiny spec
grammar parsed once at pool construction, and a :class:`FaultPlan` the
shard workers consult at their four interesting points (shared-memory
attach, request receipt, reply send, window sync). The coordinator never fires
faults itself; it only validates the spec early so a typo fails loudly
at fit time rather than silently injecting nothing.

Spec grammar
------------
A spec is one or more clauses separated by ``;`` (or ``,``)::

    crash:shard=1:round=3
    hang:shard=0:round=2
    slow:ms=500
    crash:shard=0:at=attach
    crash:shard=0:gen=any          # every incarnation -> irrecoverable

Each clause starts with a fault kind and is refined by ``key=value``
fields:

``crash``
    The worker process dies via ``os._exit`` — no cleanup, no reply, a
    nonzero exit code; exactly what a segfault or OOM kill looks like
    from the coordinator's side of the pipe.
``hang``
    The worker sleeps far past any reasonable deadline without
    replying; only the coordinator's ``timeout_s`` deadline (followed
    by kill + respawn) gets the round moving again.
``slow``
    The worker sleeps ``ms`` milliseconds and then serves normally —
    a straggler, not a failure.

``shard=<int>``
    Only this shard id fires the clause (default: every shard).
``round=<int>``
    Fire on the worker's *N*-th work unit, 1-based, counted per
    process (default: every round). Invalid for ``at=attach``.
``at=attach|recv|send|sync``
    The consult point: during shared-memory attach at worker start,
    after receiving a work unit (before computing — from the
    coordinator's view, death *between* its ``send()`` and ``recv()``),
    after computing but before replying, or on receiving a live
    window-update ``sync`` message (before applying it — the streaming
    chaos suite's point). Default ``recv``.
``gen=<int>|any``
    Which worker incarnation fires: 0 is the originally spawned
    process, 1 the first respawn, and so on. Default ``0`` — the
    injected failure hits once and the respawned worker serves clean,
    which keeps recovery tests deterministic. ``gen=any`` makes the
    fault permanent (every respawn fails too), driving the
    graceful-degradation path.
``ms=<float>``
    Sleep duration for ``slow`` (default 100).

Activation: the ``HOSMINER_FAULTS`` environment variable (read at pool
construction, inherited by the workers), or the ``faults=`` argument of
:class:`~repro.core.shard.ShardPool` which takes precedence over the
environment. An empty spec means no faults and costs nothing per round.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultClause",
    "FaultPlan",
    "fault_env",
    "parse_faults",
]

FAULT_KINDS = ("crash", "hang", "slow")
FAULT_POINTS = ("attach", "recv", "send", "sync")

#: Exit code of injected crashes — distinctive in worker exitcodes.
CRASH_EXIT_CODE = 23

#: How long a ``hang`` sleeps. Far past any sane ``timeout_s``; the
#: coordinator's deadline + kill is what ends it, never this timer.
HANG_SECONDS = 600.0

#: Default ``slow`` delay when a clause gives no ``ms=``.
DEFAULT_SLOW_MS = 100.0


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec (see the module grammar)."""

    kind: str
    shard: int | None = None
    round: int | None = None
    at: str = "recv"
    gen: int | None = 0
    ms: float = DEFAULT_SLOW_MS

    def matches(self, shard: int, gen: int, point: str, round: int) -> bool:
        """Does this clause fire for *shard*/*gen* at *point*, *round*?"""
        if self.at != point:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        if self.gen is not None and self.gen != gen:
            return False
        if self.round is not None and self.round != round:
            return False
        return True

    def describe(self) -> str:
        fields = [self.kind, f"at={self.at}"]
        if self.shard is not None:
            fields.append(f"shard={self.shard}")
        if self.round is not None:
            fields.append(f"round={self.round}")
        fields.append("gen=any" if self.gen is None else f"gen={self.gen}")
        if self.kind == "slow":
            fields.append(f"ms={self.ms:g}")
        return ":".join(fields)


def _clause_error(clause: str, detail: str) -> ConfigurationError:
    return ConfigurationError(
        f"bad fault clause {clause!r}: {detail} — expected "
        f"'<kind>[:shard=S][:round=R][:at=attach|recv|send|sync][:gen=G|any][:ms=M]' "
        f"with kind in {FAULT_KINDS}"
    )


def _parse_int(clause: str, key: str, value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise _clause_error(clause, f"{key} must be an integer, got {value!r}") from None
    if parsed < 0:
        raise _clause_error(clause, f"{key} must be >= 0, got {parsed}")
    return parsed


def parse_faults(spec: "str | None") -> tuple[FaultClause, ...]:
    """Parse a fault spec string into clauses; '' / None parse to ()."""
    if not spec or not spec.strip():
        return ()
    clauses: list[FaultClause] = []
    for raw in spec.replace(",", ";").split(";"):
        raw = raw.strip()
        if not raw:
            continue
        fields = [field.strip() for field in raw.split(":")]
        kind = fields[0].lower()
        if kind not in FAULT_KINDS:
            raise _clause_error(raw, f"unknown kind {fields[0]!r}")
        values: dict[str, object] = {"kind": kind}
        gen_given = False
        for field in fields[1:]:
            if "=" not in field:
                raise _clause_error(raw, f"field {field!r} is not key=value")
            key, _, value = field.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "shard":
                values["shard"] = _parse_int(raw, "shard", value)
            elif key == "round":
                round_ = _parse_int(raw, "round", value)
                if round_ < 1:
                    raise _clause_error(raw, "round is 1-based, got 0")
                values["round"] = round_
            elif key == "at":
                if value.lower() not in FAULT_POINTS:
                    raise _clause_error(
                        raw, f"at must be one of {FAULT_POINTS}, got {value!r}"
                    )
                values["at"] = value.lower()
            elif key == "gen":
                gen_given = True
                if value.lower() in ("any", "*"):
                    values["gen"] = None
                else:
                    values["gen"] = _parse_int(raw, "gen", value)
            elif key == "ms":
                try:
                    ms = float(value)
                except ValueError:
                    raise _clause_error(raw, f"ms must be a number, got {value!r}") from None
                if ms < 0:
                    raise _clause_error(raw, f"ms must be >= 0, got {ms}")
                values["ms"] = ms
            else:
                raise _clause_error(raw, f"unknown field {key!r}")
        if values.get("at") == "attach" and "round" in values:
            raise _clause_error(raw, "at=attach faults fire before any round; drop round=")
        if values.get("at") == "attach" and not gen_given:
            # Attach faults default to the original incarnation only, so
            # a respawn can actually recover (override with gen=any).
            values["gen"] = 0
        clause = FaultClause(**values)  # type: ignore[arg-type]
        if clause.kind != "slow" and "ms" in values:
            raise _clause_error(raw, "ms only applies to slow faults")
        clauses.append(clause)
    return tuple(clauses)


class FaultPlan:
    """The worker-side driver: one plan per worker process incarnation.

    ``fire(point, round)`` is called by the shard worker at its consult
    points; a matching ``crash`` clause never returns. Plans are cheap
    to construct and hold no state beyond the parsed clauses filtered
    down to this worker's shard — an empty plan's ``fire`` is a single
    attribute check.
    """

    def __init__(
        self, clauses: "tuple[FaultClause, ...]", shard: int, gen: int
    ) -> None:
        self.shard = shard
        self.gen = gen
        self.clauses = tuple(
            clause
            for clause in clauses
            if clause.shard is None or clause.shard == shard
        )

    @classmethod
    def from_spec(cls, spec: "str | None", shard: int, gen: int) -> "FaultPlan":
        return cls(parse_faults(spec), shard=shard, gen=gen)

    def fire(self, point: str, round: int = 0) -> None:
        """Apply every clause matching (*point*, *round*); may not return."""
        if not self.clauses:
            return
        for clause in self.clauses:
            if not clause.matches(self.shard, self.gen, point, round):
                continue
            if clause.kind == "crash":
                # A hard death: no cleanup, no reply, nonzero exitcode —
                # indistinguishable from a segfault at the coordinator.
                os._exit(CRASH_EXIT_CODE)
            elif clause.kind == "hang":
                time.sleep(HANG_SECONDS)
            else:  # slow
                time.sleep(clause.ms / 1000.0)

    def __repr__(self) -> str:
        described = "; ".join(clause.describe() for clause in self.clauses) or "empty"
        return f"FaultPlan(shard={self.shard}, gen={self.gen}, {described})"


@contextmanager
def fault_env(spec: "str | None"):
    """Temporarily set (or clear, with ``None``) ``HOSMINER_FAULTS``.

    Worker pools read the variable once, at construction — wrap the call
    that spawns the pool (the first multi-worker ``query_batch`` after a
    ``close()``), not the queries that reuse it.
    """
    previous = os.environ.get("HOSMINER_FAULTS")
    if spec is None:
        os.environ.pop("HOSMINER_FAULTS", None)
    else:
        os.environ["HOSMINER_FAULTS"] = spec
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("HOSMINER_FAULTS", None)
        else:
            os.environ["HOSMINER_FAULTS"] = previous

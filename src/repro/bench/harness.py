"""Experiment harness: declarative experiment objects with saved artefacts.

Each experiment (``repro bench --list`` shows the index) renders one
:class:`Experiment`, fills its table, and optionally saves a JSON record
under ``results/``. The declarative layer (:mod:`repro.bench.spec`,
:mod:`repro.bench.runner`) produces these tables from specs, so the
benchmark files under ``benchmarks/`` and the CLI print identical
tables wherever they are produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.reporting import Table, save_json

__all__ = ["Experiment", "timed"]


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class Experiment:
    """A named experiment with one results table.

    Attributes
    ----------
    experiment_id:
        Short id from the experiment index (``"E1"``, ``"F1"``, ...;
        ``repro bench --list`` enumerates them).
    title:
        Human title printed above the table.
    expectation:
        The *shape* the paper predicts (printed with the table so every
        run restates what to look for).
    columns:
        Table columns.
    """

    experiment_id: str
    title: str
    columns: list[str]
    expectation: str = ""
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._table = Table(self.columns, title=f"{self.experiment_id}: {self.title}")

    # ------------------------------------------------------------------
    def add_row(self, **named: object) -> None:
        self._table.add_row(**named)

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def table(self) -> Table:
        return self._table

    # ------------------------------------------------------------------
    def render(self) -> str:
        parts = [self._table.render()]
        if self.expectation:
            parts.append(f"expected shape: {self.expectation}")
        parts.extend(f"note: {text}" for text in self.notes)
        return "\n".join(parts)

    def render_markdown(self) -> str:
        parts = [self._table.render_markdown()]
        if self.expectation:
            parts.append(f"\n*Expected shape*: {self.expectation}")
        parts.extend(f"\n*Note*: {text}" for text in self.notes)
        return "\n".join(parts)

    def print(self) -> None:
        print(self.render())
        print()

    def save(self, directory: str = "results") -> str:
        """Persist the experiment as JSON; returns the path."""
        path = f"{directory}/{self.experiment_id.lower()}.json"
        save_json(
            path,
            {
                "id": self.experiment_id,
                "title": self.title,
                "expectation": self.expectation,
                "notes": self.notes,
                "rows": self._table.as_records(),
            },
        )
        return path

"""Plain-text / markdown tables and JSON dumps for experiment output.

Every benchmark prints the same kind of artefact the paper's demo would
show on screen: a small table of parameter settings vs measured
quantities. No plotting dependency exists offline, so "figures" are
rendered as their underlying data series.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

__all__ = ["Table", "format_value", "save_json"]


def format_value(value: object) -> str:
    """Human formatting: floats get adaptive precision, the rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


class Table:
    """A fixed-column results table with text and markdown renderers."""

    def __init__(self, columns: Iterable[str], title: str = "") -> None:
        self.columns = list(columns)
        if not self.columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values: object, **named: object) -> None:
        """Append a row positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass positional values or named values, not both")
        if named:
            missing = [column for column in self.columns if column not in named]
            if missing:
                raise ValueError(f"missing columns: {missing}")
            values = tuple(named[column] for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_value(value) for value in values])

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Monospace text table."""
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(name.ljust(width) for name, width in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown table."""
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def as_records(self) -> list[dict[str, str]]:
        """Rows as dictionaries (for JSON dumps)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def print(self) -> None:
        print(self.render())
        print()


def save_json(path: str, payload: object) -> None:
    """Write a JSON artefact, creating parent directories as needed."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Shared workload construction for the experiment suite.

Centralising dataset/query construction keeps every experiment (and its
pytest-benchmark twin) on *identical* inputs, so numbers in
EXPERIMENTS.md can be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.miner import HOSMiner
from repro.data.synthetic import Dataset, make_planted_outliers

__all__ = ["Workload", "planted_workload", "standard_miner"]

#: Seed base for every experiment workload; per-config offsets keep
#: configurations independent but reproducible.
SEED = 20040830  # VLDB 2004 opened on 30 Aug 2004.


@dataclass(slots=True)
class Workload:
    """A dataset plus the rows every method will be queried on."""

    dataset: Dataset
    query_rows: list[int]

    @property
    def planted_queries(self) -> list[int]:
        planted = set(self.dataset.outlier_rows)
        return [row for row in self.query_rows if row in planted]

    @property
    def inlier_queries(self) -> list[int]:
        planted = set(self.dataset.outlier_rows)
        return [row for row in self.query_rows if row not in planted]


def planted_workload(
    n: int,
    d: int,
    n_outliers: int = 4,
    n_inlier_queries: int = 4,
    subspace_dims: "tuple[int, ...] | int" = (2, 3),
    displacement: float = 8.0,
    seed_offset: int = 0,
) -> Workload:
    """The standard E-series workload: planted outliers + inlier controls.

    Query rows are all planted outliers plus ``n_inlier_queries``
    deterministic non-planted rows.
    """
    dataset = make_planted_outliers(
        n=n,
        d=d,
        n_outliers=n_outliers,
        subspace_dims=subspace_dims,
        displacement=displacement,
        seed=SEED + seed_offset,
    )
    rng = np.random.default_rng(SEED + seed_offset + 999)
    inliers = rng.choice(
        np.arange(n_outliers, n), size=n_inlier_queries, replace=False
    )
    query_rows = list(range(n_outliers)) + sorted(int(row) for row in inliers)
    return Workload(dataset=dataset, query_rows=query_rows)


def standard_miner(
    workload: Workload,
    k: int = 5,
    sample_size: int = 8,
    threshold_quantile: float = 0.99,
    **overrides,
) -> HOSMiner:
    """A fitted miner with the E-series default configuration."""
    miner = HOSMiner(
        k=k,
        sample_size=sample_size,
        threshold_quantile=threshold_quantile,
        **overrides,
    )
    return miner.fit(workload.dataset.X)

"""Shared workload construction for the experiment and benchmark suite.

This module is the single source of truth for dataset-generation
defaults: the E-series planted workloads, the standard miner
configuration, the traffic-shaped batch targets (E12), the random
level-mask batches (E13), and the fixed setups behind the
pytest-benchmark twins in ``benchmarks/``. Centralising them keeps
every experiment spec, benchmark script and fixture on *identical*
inputs, so published table values can be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.miner import HOSMiner
from repro.data.synthetic import Dataset, make_planted_outliers

__all__ = [
    "SEED",
    "E13_SEED",
    "E14_SEED",
    "E15_SEED",
    "E17_SEED",
    "Workload",
    "planted_workload",
    "standard_miner",
    "standard_workload_d10",
    "uniform_16d",
    "make_traffic",
    "make_level_masks",
    "small_batch_setup",
    "kernel_cell_setup",
    "stream_setup",
]

#: Seed base for every experiment workload; per-config offsets keep
#: configurations independent but reproducible.
SEED = 20040830  # VLDB 2004 opened on 30 Aug 2004.

#: Seed for the E13 kernel microbenchmark (E-series offset convention).
E13_SEED = SEED + 13

#: Seed for the E14 memory-ceiling benchmark.
E14_SEED = SEED + 14

#: Seed for the E15 sharded scatter-gather benchmark.
E15_SEED = SEED + 15

#: Seed for the E17 streaming-engine benchmark.
E17_SEED = SEED + 17


@dataclass(slots=True)
class Workload:
    """A dataset plus the rows every method will be queried on."""

    dataset: Dataset
    query_rows: list[int]

    @property
    def planted_queries(self) -> list[int]:
        planted = set(self.dataset.outlier_rows)
        return [row for row in self.query_rows if row in planted]

    @property
    def inlier_queries(self) -> list[int]:
        planted = set(self.dataset.outlier_rows)
        return [row for row in self.query_rows if row not in planted]


def planted_workload(
    n: int,
    d: int,
    n_outliers: int = 4,
    n_inlier_queries: int = 4,
    subspace_dims: "tuple[int, ...] | int" = (2, 3),
    displacement: float = 8.0,
    seed_offset: int = 0,
) -> Workload:
    """The standard E-series workload: planted outliers + inlier controls.

    Query rows are all planted outliers plus ``n_inlier_queries``
    deterministic non-planted rows.
    """
    dataset = make_planted_outliers(
        n=n,
        d=d,
        n_outliers=n_outliers,
        subspace_dims=subspace_dims,
        displacement=displacement,
        seed=SEED + seed_offset,
    )
    rng = np.random.default_rng(SEED + seed_offset + 999)
    inliers = rng.choice(
        np.arange(n_outliers, n), size=n_inlier_queries, replace=False
    )
    query_rows = list(range(n_outliers)) + sorted(int(row) for row in inliers)
    return Workload(dataset=dataset, query_rows=query_rows)


def standard_miner(
    workload: Workload,
    k: int = 5,
    sample_size: int = 8,
    threshold_quantile: float = 0.99,
    **overrides,
) -> HOSMiner:
    """A fitted miner with the E-series default configuration."""
    miner = HOSMiner(
        k=k,
        sample_size=sample_size,
        threshold_quantile=threshold_quantile,
        **overrides,
    )
    return miner.fit(workload.dataset.X)


# ----------------------------------------------------------------------
# Fixture-grade defaults (shared with benchmarks/conftest.py)
# ----------------------------------------------------------------------
def standard_workload_d10() -> Workload:
    """The canonical fixture workload: n=1000, d=10, planted outliers."""
    return planted_workload(n=1000, d=10, seed_offset=0)


def uniform_16d() -> np.ndarray:
    """Uniform high-d data — the X-tree supernode regime."""
    return np.random.default_rng(8).uniform(size=(2000, 16))


# ----------------------------------------------------------------------
# E12 — traffic-shaped batch targets
# ----------------------------------------------------------------------
def make_traffic(workload: Workload, m: int, hot_fraction: float = 0.3) -> list:
    """A traffic-shaped target list: rows, external points, repeats.

    Production query streams are Zipf-heavy — a small set of hot points
    accounts for a disproportionate share of requests. Here roughly
    ``hot_fraction`` of the batch re-queries a small hot set (rows and
    external points alike), the planted outliers are queried (the
    expensive searches real monitoring traffic cares about), and the
    rest are unique rows and fresh external points near the manifold.
    """
    X = workload.dataset.X
    n, d = X.shape
    rng = np.random.default_rng(SEED + 4242)
    targets: list = list(workload.query_rows)

    hot_rows = [int(row) for row in rng.choice(n, size=4, replace=False)]
    hot_points = list(
        X[rng.choice(n, size=4, replace=False)]
        + rng.normal(scale=0.05, size=(4, d))
    )
    # The planted outliers belong in the hot set: monitoring traffic
    # re-polls exactly the entities it has flagged, and those are the
    # expensive (eval-heavy) searches.
    hot_pool = list(workload.query_rows) + hot_rows + hot_points
    while len(targets) < m:
        draw = rng.random()
        if draw < hot_fraction:
            targets.append(hot_pool[int(rng.integers(len(hot_pool)))])
        elif draw < 0.5 + hot_fraction / 2:
            targets.append(int(rng.integers(n)))
        else:
            base = X[int(rng.integers(n))] + rng.normal(scale=0.05, size=d)
            targets.append(base)
    return targets[:m]


def small_batch_setup(**overrides):
    """The E12 pytest-benchmark twin setup: a small fixed batch.

    Returns ``(miner, targets)`` for 64 traffic-shaped queries on an
    n=600, d=8 workload — big enough to exercise the batch engine,
    small enough for per-round benchmark timing. Keyword *overrides*
    reach the miner config (the E16 twins arm supervision deadlines).
    """
    workload = planted_workload(n=600, d=8, seed_offset=12)
    miner = standard_miner(workload, threshold_quantile=0.9, **overrides)
    targets = make_traffic(workload, 64)
    return miner, targets


# ----------------------------------------------------------------------
# E13 — level-wide kernel inputs
# ----------------------------------------------------------------------
def make_level_masks(rng: np.random.Generator, d: int, width: int) -> list[np.ndarray]:
    """A level-ish batch of *width* random subspace masks over ``d`` dims.

    Real rounds mix levels (different searches expand different levels),
    so widths beyond one level's worth draw masks of every size — the
    kernel's cost depends on ``(n, d, width)``, not on which masks.
    """
    masks = []
    for _ in range(width):
        size = int(rng.integers(1, d + 1))
        masks.append(np.sort(rng.choice(d, size=size, replace=False)).astype(np.intp))
    return masks


# ----------------------------------------------------------------------
# E17 — streaming window inputs
# ----------------------------------------------------------------------
def stream_setup(
    window: int = 400,
    d: int = 8,
    batch_size: int = 8,
    n_batches: int = 6,
    probes: int = 16,
    drift: float = 0.05,
    **overrides,
):
    """The E17 monitoring workload: warm miner, drift batches, watchlist.

    One gently drifting stream supplies *both* the warm window (its
    first ``window / batch_size`` batches, vstacked) and the batches
    pushed afterwards, so fresh rows are drawn from the same wandering
    mixture the window tracks — mostly inliers, the regime where the
    delta cache retains. The watchlist is a fixed set of near-manifold
    monitoring points (warm rows plus small noise) re-polled every
    cycle; its cache keys are stable across pushes, which is exactly
    what the incremental arm gets paid for.

    Returns ``(miner, batches, watchlist)``: a miner fitted on the warm
    window with ``stream_window`` armed and config-default priors, the
    oldest-first stream batches, and the watchlist points. Keyword
    *overrides* reach the miner config (the full-tier cells arm
    ``index`` and ``workers``).
    """
    from repro.data.synthetic import make_drift_stream

    if window % batch_size:
        raise ValueError(
            f"window ({window}) must be a multiple of batch_size ({batch_size})"
        )
    prefix = window // batch_size
    stream = make_drift_stream(
        prefix + n_batches, batch_size, d, drift_per_batch=drift, seed=E17_SEED
    )
    warm = np.vstack(stream[:prefix])
    miner = HOSMiner(
        k=5,
        sample_size=10,
        threshold_quantile=0.95,
        stream_window=window,
        **overrides,
    )
    miner.fit(warm)
    rng = np.random.default_rng(E17_SEED + 1)
    watchlist = [
        warm[i] + rng.normal(scale=0.05, size=d)
        for i in rng.choice(window, probes, replace=False)
    ]
    return miner, stream[prefix:], watchlist


def kernel_cell_setup(n: int = 2000, d: int = 12, width: int = 64):
    """The E13 pytest-benchmark twin setup: one representative kernel cell.

    Returns ``(backend, query, masks, components)`` drawn with the E13
    seed, matching one cell of the full sweep.
    """
    from repro.index.linear import LinearScanIndex

    rng = np.random.default_rng(E13_SEED)
    X = rng.normal(size=(n, d))
    query = rng.normal(size=d)
    backend = LinearScanIndex(X)
    masks = make_level_masks(rng, d, width)
    components = backend.distance_components(query)
    return backend, query, masks, components

"""Canonical ``BENCH_*.json`` snapshots and the regression comparator.

A snapshot is the serialized :class:`~repro.bench.runner.SpecResult` of
one spec at one tier. Two snapshots of the same spec are comparable
condition by condition because conditions carry stable parameter hashes
(:func:`repro.bench.spec.param_hash`); the comparator walks the matched
pairs and flags every gated measure that moved in its bad direction by
more than the tolerance. ``BENCH_e12.json`` and ``BENCH_e13.json`` at
the repo root are the committed baselines; CI re-runs the smoke tier and
fails when a gated measure regresses by more than 15%.

Schema (version 2)::

    {
      "schema_version": 2,
      "experiment": "e13",
      "title": "...",
      "tier": "smoke",
      "metadata": {git_sha, git_dirty, python, numpy, blas, machine,
                   platform, timestamp, ...},
      "regression": {"speedup": "higher", ...},
      "notes": [...],
      "conditions": [
        {"params": {...}, "param_hash": "...", "repeats": N,
         "wall_time_s": ..., "cpu_time_s": ...,
         "wall_time_p50_s": ..., "wall_time_p99_s": ...,
         "reverify_fraction": ... | null,
         "counters": {"gemm_flops": ..., "gemm_masks": ...,
                      "reverified_masks": ...,
                      "peak_intermediate_bytes": ..., ...},
         "rows": [{measure: value, ...}, ...]},
        ...
      ]
    }

Version 2 is a strict superset of version 1: it adds the latency
percentile columns (``wall_time_p50_s``/``wall_time_p99_s``, computed
over the repeat loop), the derived ``reverify_fraction``
(``reverified_masks / gemm_masks``; ``null`` for conditions that ran no
GEMM masks), and the high-water ``peak_*`` counters, which aggregate by
``max`` across rows rather than by sum. Version-1 baselines still load —
the comparator only reads the required keys — so old snapshots remain
comparable against fresh version-2 runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SnapshotError",
    "RegressionReport",
    "Comparison",
    "DEFAULT_TOLERANCE",
    "snapshot_path",
    "save_snapshot",
    "load_snapshot",
    "validate_snapshot",
    "compare_snapshots",
]

#: CI gate: a gated measure may move at most this fraction in its bad
#: direction before the comparison fails.
DEFAULT_TOLERANCE = 0.15

_REQUIRED_TOP_LEVEL = ("schema_version", "experiment", "tier", "metadata", "conditions")
_REQUIRED_CONDITION = ("params", "param_hash", "rows")


class SnapshotError(ValueError):
    """A snapshot that does not satisfy the schema."""


def snapshot_path(name: str, directory: str = ".") -> str:
    """The canonical location of a committed baseline: ``BENCH_<name>.json``."""
    return os.path.join(directory, f"BENCH_{name}.json")


def validate_snapshot(payload: Any) -> dict[str, Any]:
    """Check *payload* against the snapshot schema; return it on success.

    Versions 1 and 2 are both accepted — version 2 only adds keys, so
    the shared required-key checks cover both.
    """
    if not isinstance(payload, dict):
        raise SnapshotError(f"snapshot must be a JSON object, got {type(payload).__name__}")
    missing = [key for key in _REQUIRED_TOP_LEVEL if key not in payload]
    if missing:
        raise SnapshotError(f"snapshot missing top-level keys: {missing}")
    if payload["schema_version"] not in (1, 2):
        raise SnapshotError(
            f"unsupported schema_version {payload['schema_version']!r} (expected 1 or 2)"
        )
    if not isinstance(payload["conditions"], list) or not payload["conditions"]:
        raise SnapshotError("snapshot must record at least one condition")
    seen_hashes = set()
    for index, condition in enumerate(payload["conditions"]):
        if not isinstance(condition, dict):
            raise SnapshotError(f"condition #{index} is not an object")
        missing = [key for key in _REQUIRED_CONDITION if key not in condition]
        if missing:
            raise SnapshotError(f"condition #{index} missing keys: {missing}")
        if not isinstance(condition["rows"], list):
            raise SnapshotError(f"condition #{index} rows must be a list")
        if condition["param_hash"] in seen_hashes:
            raise SnapshotError(
                f"duplicate param_hash {condition['param_hash']!r} — two "
                f"conditions with identical parameters"
            )
        seen_hashes.add(condition["param_hash"])
    return payload


def save_snapshot(payload: dict[str, Any], path: str) -> str:
    """Validate and write a snapshot; returns *path*."""
    validate_snapshot(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> dict[str, Any]:
    """Read and validate a snapshot file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path!r}") from None
    except json.JSONDecodeError as error:
        raise SnapshotError(f"{path!r} is not valid JSON: {error}") from None
    return validate_snapshot(payload)


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """One gated measure of one matched condition, baseline vs fresh."""

    param_hash: str
    params: dict[str, Any]
    key: str
    direction: str  # "higher" (throughput-like) or "lower" (latency-like)
    baseline: float
    fresh: float
    change: float  # signed relative change, fresh vs baseline
    regressed: bool

    def describe(self) -> str:
        arrow = "↓" if self.fresh < self.baseline else "↑"
        tag = "REGRESSION" if self.regressed else "ok"
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"[{tag}] {self.key} ({params}): "
            f"{self.baseline:.4g} -> {self.fresh:.4g} ({arrow}{abs(self.change):.1%})"
        )


@dataclass
class RegressionReport:
    """The outcome of comparing a fresh run against a committed baseline."""

    experiment: str
    tolerance: float
    comparisons: list[Comparison] = field(default_factory=list)
    missing_conditions: list[str] = field(default_factory=list)
    new_conditions: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def passed(self) -> bool:
        """Green iff no gated measure regressed and no baseline condition
        disappeared (new conditions are fine — grids may grow)."""
        return not self.regressions and not self.missing_conditions

    def render(self) -> str:
        lines = [
            f"{self.experiment}: {len(self.comparisons)} gated measure(s) compared "
            f"at tolerance {self.tolerance:.0%}"
        ]
        lines.extend("  " + comparison.describe() for comparison in self.comparisons)
        for param_hash in self.missing_conditions:
            lines.append(f"  [REGRESSION] baseline condition {param_hash} missing from fresh run")
        for param_hash in self.new_conditions:
            lines.append(f"  [new] condition {param_hash} has no baseline yet")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _mean_measure(condition: dict[str, Any], key: str) -> float | None:
    """A condition's value for one measure: the mean over its rows that
    carry the key numerically (a condition may contribute several rows)."""
    values = []
    for row in condition.get("rows", []):
        value = row.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        values.append(float(value))
    if not values:
        return None
    return sum(values) / len(values)


def compare_snapshots(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    keys: "dict[str, str] | None" = None,
) -> RegressionReport:
    """Compare *fresh* against *baseline*, gating the declared measures.

    Conditions are matched by parameter hash. *keys* overrides the gated
    measure map (measure -> direction); by default the baseline's
    embedded ``regression`` map is used. A measure regresses when it
    moves in its bad direction by strictly more than *tolerance*
    (relative to the baseline value); movement in the good direction or
    within the tolerance band passes.
    """
    validate_snapshot(baseline)
    validate_snapshot(fresh)
    if baseline["experiment"] != fresh["experiment"]:
        raise SnapshotError(
            f"cannot compare {fresh['experiment']!r} against a "
            f"{baseline['experiment']!r} baseline"
        )
    if not 0.0 <= tolerance < 1.0:
        raise SnapshotError(f"tolerance must be in [0, 1), got {tolerance}")
    gated = dict(baseline.get("regression", {})) if keys is None else dict(keys)
    report = RegressionReport(experiment=baseline["experiment"], tolerance=tolerance)

    fresh_by_hash = {c["param_hash"]: c for c in fresh["conditions"]}
    baseline_by_hash = {c["param_hash"]: c for c in baseline["conditions"]}
    report.new_conditions = [h for h in fresh_by_hash if h not in baseline_by_hash]

    for param_hash, base_condition in baseline_by_hash.items():
        fresh_condition = fresh_by_hash.get(param_hash)
        if fresh_condition is None:
            report.missing_conditions.append(param_hash)
            continue
        for key, direction in gated.items():
            base_value = _mean_measure(base_condition, key)
            fresh_value = _mean_measure(fresh_condition, key)
            if base_value is None or fresh_value is None:
                continue
            if base_value == 0.0:
                change = 0.0 if fresh_value == 0.0 else float("inf")
            else:
                change = (fresh_value - base_value) / abs(base_value)
            bad_move = -change if direction == "higher" else change
            report.comparisons.append(
                Comparison(
                    param_hash=param_hash,
                    params=base_condition.get("params", {}),
                    key=key,
                    direction=direction,
                    baseline=base_value,
                    fresh=fresh_value,
                    change=change,
                    regressed=bad_move > tolerance,
                )
            )
    return report

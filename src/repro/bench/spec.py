"""Declarative experiment specs: IV grids crossed into conditions.

An :class:`ExperimentSpec` *declares* an experiment instead of scripting
it: a grid of independent variables (each a name mapped to its levels),
per-tier grid overrides (``smoke`` for CI, the full grid for published
tables), fixed context, and a measurement function that receives one
concrete condition and returns its measures. The harness — not the
experiment — owns crossing, ordering, hashing, warm-up/repeat policy,
metadata stamping and serialization, so every benchmark in the suite
produces the same kind of artifact (see ``docs/benchmarking.md``).

The design follows two exemplars: *experimentator*-style IV grids
crossed into a deterministic condition list, and *versuchung*-style
parameter hashing so a run's identity is a stable function of exactly
its inputs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "Condition",
    "ExperimentSpec",
    "SpecError",
    "cross_grid",
    "param_hash",
]

#: Recognised tier names, in increasing cost order.
TIERS = ("smoke", "full")


class SpecError(ValueError):
    """A malformed spec, grid or tier request."""


def _canonical(value: Any) -> Any:
    """Map a parameter value onto its canonical JSON form.

    Tuples become lists, numpy scalars become Python scalars (via their
    ``item()`` hook), and nested containers are converted recursively so
    two logically identical parameter sets always serialize to the same
    bytes regardless of how they were constructed.
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def param_hash(params: Mapping[str, Any]) -> str:
    """A stable 12-hex-digit identity for one parameter assignment.

    The hash is computed over the canonical JSON serialization with
    sorted keys, so it is independent of dict insertion order, of
    tuple-vs-list spelling, and of the process that computes it —
    the property that lets committed snapshots be matched condition by
    condition against a fresh run months later.
    """
    payload = json.dumps(_canonical(dict(params)), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def cross_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cross a grid of IV levels into the full list of conditions.

    The crossing is exhaustive (every combination appears exactly once)
    and deterministic: factors vary in declaration order, the last
    declared factor fastest — the order ``itertools.product`` yields for
    the declared level sequences.
    """
    if not grid:
        return [{}]
    names = list(grid)
    for name in names:
        levels = grid[name]
        if isinstance(levels, (str, bytes)) or not isinstance(levels, Sequence):
            raise SpecError(
                f"grid factor {name!r} must map to a sequence of levels, "
                f"got {type(levels).__name__}"
            )
        if len(levels) == 0:
            raise SpecError(f"grid factor {name!r} has no levels")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]


@dataclass(frozen=True)
class Condition:
    """One concrete cell of an experiment: a parameter assignment.

    ``params`` is the merged dict of crossed IV levels plus the spec's
    fixed parameters; ``param_hash`` is its stable identity (see
    :func:`param_hash`).
    """

    params: dict[str, Any]

    @property
    def hash(self) -> str:
        return param_hash(self.params)


@dataclass
class ExperimentSpec:
    """A declarative benchmark experiment.

    Attributes
    ----------
    name:
        Registry id (``"e13"``); snapshots are named ``BENCH_<name>.json``.
    title:
        Human title printed above the results table.
    grid:
        Independent variables: factor name -> sequence of levels. The
        *full*-tier grid; crossed exhaustively into conditions.
    smoke:
        Per-factor overrides applied on the smoke tier (CI-sized grids).
        Factors absent from ``smoke`` keep their full-tier levels.
    fixed:
        Constant parameters merged into every condition (and hashed with
        it, so changing a constant changes every condition's identity).
    run:
        The measurement function. Called once per (warm-up or measured)
        repeat as ``run(ctx, **params)`` where ``ctx`` is the value
        returned by ``setup`` (or ``None``); must return one measures
        dict or a list of measures dicts (one table row each). Keys
        starting with ``"_"`` are harness side-channels, not measures:
        ``"_note"`` adds a table footnote, ``"_counters"`` attaches a
        dict of backend cost counters to the condition record.
    setup:
        Optional per-run context builder, called once per
        :func:`~repro.bench.runner.run_spec` invocation as
        ``setup(tier)``. Use it for state the original scripts shared
        across conditions (a workload fitted once, an RNG consumed
        sequentially) so ported experiments reproduce their pre-harness
        numbers exactly.
    columns:
        Table column order. Measure keys not listed are appended in
        first-seen order; listing keeps published tables stable.
    expectation:
        The shape the paper predicts — printed with every table.
    notes:
        Static footnotes (dynamic ones come from ``"_note"``).
    warmup / repeats:
        Harness-level repeat policy: each condition is executed
        ``warmup`` unmeasured times, then ``repeats`` measured times;
        numeric measures are aggregated by median, wall/CPU time by
        minimum. Specs that time internally keep the defaults (0/1).
    regression:
        Gated measures for the CI snapshot comparator: measure key ->
        ``"higher"`` (throughput-like, regression = drop) or ``"lower"``
        (latency-like, regression = rise). Empty means the spec is
        tracked but never gates.
    """

    name: str
    title: str
    run: Callable[..., Any]
    grid: dict[str, Sequence[Any]] = field(default_factory=dict)
    smoke: dict[str, Sequence[Any]] = field(default_factory=dict)
    fixed: dict[str, Any] = field(default_factory=dict)
    setup: Callable[[str], Any] | None = None
    columns: list[str] = field(default_factory=list)
    expectation: str = ""
    notes: list[str] = field(default_factory=list)
    warmup: int = 0
    repeats: int = 1
    regression: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("a spec needs a non-empty name")
        if self.warmup < 0 or self.repeats < 1:
            raise SpecError(
                f"spec {self.name!r}: warmup must be >= 0 and repeats >= 1, "
                f"got warmup={self.warmup}, repeats={self.repeats}"
            )
        unknown = set(self.smoke) - set(self.grid)
        if unknown:
            raise SpecError(
                f"spec {self.name!r}: smoke overrides unknown factors {sorted(unknown)}"
            )
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise SpecError(
                f"spec {self.name!r}: {sorted(overlap)} appear in both grid and fixed"
            )
        bad = {k: v for k, v in self.regression.items() if v not in ("higher", "lower")}
        if bad:
            raise SpecError(
                f"spec {self.name!r}: regression directions must be "
                f"'higher' or 'lower', got {bad}"
            )

    # ------------------------------------------------------------------
    def tier_grid(self, tier: str) -> dict[str, Sequence[Any]]:
        """The effective grid at *tier* (smoke overrides applied)."""
        if tier not in TIERS:
            raise SpecError(f"unknown tier {tier!r}; expected one of {TIERS}")
        if tier == "full":
            return dict(self.grid)
        return {name: self.smoke.get(name, levels) for name, levels in self.grid.items()}

    def conditions(self, tier: str = "smoke") -> list[Condition]:
        """The exhaustive, deterministically ordered condition list."""
        return [
            Condition(params={**assignment, **self.fixed})
            for assignment in cross_grid(self.tier_grid(tier))
        ]

"""The experiment suite — one declarative spec per experiment.

Every experiment is an :class:`~repro.bench.spec.ExperimentSpec`: a grid
of independent variables crossed into conditions, an optional shared
setup (workloads the original scripts built once and swept a knob over),
and a measurement function returning one table row (or several) per
condition. :func:`~repro.bench.runner.run_spec` executes specs — from
the ``benchmarks/`` scripts, the ``bench``/``experiment`` CLI
subcommands, and CI alike — so measured numbers are identical regardless
of entry point and serialize to the canonical ``BENCH_*.json`` schema
(``docs/benchmarking.md`` documents both).

The classic ``<id>(fast=True) -> Experiment`` functions remain as thin
shims over their specs; ``fast=True`` maps to the ``smoke`` tier (CI
grids, seconds), ``fast=False`` to ``full`` (published grids). Tables
never change shape between tiers — only the number of rows.

End-to-end perf specs (e12/e13) live in :mod:`repro.bench.perf`; the
merged registry is :data:`repro.bench.ALL_SPECS`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.evolutionary import EvolutionaryConfig, EvolutionarySubspaceSearch
from repro.baselines.naive_search import exhaustive_search, fixed_order_search
from repro.bench.harness import Experiment, timed
from repro.bench.measures import planted_recovery, set_scores
from repro.bench.runner import run_spec
from repro.bench.spec import ExperimentSpec
from repro.bench.workloads import SEED, Workload, planted_workload, standard_miner
from repro.core.filtering import minimal_masks
from repro.core.miner import HOSMiner
from repro.core.od import ODEvaluator
from repro.core.priors import PruningPriors
from repro.core.savings import downward_saving_factor, upward_saving_factor
from repro.core.search import DynamicSubspaceSearch
from repro.core.subspace import Subspace
from repro.data.synthetic import make_figure1_data, make_uniform_noise
from repro.index import LinearScanIndex, RStarTree, VAFile, XTree

__all__ = [
    "f1_figure1",
    "e0_savings",
    "e1_scalability_n",
    "e2_scalability_d",
    "e3_sample_size",
    "e4_threshold",
    "e5_k_neighbours",
    "e6_effectiveness",
    "e7_vs_evolutionary",
    "e8_index",
    "e9_filter",
    "e10_ablation",
    "e11_xtree_overlap",
    "ALL_EXPERIMENTS",
    "SPECS",
]


def _tier(fast: bool) -> str:
    return "smoke" if fast else "full"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _fresh_outcome(miner: HOSMiner, row: int):
    """Run one query and return (outcome, evaluator) with cold caches."""
    return miner.search_outcome(row)


def _avg_query_cost(miner: HOSMiner, rows: list[int]) -> tuple[float, float]:
    """(mean OD evaluations, mean wall seconds) over fresh queries."""
    evaluations, seconds = [], []
    for row in rows:
        outcome, _ = _fresh_outcome(miner, row)
        evaluations.append(outcome.stats.od_evaluations)
        seconds.append(outcome.stats.wall_time_s)
    return float(np.mean(evaluations)), float(np.mean(seconds))


def _split_query_cost(
    miner: HOSMiner, workload: Workload
) -> tuple[float, float, float]:
    """(mean evals on planted queries, mean evals on inlier queries,
    mean wall seconds over all queries)."""
    outlier_evals, inlier_evals, seconds = [], [], []
    planted = set(workload.dataset.outlier_rows)
    for row in workload.query_rows:
        outcome, _ = _fresh_outcome(miner, row)
        seconds.append(outcome.stats.wall_time_s)
        bucket = outlier_evals if row in planted else inlier_evals
        bucket.append(outcome.stats.od_evaluations)
    return (
        float(np.mean(outlier_evals)) if outlier_evals else 0.0,
        float(np.mean(inlier_evals)) if inlier_evals else 0.0,
        float(np.mean(seconds)),
    )


def _exhaustive_cost(miner: HOSMiner, rows: list[int]) -> tuple[float, float]:
    """Same, for the exhaustive oracle on identical queries."""
    evaluations, seconds = [], []
    for row in rows:
        evaluator = ODEvaluator(
            miner.backend_, miner.backend_.data[row], miner.config.k, exclude=row
        )
        outcome = exhaustive_search(evaluator, miner.threshold_)
        evaluations.append(outcome.stats.od_evaluations)
        seconds.append(outcome.stats.wall_time_s)
    return float(np.mean(evaluations)), float(np.mean(seconds))


# ----------------------------------------------------------------------
# F1 — the Figure 1 scenario
# ----------------------------------------------------------------------
def _f1_setup(tier: str) -> dict:
    n = 400 if tier == "smoke" else 2000
    dataset = make_figure1_data(n=n, seed=SEED)
    miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(dataset.X)
    evaluator = ODEvaluator(miner.backend_, dataset.X[0], miner.config.k, exclude=0)
    result = miner.query_row(0)
    note = (
        "HOS-Miner minimal outlying subspaces of p: "
        + (", ".join(s.notation() for s in result.minimal) or "(none)")
    )
    return {"dataset": dataset, "miner": miner, "evaluator": evaluator, "note": note}


def _f1_run(ctx: dict, view: tuple, n: int) -> dict:
    subspace = Subspace.from_dims(tuple(view), ctx["dataset"].d)
    od_value = ctx["evaluator"].od(subspace.mask)
    threshold = ctx["miner"].threshold_
    return {
        "view": subspace.notation(),
        "od_p": od_value,
        "threshold": threshold,
        "outlying": od_value >= threshold,
        "_note": ctx["note"],
    }


F1_SPEC = ExperimentSpec(
    name="f1",
    title="Figure 1 — outlying degree of p across three 2-d views",
    grid={"view": ((0, 1), (2, 3), (4, 5)), "n": (2000,)},
    smoke={"n": (400,)},
    setup=_f1_setup,
    run=_f1_run,
    columns=["view", "od_p", "threshold", "outlying"],
    expectation="p is an outlier only in view [1,2]; other views are ordinary",
)


def f1_figure1(fast: bool = True) -> Experiment:
    """Reproduce Figure 1: one point, three 2-d views, one outlying view."""
    return run_spec(F1_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E0 — Definitions 1–2 worked examples (the paper's only numeric table)
# ----------------------------------------------------------------------
def _e0_run(ctx, m: int) -> dict:
    return {
        "m": m,
        "DSF(m)": downward_saving_factor(m),
        "USF(m,4)": upward_saving_factor(m, 4),
    }


E0_SPEC = ExperimentSpec(
    name="e0",
    title="Saving factors in a d=4 space (Definitions 1-2)",
    grid={"m": (1, 2, 3, 4)},
    run=_e0_run,
    columns=["m", "DSF(m)", "USF(m,4)"],
    expectation="DSF(3)=9 and USF(2,4)=10 as computed in Section 3.1",
)


def e0_savings(fast: bool = True) -> Experiment:
    """DSF / USF across levels of a d=4 space, pinning the paper's numbers."""
    return run_spec(E0_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E1 / E2 — efficiency scalability
# ----------------------------------------------------------------------
def _e1_run(ctx, n: int) -> dict:
    workload = planted_workload(n=n, d=10, seed_offset=n)
    miner = standard_miner(workload)
    adaptive_miner = standard_miner(workload, adaptive=True)
    hos_evals, hos_s = _avg_query_cost(miner, workload.query_rows)
    adapt_evals, adapt_s = _avg_query_cost(adaptive_miner, workload.query_rows)
    exh_evals, exh_s = _exhaustive_cost(miner, workload.query_rows)
    return {
        "n": n,
        "exh_evals": exh_evals,
        "hos_evals": hos_evals,
        "adapt_evals": adapt_evals,
        "exh_ms": exh_s * 1e3,
        "hos_ms": hos_s * 1e3,
        "adapt_ms": adapt_s * 1e3,
        "speedup": exh_s / adapt_s if adapt_s > 0 else float("inf"),
    }


E1_SPEC = ExperimentSpec(
    name="e1",
    title="Efficiency vs dataset size n (d=10, k=5)",
    grid={"n": (500, 1000, 2000, 4000, 8000)},
    smoke={"n": (500, 1000, 2000)},
    run=_e1_run,
    columns=[
        "n",
        "exh_evals",
        "hos_evals",
        "adapt_evals",
        "exh_ms",
        "hos_ms",
        "adapt_ms",
        "speedup",
    ],
    expectation=(
        "HOS-Miner evaluates a small fraction of the 1023 subspaces at "
        "every n; the adaptive-prior extension removes the residual "
        "top-down cost on outlier queries; wall-time speedup grows "
        "with n because each saved evaluation costs a full kNN scan"
    ),
    notes=[
        "hos = paper-faithful (learned average priors); adapt = adaptive-"
        "prior extension; speedup = exh_ms / adapt_ms"
    ],
)


def e1_scalability_n(fast: bool = True) -> Experiment:
    """HOS-Miner vs exhaustive search as the dataset grows."""
    return run_spec(E1_SPEC, tier=_tier(fast)).to_experiment()


def _e2_run(ctx, d: int, n: int) -> dict:
    workload = planted_workload(n=n, d=d, seed_offset=d)
    miner = standard_miner(workload)
    adaptive_miner = standard_miner(workload, adaptive=True)
    hos_evals, _ = _avg_query_cost(miner, workload.query_rows)
    adapt_evals, adapt_s = _avg_query_cost(adaptive_miner, workload.query_rows)
    exh_evals, exh_s = _exhaustive_cost(miner, workload.query_rows)
    return {
        "d": d,
        "lattice": (1 << d) - 1,
        "exh_evals": exh_evals,
        "hos_evals": hos_evals,
        "adapt_evals": adapt_evals,
        "adapt_fraction": adapt_evals / exh_evals,
        "exh_ms": exh_s * 1e3,
        "adapt_ms": adapt_s * 1e3,
    }


E2_SPEC = ExperimentSpec(
    name="e2",
    title="Efficiency vs dimensionality d (n=2000, k=5)",
    grid={"d": (6, 8, 10, 12, 14), "n": (2000,)},
    smoke={"d": (6, 8, 10), "n": (1000,)},
    run=_e2_run,
    columns=[
        "d",
        "lattice",
        "exh_evals",
        "hos_evals",
        "adapt_evals",
        "adapt_fraction",
        "exh_ms",
        "adapt_ms",
    ],
    expectation=(
        "exhaustive cost doubles per added dimension (2^d - 1); "
        "HOS-Miner's evaluated fraction shrinks as d grows"
    ),
)


def e2_scalability_d(fast: bool = True) -> Experiment:
    """HOS-Miner vs exhaustive search as dimensionality grows."""
    return run_spec(E2_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E3 / E4 / E5 — parameter sensitivity
# ----------------------------------------------------------------------
def _e3_setup(tier: str) -> Workload:
    return planted_workload(n=1000, d=10, seed_offset=3)


def _e3_run(workload: Workload, S: int) -> dict:
    miner = standard_miner(workload, sample_size=S)
    adaptive_miner = standard_miner(workload, sample_size=S, adaptive=True)
    report = miner.learning_report_
    out_evals, in_evals, _ = _split_query_cost(miner, workload)
    adapt_out, adapt_in, _ = _split_query_cost(adaptive_miner, workload)
    return {
        "S": S,
        "learn_evals": report.total_od_evaluations,
        "learn_ms": report.wall_time_s * 1e3,
        "outlier_q_evals": out_evals,
        "inlier_q_evals": in_evals,
        "adapt_outlier_q": adapt_out,
        "adapt_inlier_q": adapt_in,
    }


E3_SPEC = ExperimentSpec(
    name="e3",
    title="Effect of learning sample size S (n=1000, d=10, k=5)",
    grid={"S": (0, 2, 5, 10, 20, 40)},
    smoke={"S": (0, 2, 5, 10)},
    setup=_e3_setup,
    run=_e3_run,
    columns=[
        "S",
        "learn_evals",
        "learn_ms",
        "outlier_q_evals",
        "inlier_q_evals",
        "adapt_outlier_q",
        "adapt_inlier_q",
    ],
    expectation=(
        "learned priors make inlier queries nearly free (the sample is "
        "inlier-dominated) but steer outlier queries top-down into "
        "their huge upward-closed answer sets; the adaptive extension "
        "keeps the inlier win and repairs the outlier cost. Learning "
        "cost itself grows linearly in S and a small S suffices — the "
        "paper's 'small number of points' claim"
    ),
)


def e3_sample_size(fast: bool = True) -> Experiment:
    """Learning sample size S vs learning cost and query cost."""
    return run_spec(E3_SPEC, tier=_tier(fast)).to_experiment()


def _e4_setup(tier: str) -> Workload:
    return planted_workload(n=1000, d=10, seed_offset=4)


def _e4_run(workload: Workload, T_quantile: float) -> dict:
    miner = standard_miner(workload, threshold_quantile=T_quantile)
    evaluations, outlying, minimal = [], [], []
    flagged_planted = flagged_inliers = 0
    for row in workload.query_rows:
        result = miner.query_row(row)
        evaluations.append(result.stats.od_evaluations)
        outlying.append(result.total_outlying)
        minimal.append(len(result.minimal))
        if result.is_outlier:
            if row in workload.dataset.outlier_rows:
                flagged_planted += 1
            else:
                flagged_inliers += 1
    return {
        "T_quantile": T_quantile,
        "T": miner.threshold_,
        "query_evals": float(np.mean(evaluations)),
        "outlying_mean": float(np.mean(outlying)),
        "minimal_mean": float(np.mean(minimal)),
        "flagged_planted": f"{flagged_planted}/{len(workload.planted_queries)}",
        "flagged_inliers": f"{flagged_inliers}/{len(workload.inlier_queries)}",
    }


E4_SPEC = ExperimentSpec(
    name="e4",
    title="Effect of threshold T (n=1000, d=10, k=5)",
    grid={"T_quantile": (0.80, 0.90, 0.95, 0.99, 0.999)},
    smoke={"T_quantile": (0.80, 0.95, 0.99)},
    setup=_e4_setup,
    run=_e4_run,
    columns=[
        "T_quantile",
        "T",
        "query_evals",
        "outlying_mean",
        "minimal_mean",
        "flagged_planted",
        "flagged_inliers",
    ],
    expectation=(
        "low T flags everything (upward pruning dominates); high T "
        "flags only planted points (downward pruning dominates); "
        "evaluations peak at intermediate T where neither rule fires early"
    ),
)


def e4_threshold(fast: bool = True) -> Experiment:
    """Distance threshold T vs pruning behaviour and answer size."""
    return run_spec(E4_SPEC, tier=_tier(fast)).to_experiment()


def _e5_setup(tier: str) -> Workload:
    return planted_workload(n=1000, d=10, seed_offset=5)


def _e5_run(workload: Workload, k: int) -> dict:
    miner = standard_miner(workload, k=k)
    evaluations, seconds, outlying, minimal = [], [], [], []
    for row in workload.query_rows:
        result = miner.query_row(row)
        evaluations.append(result.stats.od_evaluations)
        seconds.append(result.stats.wall_time_s)
        outlying.append(result.total_outlying)
        minimal.append(len(result.minimal))
    return {
        "k": k,
        "T": miner.threshold_,
        "query_evals": float(np.mean(evaluations)),
        "query_ms": float(np.mean(seconds)) * 1e3,
        "outlying_mean": float(np.mean(outlying)),
        "minimal_mean": float(np.mean(minimal)),
    }


E5_SPEC = ExperimentSpec(
    name="e5",
    title="Effect of k (n=1000, d=10)",
    grid={"k": (3, 5, 10, 15, 20)},
    smoke={"k": (3, 5, 10)},
    setup=_e5_setup,
    run=_e5_run,
    columns=["k", "T", "query_evals", "query_ms", "outlying_mean", "minimal_mean"],
    expectation=(
        "OD scales roughly linearly with k, and so does the calibrated "
        "T; detection quality is stable across moderate k — the measure "
        "is robust to its one parameter"
    ),
)


def e5_k_neighbours(fast: bool = True) -> Experiment:
    """Neighbour count k vs cost and answers (T recalibrated per k)."""
    return run_spec(E5_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E6 / E7 — head-to-head with the evolutionary method
# ----------------------------------------------------------------------
def _fit_evolutionary(
    workload: Workload, population: int, generations: int
) -> EvolutionarySubspaceSearch:
    """The comparator at its empirically best settings for this workload
    family (checked against the brute-force cube oracle): 2-d cubes over
    a coarse grid keep singleton-cell sparsity ties manageable."""
    config = EvolutionaryConfig(
        phi=4,
        target_dims=2,
        population=population,
        generations=generations,
        best_cubes=30,
        seed=SEED,
    )
    return EvolutionarySubspaceSearch(config).fit(workload.dataset.X)


#: The two E6 workload families: name -> planted_workload arguments.
E6_WORKLOADS = {
    "strong-3d": dict(
        n=1000, d=8, n_outliers=6, subspace_dims=3, displacement=8.0, seed_offset=6
    ),
    "subtle-2d": dict(
        n=1000, d=8, n_outliers=6, subspace_dims=2, displacement=6.0, seed_offset=66
    ),
}


def _e6_run(ctx, workload: str, population: int, generations: int) -> dict:
    d = 8
    workload_name = workload
    workload = planted_workload(**E6_WORKLOADS[workload_name])
    miner = standard_miner(workload)
    evolutionary = _fit_evolutionary(workload, population, generations)

    hos_recoveries, evo_recoveries = [], []
    hos_precisions, hos_recalls = [], []
    evo_precisions, evo_recalls = [], []
    for row in workload.dataset.outlier_rows:
        planted = workload.dataset.true_subspaces[row]

        evaluator = ODEvaluator(
            miner.backend_, workload.dataset.X[row], miner.config.k, exclude=row
        )
        oracle = exhaustive_search(evaluator, miner.threshold_)
        oracle_minimal = minimal_masks(oracle.outlying_masks)

        result = miner.query_row(row)
        hos_masks = [s.mask for s in result.minimal]
        scores = set_scores(hos_masks, oracle_minimal)
        hos_precisions.append(scores.precision)
        hos_recalls.append(scores.recall)
        hos_recoveries.append(planted_recovery(result.minimal, planted))

        evo_subspaces = evolutionary.subspaces_for_point(row)
        evo_masks = [s.mask for s in evo_subspaces]
        scores = set_scores(evo_masks, oracle_minimal)
        evo_precisions.append(scores.precision)
        evo_recalls.append(scores.recall)
        evo_recoveries.append(planted_recovery(evo_subspaces, planted))

    # Points each method flags as "an outlier somewhere": HOS-Miner
    # flags rows whose full-space OD reaches T (monotonicity makes
    # that the exact criterion); the evolutionary method flags
    # everything inside its best cubes.
    hos_flagged = 0
    X = workload.dataset.X
    for row in range(X.shape[0]):
        evaluator = ODEvaluator(miner.backend_, X[row], miner.config.k, exclude=row)
        if evaluator.od((1 << d) - 1) >= miner.threshold_:
            hos_flagged += 1
    rows = []
    for method, recoveries, precisions, recalls, points_flagged in [
        ("HOS-Miner", hos_recoveries, hos_precisions, hos_recalls, hos_flagged),
        (
            "Evolutionary",
            evo_recoveries,
            evo_precisions,
            evo_recalls,
            len(evolutionary.outlier_rows_),
        ),
    ]:
        rows.append(
            {
                "workload": workload_name,
                "method": method,
                "flagged": float(np.mean([r.flagged for r in recoveries])),
                "exact": float(np.mean([r.exact for r in recoveries])),
                "contained": float(np.mean([r.contained for r in recoveries])),
                "covered": float(np.mean([r.covered for r in recoveries])),
                "jaccard": float(np.mean([r.best_jaccard for r in recoveries])),
                "prec_vs_oracle": float(np.mean(precisions)),
                "rec_vs_oracle": float(np.mean(recalls)),
                "points_flagged": points_flagged,
            }
        )
    return rows


E6_SPEC = ExperimentSpec(
    name="e6",
    title="Effectiveness on planted outliers (n=1000, d=8)",
    grid={
        "workload": ("strong-3d", "subtle-2d"),
        "population": (80,),
        "generations": (60,),
    },
    smoke={"population": (40,), "generations": (25,)},
    run=_e6_run,
    columns=[
        "workload",
        "method",
        "flagged",
        "exact",
        "contained",
        "covered",
        "jaccard",
        "prec_vs_oracle",
        "rec_vs_oracle",
        "points_flagged",
    ],
    expectation=(
        "HOS-Miner matches the oracle exactly (lossless pruning) on "
        "both workloads and flags only genuinely outlying points; on "
        "the strong workload single planted dimensions already cross T "
        "so minimal answers are contained in s*; on the subtle "
        "workload only joint subspaces cross T and exact recovery is "
        "partial because planted dims mix with naturally extreme ones. "
        "The evolutionary method misses planted subspaces (sparsity "
        "ties among singleton grid cells) and flags many points for "
        "partial recall"
    ),
    notes=[
        "oracle = exhaustive OD search; 'prec/rec_vs_oracle' compare each "
        "method's minimal subspaces against the oracle's minimal set"
    ],
)


def e6_effectiveness(fast: bool = True) -> Experiment:
    """Effectiveness: HOS-Miner vs the evolutionary method vs the oracle."""
    return run_spec(E6_SPEC, tier=_tier(fast)).to_experiment()


def _e7_run(ctx, population: int, generations: int) -> list[dict]:
    workload = planted_workload(n=1000, d=8, seed_offset=7)
    miner = standard_miner(workload)
    query_evals, query_s = _avg_query_cost(miner, workload.query_rows)
    rows = [
        {
            "method": "HOS-Miner",
            "setup_ms": miner.learning_report_.wall_time_s * 1e3,
            "per_query_ms": query_s * 1e3,
            "evaluations": query_evals,
            "unit": "OD evals/query",
        }
    ]
    evolutionary, fit_s = timed(
        lambda: _fit_evolutionary(workload, population, generations)
    )
    per_point_s = fit_s / len(workload.query_rows)
    rows.append(
        {
            "method": "Evolutionary",
            "setup_ms": fit_s * 1e3,
            "per_query_ms": per_point_s * 1e3,
            "evaluations": float(evolutionary.evaluations_),
            "unit": "cube evals total",
        }
    )
    return rows


E7_SPEC = ExperimentSpec(
    name="e7",
    title="Efficiency vs the evolutionary method (n=1000, d=8)",
    grid={"population": (80,), "generations": (60,)},
    smoke={"population": (40,), "generations": (25,)},
    run=_e7_run,
    columns=["method", "setup_ms", "per_query_ms", "evaluations", "unit"],
    expectation=(
        "both methods avoid exhaustive enumeration; HOS-Miner pays a "
        "one-off learning pass and cheap per-point queries, the "
        "evolutionary method pays one global GA run that answers all "
        "points but cannot be steered to a specific query point"
    ),
    notes=[
        "evolutionary per-query cost = GA run amortised over the query set; "
        "the GA answers only 'which points fall in globally sparse cubes'"
    ],
)


def e7_vs_evolutionary(fast: bool = True) -> Experiment:
    """Efficiency: HOS-Miner vs the evolutionary method."""
    return run_spec(E7_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E8 — index substrate comparison
# ----------------------------------------------------------------------
_E8_CONFIGS_SMOKE = (("clustered", 1000, 4), ("clustered", 1000, 8), ("uniform", 2000, 16))
_E8_CONFIGS_FULL = (
    ("clustered", 1000, 4),
    ("clustered", 1000, 8),
    ("clustered", 4000, 8),
    ("clustered", 4000, 16),
    ("uniform", 2000, 16),
    ("uniform", 4000, 16),
)


def _e8_setup(tier: str) -> dict:
    """Datasets, query rows and subspace pools for every configuration.

    One RNG is consumed *sequentially* across configurations, exactly as
    the pre-harness script did, so the measured numbers are unchanged.
    """
    fast = tier == "smoke"
    configurations = _E8_CONFIGS_SMOKE if fast else _E8_CONFIGS_FULL
    rng = np.random.default_rng(SEED)
    ctx = {}
    for data_kind, n, d in configurations:
        if data_kind == "clustered":
            X = planted_workload(n=n, d=d, seed_offset=100 + d).dataset.X
        else:
            X = make_uniform_noise(n, d, seed=SEED + d).X
        queries = rng.choice(n, size=8 if fast else 25, replace=False)
        subspace_pool = [
            tuple(sorted(rng.choice(d, size=size, replace=False)))
            for size in (1, max(1, d // 2), d)
        ]
        ctx[(data_kind, n, d)] = (X, queries, subspace_pool)
    return ctx


def _e8_run(ctx: dict, config: tuple) -> list[dict]:
    data_kind, n, d = config
    X, queries, subspace_pool = ctx[(data_kind, int(n), int(d))]
    rows = []
    for name, factory in [
        ("linear", lambda: LinearScanIndex(X)),
        ("rstar", lambda: RStarTree(X, max_entries=16)),
        ("xtree", lambda: XTree(X, max_entries=16)),
        ("vafile", lambda: VAFile(X, bits=6)),
    ]:
        backend, build_s = timed(factory)
        backend.stats.reset()
        start = time.perf_counter()
        for row in queries:
            for dims in subspace_pool:
                backend.knn(X[row], 5, dims, exclude=int(row))
        elapsed = time.perf_counter() - start
        n_queries = len(queries) * len(subspace_pool)
        supernodes = backend.supernode_count() if isinstance(backend, XTree) else 0
        rows.append(
            {
                "data": data_kind,
                "n": n,
                "d": d,
                "backend": name,
                "build_ms": build_s * 1e3,
                "node_acc": backend.stats.node_accesses / n_queries,
                "dist_comp": backend.stats.distance_computations / n_queries,
                "query_ms": elapsed / n_queries * 1e3,
                "supernodes": supernodes,
            }
        )
    return rows


E8_SPEC = ExperimentSpec(
    name="e8",
    title="Index backends on subspace kNN (k=5, M=16)",
    grid={"config": _E8_CONFIGS_FULL},
    smoke={"config": _E8_CONFIGS_SMOKE},
    setup=_e8_setup,
    run=_e8_run,
    columns=[
        "data",
        "n",
        "d",
        "backend",
        "build_ms",
        "node_acc",
        "dist_comp",
        "query_ms",
        "supernodes",
    ],
    expectation=(
        "trees need far fewer node accesses / distance computations "
        "than the scan at low-to-moderate d; the gap narrows as d "
        "grows; on uniform high-d data the X-tree absorbs directory "
        "overlap into supernodes (the X-tree paper's regime) while "
        "clustered data splits cleanly for both trees; raw wall time "
        "favours the vectorised scan in pure Python (reported honestly)"
    ),
)


def e8_index(fast: bool = True) -> Experiment:
    """X-tree vs R*-tree vs linear scan on subspace kNN."""
    return run_spec(E8_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E9 — filter refinement
# ----------------------------------------------------------------------
def _e9_setup(tier: str) -> HOSMiner:
    workload = planted_workload(n=1000, d=10, n_outliers=5, seed_offset=9)
    return standard_miner(workload)


def _e9_run(miner: HOSMiner, query_row: int) -> dict:
    result = miner.query_row(query_row)
    return {
        "query_row": query_row,
        "outlying_total": result.total_outlying,
        "minimal": len(result.minimal),
        "refinement_factor": result.refinement_factor,
    }


E9_SPEC = ExperimentSpec(
    name="e9",
    title="Result refinement (n=1000, d=10, planted outliers)",
    grid={"query_row": (0, 1, 2, 3, 4)},
    setup=_e9_setup,
    run=_e9_run,
    columns=["query_row", "outlying_total", "minimal", "refinement_factor"],
    expectation=(
        "the upward-closed answer set is dominated by implied "
        "supersets; the filter routinely collapses it by one to two "
        "orders of magnitude"
    ),
    notes=[
        "paper worked example: {[1,3],[2,4],+5 supersets} -> filter keeps "
        "[1,3],[2,4] (pinned in tests/test_filtering.py)"
    ],
)


def e9_filter(fast: bool = True) -> Experiment:
    """How much the Section 3.4 filter shrinks the raw answer set."""
    return run_spec(E9_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E10 — search-order ablation
# ----------------------------------------------------------------------
def _e10_setup(tier: str) -> dict:
    workload = planted_workload(n=1000, d=10, seed_offset=10)
    miner = standard_miner(workload)
    backend = miner.backend_
    X = workload.dataset.X

    def evaluator_for(row: int) -> ODEvaluator:
        return ODEvaluator(backend, X[row], miner.config.k, exclude=row)

    oracle_answers = {
        row: frozenset(
            exhaustive_search(evaluator_for(row), miner.threshold_).outlying_masks
        )
        for row in workload.query_rows
    }
    return {
        "workload": workload,
        "miner": miner,
        "evaluator_for": evaluator_for,
        "uniform": PruningPriors.uniform(backend.d),
        "oracle_answers": oracle_answers,
    }


def _e10_run(ctx: dict, strategy: str) -> dict:
    workload, miner = ctx["workload"], ctx["miner"]
    evaluator_for = ctx["evaluator_for"]
    threshold = miner.threshold_
    learned = miner.priors_
    runners = {
        "exhaustive": lambda row: exhaustive_search(evaluator_for(row), threshold),
        "bottom_up": lambda row: fixed_order_search(
            evaluator_for(row), threshold, "bottom_up"
        ),
        "top_down": lambda row: fixed_order_search(
            evaluator_for(row), threshold, "top_down"
        ),
        "tsf_uniform": lambda row: DynamicSubspaceSearch(
            evaluator_for(row), threshold, ctx["uniform"]
        ).run(),
        "tsf_learned": lambda row: DynamicSubspaceSearch(
            evaluator_for(row), threshold, learned
        ).run(),
        "tsf_learned_fine": lambda row: DynamicSubspaceSearch(
            evaluator_for(row), threshold, learned, reselect="evaluation"
        ).run(),
        "tsf_adaptive": lambda row: DynamicSubspaceSearch(
            evaluator_for(row), threshold, learned, adaptive=True
        ).run(),
    }
    runner = runners[strategy]
    planted = set(workload.dataset.outlier_rows)
    outlier_evals, inlier_evals, seconds, matches = [], [], [], True
    for row in workload.query_rows:
        outcome = runner(row)
        bucket = outlier_evals if row in planted else inlier_evals
        bucket.append(outcome.stats.od_evaluations)
        seconds.append(outcome.stats.wall_time_s)
        if frozenset(outcome.outlying_masks) != ctx["oracle_answers"][row]:
            matches = False
    return {
        "strategy": strategy,
        "outlier_q_evals": float(np.mean(outlier_evals)),
        "inlier_q_evals": float(np.mean(inlier_evals)),
        "query_ms": float(np.mean(seconds)) * 1e3,
        "answers_match_oracle": matches,
    }


E10_SPEC = ExperimentSpec(
    name="e10",
    title="Search-order ablation (n=1000, d=10, k=5)",
    grid={
        "strategy": (
            "exhaustive",
            "bottom_up",
            "top_down",
            "tsf_uniform",
            "tsf_learned",
            "tsf_learned_fine",
            "tsf_adaptive",
        )
    },
    setup=_e10_setup,
    run=_e10_run,
    columns=[
        "strategy",
        "outlier_q_evals",
        "inlier_q_evals",
        "query_ms",
        "answers_match_oracle",
    ],
    expectation=(
        "every pruning strategy returns the oracle answer (pruning is "
        "lossless); exhaustive is the ceiling; fixed sweeps are "
        "one-sided (bottom-up good for outliers, top-down for "
        "inliers); TSF with learned priors wins on inliers but pays "
        "on outliers; the adaptive extension is strong on both"
    ),
)


def e10_ablation(fast: bool = True) -> Experiment:
    """What TSF scheduling and learning each contribute."""
    return run_spec(E10_SPEC, tier=_tier(fast)).to_experiment()


# ----------------------------------------------------------------------
# E11 — X-tree design-choice ablation: the max_overlap knob
# ----------------------------------------------------------------------
def _e11_setup(tier: str) -> dict:
    n, d = (1500, 16) if tier == "smoke" else (4000, 16)
    X = make_uniform_noise(n, d, seed=SEED + 11).X
    rng = np.random.default_rng(SEED)
    queries = rng.choice(n, size=10 if tier == "smoke" else 25, replace=False)
    return {"X": X, "queries": queries, "dims": tuple(range(0, d, 2))}


def _e11_run(ctx: dict, max_overlap: float, n: int) -> dict:
    X, queries = ctx["X"], ctx["queries"]
    tree = XTree(X, max_entries=8, max_overlap=max_overlap)
    tree.stats.reset()
    for row in queries:
        tree.knn(X[row], 5, ctx["dims"], exclude=int(row))
    return {
        "max_overlap": max_overlap,
        "supernodes": tree.supernode_count(),
        "max_blocks": tree.max_supernode_blocks(),
        "nodes": tree.node_count(),
        "node_acc": tree.stats.node_accesses / len(queries),
        "dist_comp": tree.stats.distance_computations / len(queries),
    }


E11_SPEC = ExperimentSpec(
    name="e11",
    title="X-tree max_overlap ablation (uniform data, d=16, M=8)",
    grid={"max_overlap": (0.0, 0.1, 0.2, 0.5, 1.0), "n": (4000,)},
    smoke={"max_overlap": (0.0, 0.2, 1.0), "n": (1500,)},
    setup=_e11_setup,
    run=_e11_run,
    columns=[
        "max_overlap",
        "supernodes",
        "max_blocks",
        "nodes",
        "node_acc",
        "dist_comp",
    ],
    expectation=(
        "small max_overlap creates more/wider supernodes (fewer, "
        "fatter nodes — scan-like); large max_overlap accepts "
        "overlapping splits (R*-like directories whose regions "
        "overlap, inflating node accesses); the paper's 0.2 balances "
        "the two"
    ),
)


def e11_xtree_overlap(fast: bool = True) -> Experiment:
    """What the X-tree's split-or-supernode threshold buys.

    ``max_overlap = 0`` degenerates toward "supernode everything that
    overlaps" (scan-like directory), ``max_overlap = 1`` accepts every
    topological split (plain R*-tree behaviour). The paper's 20% sits
    between; this ablation sweeps the knob on uniform high-d data.
    """
    return run_spec(E11_SPEC, tier=_tier(fast)).to_experiment()


#: Table-experiment registry used by the ``experiment`` CLI subcommand
#: and the benchmark wrappers (classic ``fast=True`` entry points).
ALL_EXPERIMENTS = {
    "f1": f1_figure1,
    "e0": e0_savings,
    "e1": e1_scalability_n,
    "e2": e2_scalability_d,
    "e3": e3_sample_size,
    "e4": e4_threshold,
    "e5": e5_k_neighbours,
    "e6": e6_effectiveness,
    "e7": e7_vs_evolutionary,
    "e8": e8_index,
    "e9": e9_filter,
    "e10": e10_ablation,
    "e11": e11_xtree_overlap,
}

#: Spec registry for the paper-table experiments (the end-to-end perf
#: specs e12/e13 live in repro.bench.perf; the merged registry is
#: repro.bench.ALL_SPECS).
SPECS = {
    spec.name: spec
    for spec in (
        F1_SPEC,
        E0_SPEC,
        E1_SPEC,
        E2_SPEC,
        E3_SPEC,
        E4_SPEC,
        E5_SPEC,
        E6_SPEC,
        E7_SPEC,
        E8_SPEC,
        E9_SPEC,
        E10_SPEC,
        E11_SPEC,
    )
}

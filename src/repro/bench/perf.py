"""End-to-end performance specs: E12 (batch engine) and E13 (OD kernel).

Unlike the paper-table experiments in :mod:`repro.bench.experiments`,
these two specs track the repo's own performance trajectory: their
smoke-tier snapshots are committed at the repo root as
``BENCH_e12.json`` / ``BENCH_e13.json`` and CI re-runs them on every
push, failing when a gated measure regresses by more than 15%
(:func:`repro.bench.snapshot.compare_snapshots`).

Only *machine-relative* ratios are gated — E12's ``speedup`` (batched
vs sequential wall time) and E13's ``speedup``/``fused_speedup`` (GEMM
vs exact kernel) — because a committed baseline travels across
heterogeneous runners where absolute queries/sec mean nothing. The
absolute throughput and latency columns are recorded in every snapshot
for the trajectory, but never gate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.spec import ExperimentSpec
from repro.bench.workloads import (
    E13_SEED,
    make_level_masks,
    make_traffic,
    planted_workload,
    standard_miner,
)
from repro.index.linear import LinearScanIndex

__all__ = ["E12_SPEC", "E13_SPEC", "PERF_SPECS", "run_batch_cell", "run_kernel_cell"]


# ----------------------------------------------------------------------
# E12 — batched multi-query throughput versus the sequential loop
# ----------------------------------------------------------------------
def run_batch_cell(n: int, d: int, m: int, workers: int = 2) -> dict:
    """Time sequential vs batched vs multiprocess on one workload.

    ``threshold_quantile=0.9`` keeps a meaningful share of the batch in
    the eval-heavy regime (searches that actually walk the lattice) —
    with an ultra-tight threshold nearly every query resolves in one
    full-space evaluation and every implementation is bound by the same
    per-query bookkeeping.
    """
    workload = planted_workload(n=n, d=d, seed_offset=12)
    miner = standard_miner(workload, threshold_quantile=0.9)
    targets = make_traffic(workload, m)

    start = time.perf_counter()
    sequential = [miner.query(target) for target in targets]
    sequential_s = time.perf_counter() - start

    batch = miner.query_batch(targets)

    # A fresh fit for the workers run so its cache starts equally warm.
    miner_mp = standard_miner(workload, threshold_quantile=0.9)
    start = time.perf_counter()
    miner_mp.query_batch(targets, workers=workers)
    workers_s = time.perf_counter() - start

    assert all(
        a.minimal == b.minimal and a.total_outlying == b.total_outlying
        for a, b in zip(sequential, batch.results)
    ), "batched answers diverged from the sequential loop"

    return {
        "n": n,
        "d": d,
        "m": m,
        "seq_qps": m / sequential_s,
        "batch_qps": batch.queries_per_second,
        "speedup": sequential_s / batch.wall_time_s,
        "workers_qps": m / workers_s,
        "cache_hits": batch.shared_cache_hits,
        "knn_evals": batch.knn_evaluations,
        "_counters": miner.backend_.stats.snapshot(),
    }


def _e12_run(ctx, cell: tuple, workers: int) -> dict:
    n, d, m = cell
    return run_batch_cell(int(n), int(d), int(m), workers=int(workers))


E12_SPEC = ExperimentSpec(
    name="e12",
    title="Batched multi-query throughput (linear backend)",
    grid={"cell": ((1000, 10, 64), (2000, 10, 128), (5000, 12, 256))},
    smoke={"cell": ((1000, 10, 64),)},
    fixed={"workers": 2},
    run=_e12_run,
    columns=[
        "n",
        "d",
        "m",
        "seq_qps",
        "batch_qps",
        "speedup",
        "workers_qps",
        "cache_hits",
        "knn_evals",
    ],
    expectation=(
        "the batched engine answers element-wise identical results "
        "faster than the sequential loop by vectorising kNN kernels "
        "across concurrent searches and replaying shared OD values "
        "from the per-fit cache"
    ),
    notes=[
        "identical answers verified against the sequential loop for every row"
    ],
    # Gate on the median of 3 measured repeats: single-shot wall-time
    # ratios swing far past the 15% tolerance on a loaded machine.
    repeats=3,
    regression={"speedup": "higher"},
)


# ----------------------------------------------------------------------
# E13 — GEMM level-wide OD kernel versus the exact per-mask loop
# ----------------------------------------------------------------------
def _time_kernel(fn, reps: int) -> float:
    """Best-of-``reps`` wall time for one kernel invocation.

    Minimum, not mean: scheduler preemption and allocator stalls only ever
    *add* time, so the fastest rep is the closest estimate of the kernel's
    intrinsic cost — and the only one stable enough for a 15% CI gate on
    sub-millisecond cells (see docs/benchmarking.md).
    """
    fn()  # warm-up (BLAS thread pools, allocator)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_cell(n: int, d: int, width: int, k: int = 5, reps: int = 7) -> dict:
    """Time the exact, GEMM and fused OD kernels on one (n, d, width) cell."""
    rng = np.random.default_rng(E13_SEED)
    X = rng.normal(size=(n, d))
    query = rng.normal(size=d)
    backend = LinearScanIndex(X)
    masks = make_level_masks(rng, d, width)
    components = backend.distance_components(query)

    exact_s = _time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="exact"
        ),
        reps,
    )
    gemm_s = _time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="gemm"
        ),
        reps,
    )

    # Mask-major fusion: 4 queries stacked into one C_batch GEMM,
    # reported per query for comparability with the single-query cells.
    queries = rng.normal(size=(4, d))
    components_list = [backend.distance_components(q) for q in queries]
    fused_s = (
        _time_kernel(
            lambda: backend.knn_distance_sums_batch(
                queries, k, masks, components_list=components_list, kernel="gemm"
            ),
            reps,
        )
        / queries.shape[0]
    )

    exact = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="exact"
    )
    gemm = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="gemm"
    )
    max_rel_err = float(np.max(np.abs(gemm - exact) / np.maximum(np.abs(exact), 1e-300)))

    return {
        "n": n,
        "d": d,
        "width": width,
        "k": k,
        "exact_ms": exact_s * 1e3,
        "gemm_ms": gemm_s * 1e3,
        "fused_ms_per_query": fused_s * 1e3,
        "speedup": exact_s / gemm_s,
        "fused_speedup": exact_s / fused_s,
        "max_rel_err": max_rel_err,
        "_counters": backend.stats.snapshot(),
    }


def _e13_run(ctx, n: int, d: int, width: int, k: int, reps: int) -> dict:
    return run_kernel_cell(int(n), int(d), int(width), k=int(k), reps=int(reps))


E13_SPEC = ExperimentSpec(
    name="e13",
    title="Level-wide GEMM OD kernel vs exact per-mask loop (linear backend)",
    # reps is tier-dependent: the smoke tier feeds the CI regression gate,
    # and its sub-millisecond cells need 25 internal reps per timing for a
    # stable speedup ratio; the full tier keeps the published 7.
    grid={"n": (4000,), "d": (8, 12, 16, 20), "width": (16, 64, 256), "reps": (7,)},
    smoke={"n": (2000,), "d": (8, 12), "width": (16, 64), "reps": (25,)},
    fixed={"k": 5},
    run=_e13_run,
    columns=[
        "n",
        "d",
        "width",
        "k",
        "exact_ms",
        "gemm_ms",
        "fused_ms_per_query",
        "speedup",
        "fused_speedup",
        "max_rel_err",
    ],
    expectation=(
        "one M @ C.T BLAS product answers a whole level of masks; the "
        "GEMM kernel beats the exact gather loop on every cell and the "
        "mask-major fused kernel amortises further across queries"
    ),
    notes=[
        "GEMM values agree with the exact kernel within rtol 1e-9 on every "
        "cell; pruning decisions are re-verified exactly by the search layer"
    ],
    # The sub-millisecond cells need noise control beyond run_kernel_cell's
    # internal reps: one unmeasured warm-up pass, then the median of 5.
    warmup=1,
    repeats=5,
    regression={"speedup": "higher", "fused_speedup": "higher"},
)


#: The perf-trajectory specs (committed snapshots + CI gate).
PERF_SPECS = {spec.name: spec for spec in (E12_SPEC, E13_SPEC)}

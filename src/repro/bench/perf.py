"""End-to-end performance specs: E12 (batch engine), E13 (OD kernel),
E14 (memory ceiling), E15 (sharded scatter-gather engine), E16
(fault recovery under injected worker failures) and E17 (incremental
streaming engine vs refit-from-scratch).

Unlike the paper-table experiments in :mod:`repro.bench.experiments`,
these specs track the repo's own performance trajectory: their
smoke-tier snapshots are committed at the repo root as
``BENCH_e12.json`` … ``BENCH_e17.json`` and CI re-runs them on every
push, failing when a gated measure regresses by more than 15%
(:func:`repro.bench.snapshot.compare_snapshots`).

Only *machine-relative* ratios and deterministic counters are gated
— E12's ``speedup`` (batched vs sequential wall time), E13's
``speedup``/``fused_speedup``/``f32_speedup`` (GEMM vs exact kernel;
float32 vs float64 GEMM), E14's ``peak_blocked_mb`` (the blocked
kernel's intermediate footprint, exact bytes), E15's
``persist_speedup`` (persistent warm shard pool vs per-call spin-up)
plus its deterministic wire counters ``round_trips``/``bytes_shipped``,
E16's ``identity``/``respawns``/``timeouts``/``degraded_rounds``
(answer identity and supervision counters under deterministic fault
injection), and E17's ``stream_speedup``/``identity`` (sustained
incremental insert+query vs fresh-fit-per-batch wall time, with every
streamed answer asserted identical to the fresh-fit oracle)
— because a committed baseline travels across heterogeneous runners
where absolute queries/sec mean nothing. The absolute throughput and
latency columns are recorded in every snapshot for the trajectory, but
never gate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.spec import ExperimentSpec
from repro.bench.workloads import (
    E13_SEED,
    E14_SEED,
    E17_SEED,
    make_level_masks,
    make_traffic,
    planted_workload,
    standard_miner,
)
from repro.core.miner import HOSMiner
from repro.core.stream import StreamEngine
from repro.data.synthetic import make_drift_stream
from repro.index.base import components32_from
from repro.index.linear import LinearScanIndex
from repro.testing.faults import fault_env

__all__ = [
    "E12_SPEC",
    "E13_SPEC",
    "E14_SPEC",
    "E15_SPEC",
    "E16_SPEC",
    "E17_SPEC",
    "PERF_SPECS",
    "run_batch_cell",
    "run_fault_cell",
    "run_kernel_cell",
    "run_memory_cell",
    "run_shard_cell",
    "run_stream_cell",
]


# ----------------------------------------------------------------------
# E12 — batched multi-query throughput versus the sequential loop
# ----------------------------------------------------------------------
def run_batch_cell(n: int, d: int, m: int, workers: int = 2) -> dict:
    """Time sequential vs batched vs multiprocess on one workload.

    ``threshold_quantile=0.9`` keeps a meaningful share of the batch in
    the eval-heavy regime (searches that actually walk the lattice) —
    with an ultra-tight threshold nearly every query resolves in one
    full-space evaluation and every implementation is bound by the same
    per-query bookkeeping.
    """
    workload = planted_workload(n=n, d=d, seed_offset=12)
    miner = standard_miner(workload, threshold_quantile=0.9)
    targets = make_traffic(workload, m)

    start = time.perf_counter()
    sequential = [miner.query(target) for target in targets]
    sequential_s = time.perf_counter() - start

    batch = miner.query_batch(targets)

    # A fresh fit for the workers run so its cache starts equally warm.
    miner_mp = standard_miner(workload, threshold_quantile=0.9)
    start = time.perf_counter()
    miner_mp.query_batch(targets, workers=workers)
    workers_s = time.perf_counter() - start

    assert all(
        a.minimal == b.minimal and a.total_outlying == b.total_outlying
        for a, b in zip(sequential, batch.results)
    ), "batched answers diverged from the sequential loop"

    return {
        "n": n,
        "d": d,
        "m": m,
        "seq_qps": m / sequential_s,
        "batch_qps": batch.queries_per_second,
        "speedup": sequential_s / batch.wall_time_s,
        "workers_qps": m / workers_s,
        "cache_hits": batch.shared_cache_hits,
        "knn_evals": batch.knn_evaluations,
        "_counters": miner.backend_.stats.snapshot(),
    }


def _e12_run(ctx, cell: tuple, workers: int) -> dict:
    n, d, m = cell
    return run_batch_cell(int(n), int(d), int(m), workers=int(workers))


E12_SPEC = ExperimentSpec(
    name="e12",
    title="Batched multi-query throughput (linear backend)",
    grid={"cell": ((1000, 10, 64), (2000, 10, 128), (5000, 12, 256))},
    smoke={"cell": ((1000, 10, 64),)},
    fixed={"workers": 2},
    run=_e12_run,
    columns=[
        "n",
        "d",
        "m",
        "seq_qps",
        "batch_qps",
        "speedup",
        "workers_qps",
        "cache_hits",
        "knn_evals",
    ],
    expectation=(
        "the batched engine answers element-wise identical results "
        "faster than the sequential loop by vectorising kNN kernels "
        "across concurrent searches and replaying shared OD values "
        "from the per-fit cache"
    ),
    notes=[
        "identical answers verified against the sequential loop for every row"
    ],
    # Gate on the median of 3 measured repeats: single-shot wall-time
    # ratios swing far past the 15% tolerance on a loaded machine.
    repeats=3,
    regression={"speedup": "higher"},
)


# ----------------------------------------------------------------------
# E13 — GEMM level-wide OD kernel versus the exact per-mask loop
# ----------------------------------------------------------------------
def _time_kernel(fn, reps: int) -> float:
    """Best-of-``reps`` wall time for one kernel invocation.

    Minimum, not mean: scheduler preemption and allocator stalls only ever
    *add* time, so the fastest rep is the closest estimate of the kernel's
    intrinsic cost — and the only one stable enough for a 15% CI gate on
    sub-millisecond cells (see docs/benchmarking.md).
    """
    fn()  # warm-up (BLAS thread pools, allocator)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_cell(n: int, d: int, width: int, k: int = 5, reps: int = 7) -> dict:
    """Time the exact, GEMM (both precision tiers) and fused OD kernels
    on one (n, d, width) cell."""
    rng = np.random.default_rng(E13_SEED)
    X = rng.normal(size=(n, d))
    query = rng.normal(size=d)
    backend = LinearScanIndex(X)
    masks = make_level_masks(rng, d, width)
    components = backend.distance_components(query)
    # Pre-transposed float32 copy, amortised across searches in the real
    # pipeline (the ODEvaluator caches it per query) — so the timed loop
    # measures the kernel, not the one-off cast.
    components32 = components32_from(components)

    exact_s = _time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="exact"
        ),
        reps,
    )
    gemm_s = _time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="gemm"
        ),
        reps,
    )
    gemm32_s = _time_kernel(
        lambda: backend.knn_distance_sums(
            query,
            k,
            masks,
            components=components,
            kernel="gemm",
            precision="float32",
            components32=components32,
        ),
        reps,
    )

    # Mask-major fusion: 4 queries stacked into one C_batch GEMM,
    # reported per query for comparability with the single-query cells.
    queries = rng.normal(size=(4, d))
    components_list = [backend.distance_components(q) for q in queries]
    fused_s = (
        _time_kernel(
            lambda: backend.knn_distance_sums_batch(
                queries, k, masks, components_list=components_list, kernel="gemm"
            ),
            reps,
        )
        / queries.shape[0]
    )

    exact = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="exact"
    )
    gemm = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="gemm"
    )
    gemm32 = backend.knn_distance_sums(
        query,
        k,
        masks,
        components=components,
        kernel="gemm",
        precision="float32",
        components32=components32,
    )
    max_rel_err = float(np.max(np.abs(gemm - exact) / np.maximum(np.abs(exact), 1e-300)))
    max_rel_err32 = float(
        np.max(np.abs(gemm32 - exact) / np.maximum(np.abs(exact), 1e-300))
    )

    return {
        "n": n,
        "d": d,
        "width": width,
        "k": k,
        "exact_ms": exact_s * 1e3,
        "gemm_ms": gemm_s * 1e3,
        "gemm32_ms": gemm32_s * 1e3,
        "fused_ms_per_query": fused_s * 1e3,
        "speedup": exact_s / gemm_s,
        "fused_speedup": exact_s / fused_s,
        "f32_speedup": gemm_s / gemm32_s,
        "max_rel_err": max_rel_err,
        "max_rel_err32": max_rel_err32,
        "_counters": backend.stats.snapshot(),
    }


def _e13_run(ctx, n: int, d: int, width: int, k: int, reps: int) -> dict:
    return run_kernel_cell(int(n), int(d), int(width), k=int(k), reps=int(reps))


E13_SPEC = ExperimentSpec(
    name="e13",
    title="Level-wide GEMM OD kernel vs exact per-mask loop (linear backend)",
    # reps is tier-dependent: the smoke tier feeds the CI regression gate
    # and uses cells large enough that the float32 tier's sgemm advantage
    # is well clear of the 15% gate (small cells are BLAS-dispatch bound
    # and show no dtype separation); the full tier keeps the published 7.
    grid={"n": (4000,), "d": (8, 12, 16, 20), "width": (16, 64, 256), "reps": (7,)},
    smoke={"n": (8000, 16000), "d": (16,), "width": (128,), "reps": (11,)},
    fixed={"k": 5},
    run=_e13_run,
    columns=[
        "n",
        "d",
        "width",
        "k",
        "exact_ms",
        "gemm_ms",
        "gemm32_ms",
        "fused_ms_per_query",
        "speedup",
        "fused_speedup",
        "f32_speedup",
        "max_rel_err",
        "max_rel_err32",
    ],
    expectation=(
        "one M @ C.T BLAS product answers a whole level of masks; the "
        "GEMM kernel beats the exact gather loop on every cell, the "
        "float32 tier beats the float64 GEMM by >=1.5x on every smoke "
        "cell, and the mask-major fused kernel amortises further across "
        "queries"
    ),
    notes=[
        "GEMM values agree with the exact kernel within rtol 1e-9 on every "
        "cell; pruning decisions are re-verified exactly by the search layer",
        "float32 values stay within the rigorous rounding bound of "
        "repro.core.precision.reverify_rtol; answer sets are bit-identical "
        "to float64 because the search layer re-verifies the bound band",
    ],
    # The sub-millisecond cells need noise control beyond run_kernel_cell's
    # internal reps: one unmeasured warm-up pass, then the median of 5.
    warmup=1,
    repeats=5,
    regression={
        "speedup": "higher",
        "fused_speedup": "higher",
        "f32_speedup": "higher",
    },
)


# ----------------------------------------------------------------------
# E14 — bounded intermediate footprint of the blocked GEMM kernel
# ----------------------------------------------------------------------
def run_memory_cell(
    n: int, d: int, width: int, precision: str, k: int = 5, chunk_mb: int = 2
) -> dict:
    """Peak intermediate bytes of the level GEMM, unblocked vs blocked.

    The blocked kernel streams the ``(width, n)`` similarity product in
    column blocks sized by :data:`repro.index.linear.BATCH_CHUNK_BYTES`
    (a per-dtype *element* budget, so float32 doubles the effective
    block width); this cell pins the ceiling to ``chunk_mb`` MiB, runs
    both ways, asserts the sums are bit-identical, and reports both
    high-water marks. The byte counts are deterministic, so
    ``peak_blocked_mb`` gates exactly (any growth past the CI tolerance
    means the ceiling logic regressed).
    """
    import repro.index.linear as linear_module

    rng = np.random.default_rng(E14_SEED)
    X = rng.normal(size=(n, d))
    query = rng.normal(size=d)
    backend = LinearScanIndex(X)
    masks = make_level_masks(rng, d, width)
    components = backend.distance_components(query)

    def run_once() -> "tuple[np.ndarray, int, float]":
        backend.stats.reset()
        start = time.perf_counter()
        sums = backend.knn_distance_sums(
            query, k, masks, components=components, kernel="gemm", precision=precision
        )
        elapsed = time.perf_counter() - start
        peak = backend.stats.snapshot().get("peak_intermediate_bytes", 0)
        return sums, peak, elapsed

    saved = linear_module.BATCH_CHUNK_BYTES
    linear_module.BATCH_CHUNK_BYTES = 2**62  # effectively unblocked
    try:
        unblocked, peak_unblocked, unblocked_s = run_once()
        linear_module.BATCH_CHUNK_BYTES = chunk_mb * 2**20
        blocked, peak_blocked, blocked_s = run_once()
    finally:
        linear_module.BATCH_CHUNK_BYTES = saved

    assert np.array_equal(blocked, unblocked), (
        "blocked GEMM diverged from the unblocked kernel"
    )

    return {
        "n": n,
        "d": d,
        "width": width,
        "k": k,
        "precision": precision,
        "chunk_mb": chunk_mb,
        "peak_unblocked_mb": peak_unblocked / 2**20,
        "peak_blocked_mb": peak_blocked / 2**20,
        "footprint_ratio": peak_unblocked / max(1, peak_blocked),
        "blocked_overhead": blocked_s / unblocked_s,
        "identical": True,
        "_counters": backend.stats.snapshot(),
    }


def _e14_run(ctx, n: int, d: int, width: int, precision: str, chunk_mb: int) -> dict:
    return run_memory_cell(
        int(n), int(d), int(width), str(precision), chunk_mb=int(chunk_mb)
    )


E14_SPEC = ExperimentSpec(
    name="e14",
    title="Blocked GEMM memory ceiling (peak intermediate bytes)",
    grid={
        "n": (20000,),
        "d": (12,),
        "width": (256, 512),
        "precision": ("float64", "float32"),
    },
    smoke={"n": (20000,), "d": (12,), "width": (256,), "precision": ("float64", "float32")},
    fixed={"chunk_mb": 2},
    run=_e14_run,
    columns=[
        "n",
        "d",
        "width",
        "precision",
        "chunk_mb",
        "peak_unblocked_mb",
        "peak_blocked_mb",
        "footprint_ratio",
        "blocked_overhead",
        "identical",
    ],
    expectation=(
        "column blocking caps the level GEMM's intermediate at the "
        "configured chunk budget regardless of n, with bit-identical "
        "sums; the float32 tier halves both footprints at the same "
        "element budget"
    ),
    notes=[
        "blocked and unblocked sums asserted bit-identical on every cell "
        "(the reduction axis is never split; merging per-block k-prefixes "
        "is exact)"
    ],
    warmup=1,
    repeats=3,
    regression={"peak_blocked_mb": "lower"},
)


# ----------------------------------------------------------------------
# E15 — persistent sharded scatter-gather engine (shared-memory shards)
# ----------------------------------------------------------------------
def run_shard_cell(n: int, d: int, m: int, workers: int = 4, reps: int = 3) -> dict:
    """Time sequential vs per-call-spawned vs persistent shard pools.

    Three arms over the same traffic-shaped batch, each best-of-``reps``
    (minimum, for the same noise-control reasons as :func:`_time_kernel`)
    with the per-fit OD cache invalidated before every timed call so
    each call is a cold batch, not a cache replay:

    - ``seq``: the in-process batch engine (workers=1), the baseline.
    - ``percall``: ``workers`` row shards where the pool is torn down
      before every call, so each timed call pays fork + shared-memory
      attach + backend construction — what a per-call executor design
      pays on every batch.
    - ``shard``: the same pool left persistent across calls, so the
      timed region is pure scatter-gather (and warm worker-side
      component caches — both genuine benefits of persistence).

    ``persist_speedup`` (percall / shard wall time) is the gated
    measure; ``scaling`` (seq / shard) is recorded for the trajectory
    but not gated because it is a property of the runner's core count,
    not of the code.
    """
    workload = planted_workload(n=n, d=d, seed_offset=15)
    miner = standard_miner(workload, threshold_quantile=0.9)
    targets = make_traffic(workload, m)

    seq_times = []
    for _ in range(reps):
        miner.od_cache_.invalidate()
        start = time.perf_counter()
        sequential = miner.query_batch(targets, workers=1)
        seq_times.append(time.perf_counter() - start)

    percall_times = []
    for _ in range(reps):
        miner.close()  # next call re-pays pool spin-up inside the timer
        miner.od_cache_.invalidate()
        start = time.perf_counter()
        miner.query_batch(targets, workers=workers, shard="rows")
        percall_times.append(time.perf_counter() - start)

    miner.close()
    miner.od_cache_.invalidate()
    miner.query_batch(targets, workers=workers, shard="rows")  # spin up, unmeasured
    warm_times = []
    for _ in range(reps):
        miner.od_cache_.invalidate()
        start = time.perf_counter()
        warm = miner.query_batch(targets, workers=workers, shard="rows")
        warm_times.append(time.perf_counter() - start)
    miner.close()

    assert all(
        a.minimal == b.minimal and a.total_outlying == b.total_outlying
        for a, b in zip(sequential, warm.results)
    ), "sharded answers diverged from the sequential engine"

    seq_s, percall_s, shard_s = min(seq_times), min(percall_times), min(warm_times)
    return {
        "n": n,
        "d": d,
        "m": m,
        "workers": warm.workers,
        "seq_qps": m / seq_s,
        "shard_qps": m / shard_s,
        "percall_qps": m / percall_s,
        "persist_speedup": percall_s / shard_s,
        "scaling": seq_s / shard_s,
        "round_trips": warm.stats.shard_round_trips,
        "bytes_shipped": warm.stats.bytes_shipped,
        "_counters": miner.backend_.stats.snapshot(),
    }


def _e15_run(ctx, cell: tuple, workers: int, reps: int) -> dict:
    n, d, m = cell
    return run_shard_cell(int(n), int(d), int(m), workers=int(workers), reps=int(reps))


E15_SPEC = ExperimentSpec(
    name="e15",
    title="Persistent sharded scatter-gather engine (shared-memory row shards)",
    # The two smoke cells share m and differ only in n: their
    # bytes_shipped rows land (near-)equal, exhibiting the
    # wire-volume-independent-of-n property right in the committed
    # baseline (tests/test_shard.py asserts it exactly).
    grid={"cell": ((1500, 10, 16), (3000, 10, 16), (3000, 10, 48))},
    smoke={"cell": ((1500, 10, 16), (3000, 10, 16))},
    fixed={"workers": 4, "reps": 3},
    run=_e15_run,
    columns=[
        "n",
        "d",
        "m",
        "workers",
        "seq_qps",
        "shard_qps",
        "percall_qps",
        "persist_speedup",
        "scaling",
        "round_trips",
        "bytes_shipped",
    ],
    expectation=(
        "the persistent shard pool answers element-wise identical "
        "results while only masks and query rows cross the pipe (data "
        "rows live in shared memory); keeping the pool warm across "
        "calls beats per-call spin-up, and the wire volume is "
        "independent of n"
    ),
    notes=[
        "identical answers verified against the in-process engine for "
        "every row",
        "scaling (seq/shard wall time) is recorded but not gated: the "
        "committed baseline ran on a single-core container where "
        "process parallelism cannot pay for IPC, so scaling < 1 there; "
        "round_trips and bytes_shipped are deterministic wire counters "
        "and gate exactly",
    ],
    repeats=3,
    regression={
        "persist_speedup": "higher",
        "round_trips": "lower",
        "bytes_shipped": "lower",
    },
)


# ----------------------------------------------------------------------
# E16 — fault recovery: supervised shard execution under injected faults
# ----------------------------------------------------------------------
def run_fault_cell(
    n: int,
    d: int,
    m: int,
    workers: int = 3,
    timeout_s: float = 0.5,
    reps: int = 3,
) -> dict:
    """Throughput and answer identity under deterministic injected faults.

    Four arms over the same traffic-shaped batch, each best-of-``reps``
    with the pool torn down *before* every rep so the injected fault
    re-fires against a fresh gen-0 worker each time
    (:mod:`repro.testing.faults` defaults to ``gen=0``, so a respawned
    worker serves clean and recovery is deterministic):

    - ``clean``: the supervised pool with no faults — the baseline the
      recovery overhead is measured against.
    - ``crash``: shard 0's worker dies hard (``os._exit``) on its third
      round; the supervisor sees EOF, respawns onto the existing
      shared-memory segment and replays the round.
    - ``hang``: shard 0's worker wedges on its second round; only the
      ``timeout_s`` reply deadline (then kill + respawn + replay) gets
      the batch moving again — this arm's wall time is dominated by the
      deadline, which is why it gets a short one.
    - ``dead``: shard 0 crashes on *every* incarnation (``gen=any``);
      the retry budget drains and the coordinator serves that slice
      in-process through the same kernels (graceful degradation).

    Answers in every arm are asserted element-wise identical to the
    sequential engine and recorded as the gated ``identity`` measure
    (1.0; a float because the snapshot comparator skips booleans). The
    supervision counters — ``respawns`` (crash arm), ``timeouts`` (hang
    arm), ``degraded_rounds`` (dead arm) — are deterministic under
    injection and gate exactly; ``recovery_ms`` (crash-arm wall time
    minus clean-arm wall time) is the headline recovery-latency figure,
    recorded for the trajectory but not gated (it is runner noise at
    these scales).
    """
    workload = planted_workload(n=n, d=d, seed_offset=16)
    miner = standard_miner(
        workload,
        threshold_quantile=0.9,
        timeout_s=timeout_s,
        max_retries=2,
        backoff_s=0.01,
    )
    targets = make_traffic(workload, m)

    with fault_env(None):
        miner.od_cache_.invalidate()
        sequential = miner.query_batch(targets, workers=1)

    arms = {
        "clean": None,
        "crash": "crash:shard=0:round=3",
        "hang": "hang:shard=0:round=2",
        "dead": "crash:shard=0:gen=any",
    }
    wall: dict[str, float] = {}
    stats: dict[str, object] = {}
    for arm, spec in arms.items():
        times = []
        for _ in range(reps):
            miner.close()  # fresh pool per rep: the fault re-fires at gen 0
            miner.od_cache_.invalidate()
            with fault_env(spec or ""):
                start = time.perf_counter()
                result = miner.query_batch(targets, workers=workers, shard="rows")
                times.append(time.perf_counter() - start)
        wall[arm] = min(times)
        stats[arm] = result.stats
        assert all(
            a.minimal == b.minimal and a.od_values == b.od_values
            for a, b in zip(sequential, result.results)
        ), f"answers diverged from the sequential engine under {arm!r} faults"
    miner.close()

    return {
        "n": n,
        "d": d,
        "m": m,
        "workers": workers,
        "clean_qps": m / wall["clean"],
        "crash_qps": m / wall["crash"],
        "hang_qps": m / wall["hang"],
        "dead_qps": m / wall["dead"],
        "recovery_ms": (wall["crash"] - wall["clean"]) * 1e3,
        "respawns": stats["crash"].worker_respawns,
        "timeouts": stats["hang"].timeouts,
        "degraded_rounds": stats["dead"].degraded_rounds,
        # Asserted above for every arm; recorded as a float so the
        # snapshot comparator gates it (it skips booleans).
        "identity": 1.0,
        "_counters": miner.backend_.stats.snapshot(),
    }


def _e16_run(ctx, cell: tuple, workers: int, timeout_s: float, reps: int) -> dict:
    n, d, m = cell
    return run_fault_cell(
        int(n), int(d), int(m),
        workers=int(workers), timeout_s=float(timeout_s), reps=int(reps),
    )


E16_SPEC = ExperimentSpec(
    name="e16",
    title="Fault recovery: supervised shard execution under injected faults",
    grid={"cell": ((800, 8, 12), (1500, 10, 16))},
    smoke={"cell": ((800, 8, 12),)},
    fixed={"workers": 3, "timeout_s": 0.5, "reps": 3},
    run=_e16_run,
    columns=[
        "n",
        "d",
        "m",
        "workers",
        "clean_qps",
        "crash_qps",
        "hang_qps",
        "dead_qps",
        "recovery_ms",
        "respawns",
        "timeouts",
        "degraded_rounds",
        "identity",
    ],
    expectation=(
        "under an injected worker crash, hang, or permanent shard loss, "
        "query_batch answers stay element-wise identical to the "
        "sequential kernels; recovery is one respawn (crash), one "
        "deadline + respawn (hang), or in-process degradation (dead), "
        "with throughput — never correctness — absorbing the fault"
    ),
    notes=[
        "identity is asserted per arm against the sequential engine and "
        "gated at 1.0; the fault counters are deterministic under "
        "injection and gate exactly",
        "recovery_ms (crash wall time minus clean wall time) is "
        "recorded for the trajectory but not gated — at these scales "
        "it is dominated by runner noise; the hang arm's wall time is "
        "bounded below by the 0.5 s reply deadline by construction",
    ],
    repeats=3,
    regression={
        "identity": "higher",
        "respawns": "lower",
        "timeouts": "lower",
        "degraded_rounds": "lower",
    },
)


# ----------------------------------------------------------------------
# E17 — incremental streaming engine versus refit-from-scratch
# ----------------------------------------------------------------------
def run_stream_cell(
    window: int,
    d: int,
    batch_size: int,
    probes: int,
    cycles: int,
    index: str = "linear",
    workers: int = 1,
    k: int = 5,
    reps: int = 3,
) -> dict:
    """Sustained insert+query throughput, incremental vs refit, one cell.

    The workload is a *monitoring deployment*: one gently drifting
    stream supplies both the warm window and the batches pushed after
    it (same wandering mixture, so fresh rows are mostly inliers), and
    a fixed watchlist of near-manifold points is re-polled every cycle.
    A warm window is fitted once to calibrate the outlier threshold
    ``T`` (the deployment's contract is a *fixed* T — see
    :mod:`repro.core.stream`); both arms then answer the same stream
    with that explicit threshold, each best-of-``reps``:

    - ``stream``: one warm fit outside the timer (paid once per
      deployment, not per batch), then per cycle a
      :meth:`~repro.core.stream.StreamEngine.push` (in-place index
      update, delta OD-cache invalidation, live shard sync) plus a
      query of the fresh rows and a watchlist re-poll. The watchlist's
      cache keys are stable across pushes, so its re-polls replay
      delta-retained entries instead of recomputing them.
    - ``refit``: per cycle a fresh ``HOSMiner(threshold=T)`` fitted from
      scratch on the equivalent window (index build, component caches,
      prior-learning sample searches — everything a non-incremental
      deployment pays per batch), then the same queries, all cold.

    Every cycle's streamed answers — fresh rows and watchlist alike —
    are asserted element-wise identical (``minimal``,
    ``total_outlying``, ``od_values``) to the fresh-fit oracle's and
    recorded as the gated ``identity`` measure (1.0; a float because
    the snapshot comparator skips booleans). ``stream_speedup``
    (refit / stream wall time) is the headline gate; the delta-cache
    ``cache_retained`` / ``cache_evicted`` counters are deterministic
    under the fixed seed and recorded for the trajectory.
    """
    if window % batch_size:
        raise ValueError(
            f"window ({window}) must be a multiple of batch_size ({batch_size})"
        )
    prefix = window // batch_size
    stream = make_drift_stream(
        prefix + cycles, batch_size, d, drift_per_batch=0.05, seed=E17_SEED
    )
    warm = np.vstack(stream[:prefix])
    batches = stream[prefix:]

    calibration = HOSMiner(
        k=k, sample_size=10, threshold_quantile=0.95, index=index
    )
    calibration.fit(warm)
    threshold = float(calibration.threshold_)
    calibration.close()

    rng = np.random.default_rng(E17_SEED + 1)
    watchlist = [
        warm[i] + rng.normal(scale=0.05, size=d)
        for i in rng.choice(window, probes, replace=False)
    ]

    def query(serving, targets):
        if workers > 1:
            return serving.query_batch(targets, workers=workers, shard="rows")
        return serving.query_batch(targets)

    stream_times: list[float] = []
    refit_times: list[float] = []
    for _ in range(reps):
        # Incremental arm: push, query the fresh rows, re-poll the
        # watchlist.
        miner = HOSMiner(
            k=k, sample_size=10, threshold=threshold,
            stream_window=window, index=index,
        )
        miner.fit(warm)
        stream_results = []
        with StreamEngine(miner) as engine:
            start = time.perf_counter()
            for rows in batches:
                engine.push(rows)
                fresh = list(
                    range(engine.occupancy - rows.shape[0], engine.occupancy)
                )
                stream_results.append(
                    (query(engine, fresh), query(engine, watchlist))
                )
            stream_times.append(time.perf_counter() - start)
        retained = miner.od_cache_.delta_retained
        evicted = miner.od_cache_.delta_evicted
        counters = miner.backend_.stats.snapshot()
        miner.close()

        # Refit arm: a fresh fit on the equivalent window every cycle.
        frame = warm
        refit_results = []
        start = time.perf_counter()
        for rows in batches:
            frame = np.vstack([frame, rows])[-window:]
            fresh = list(range(frame.shape[0] - rows.shape[0], frame.shape[0]))
            oracle = HOSMiner(
                k=k, sample_size=10, threshold=threshold, index=index
            )
            oracle.fit(frame)
            refit_results.append(
                (query(oracle, fresh), query(oracle, watchlist))
            )
            oracle.close()
        refit_times.append(time.perf_counter() - start)

        for cycle, (streamed, refitted) in enumerate(
            zip(stream_results, refit_results)
        ):
            for streamed_arm, refitted_arm in zip(streamed, refitted):
                assert all(
                    a.minimal == b.minimal
                    and a.total_outlying == b.total_outlying
                    and a.od_values == b.od_values
                    for a, b in zip(streamed_arm.results, refitted_arm.results)
                ), (
                    "streamed answers diverged from the fresh-fit oracle "
                    f"at cycle {cycle}"
                )

    stream_s, refit_s = min(stream_times), min(refit_times)
    m = cycles * (batch_size + probes)
    return {
        "window": window,
        "d": d,
        "batch": batch_size,
        "probes": probes,
        "cycles": cycles,
        "index": index,
        "workers": workers,
        "stream_qps": m / stream_s,
        "refit_qps": m / refit_s,
        "stream_speedup": refit_s / stream_s,
        "cache_retained": retained,
        "cache_evicted": evicted,
        # Asserted above for every cycle of every rep; recorded as a
        # float so the snapshot comparator gates it (it skips booleans).
        "identity": 1.0,
        "_counters": counters,
    }


def _e17_run(ctx, cell: tuple, k: int, reps: int) -> dict:
    window, d, batch_size, probes, cycles, index, workers = cell
    return run_stream_cell(
        int(window), int(d), int(batch_size), int(probes), int(cycles),
        index=str(index), workers=int(workers), k=int(k), reps=int(reps),
    )


E17_SPEC = ExperimentSpec(
    name="e17",
    title="Incremental streaming engine vs refit-from-scratch (sliding window)",
    # cell = (window, d, batch_size, probes, cycles, index, workers).
    # The smoke cell streams through the paper's VA-file — the index the
    # engine updates in place; the full tier adds the linear-scan buffer
    # and a workers=2 cell exercising live shard sync.
    grid={"cell": (
        (6400, 8, 4, 48, 8, "vafile", 1),
        (6400, 8, 4, 48, 8, "linear", 1),
        (6400, 8, 4, 48, 8, "linear", 2),
    )},
    smoke={"cell": ((6400, 8, 4, 48, 8, "vafile", 1),)},
    fixed={"k": 5, "reps": 3},
    run=_e17_run,
    columns=[
        "window",
        "d",
        "batch",
        "probes",
        "cycles",
        "index",
        "workers",
        "stream_qps",
        "refit_qps",
        "stream_speedup",
        "cache_retained",
        "cache_evicted",
        "identity",
    ],
    expectation=(
        "pushing a batch through the sliding window (in-place index "
        "update + delta OD-cache invalidation + live shard sync), "
        "querying the fresh rows and re-polling the watchlist beats "
        "fitting a new miner on the equivalent window every batch by "
        ">=3x, with every answer element-wise identical to the "
        "fresh-fit oracle"
    ),
    notes=[
        "identity is asserted per cycle against a fresh fit on the "
        "equivalent window with the same explicit threshold and gated "
        "at 1.0",
        "both arms keep the calibrated threshold fixed: a quantile "
        "re-drawn per window would answer a different question (see "
        "docs/streaming.md); cache_retained/cache_evicted are "
        "deterministic under the fixed seed and recorded for the "
        "trajectory but not gated",
        "the speedup comes from the arm-specific costs: refit pays the "
        "per-cycle fit (index build + prior-learning searches) and "
        "cold watchlist polls, stream pays one push plus mostly "
        "cache-replayed polls; the fresh-row queries are cold in both "
        "arms and only dilute the ratio",
    ],
    repeats=3,
    regression={"stream_speedup": "higher", "identity": "higher"},
)


#: The perf-trajectory specs (committed snapshots + CI gate).
PERF_SPECS = {
    spec.name: spec
    for spec in (E12_SPEC, E13_SPEC, E14_SPEC, E15_SPEC, E16_SPEC, E17_SPEC)
}

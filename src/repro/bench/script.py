"""Shared CLI driver for the ``benchmarks/bench_*.py`` entry points.

Every benchmark script's ``main()`` is one call to :func:`run_script`;
the spec registry (:data:`repro.bench.ALL_SPECS`) supplies the grid and
the measurement function, the harness supplies execution and
serialization. The scripts keep their classic flags: ``--full`` lifts a
table experiment from the smoke grid to the published grid (``--fast``
is the inverse for the perf specs, which default to full), and
``--save [PATH]`` writes the canonical ``BENCH_<name>.json`` snapshot.
"""

from __future__ import annotations

import argparse

from repro.bench.runner import SpecResult, run_spec
from repro.bench.snapshot import save_snapshot, snapshot_path
from repro.bench.spec import ExperimentSpec


def run_script(
    spec: ExperimentSpec,
    argv: "list[str] | None" = None,
    default_tier: str = "smoke",
) -> SpecResult:
    """Run *spec* as a command-line benchmark script.

    Prints the results table, persists the classic per-experiment record
    under ``results/`` (kept for downstream tooling), and optionally
    writes the canonical snapshot when ``--save`` is passed. Returns the
    :class:`~repro.bench.runner.SpecResult` for programmatic callers.
    """
    parser = argparse.ArgumentParser(
        description=f"{spec.name.upper()} — {spec.title}"
    )
    if default_tier == "smoke":
        parser.add_argument(
            "--full",
            action="store_true",
            help="run the published full grid instead of the smoke grid",
        )
    else:
        parser.add_argument(
            "--fast",
            action="store_true",
            help="run the reduced smoke grid (CI-sized) instead of the full grid",
        )
    parser.add_argument(
        "--save",
        nargs="?",
        const=snapshot_path(spec.name),
        default=None,
        metavar="PATH",
        help=f"write the canonical snapshot (default {snapshot_path(spec.name)})",
    )
    args = parser.parse_args(argv)

    if default_tier == "smoke":
        tier = "full" if args.full else "smoke"
    else:
        tier = "smoke" if args.fast else "full"

    result = run_spec(spec, tier=tier)
    experiment = result.to_experiment()
    experiment.print()
    experiment.save()
    if args.save:
        path = save_snapshot(result.to_snapshot(), args.save)
        print(f"saved {path}")
    return result

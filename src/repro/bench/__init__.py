"""Benchmark package: declarative experiment harness plus the suite.

Layered bottom-up (see ``docs/benchmarking.md``):

- :mod:`repro.bench.spec` — :class:`ExperimentSpec`: IV grids crossed
  into hashed conditions.
- :mod:`repro.bench.runner` — :func:`run_spec`: warm-up/repeat policy,
  metadata stamping, :class:`SpecResult`.
- :mod:`repro.bench.snapshot` — canonical ``BENCH_*.json`` snapshots and
  the CI regression comparator.
- :mod:`repro.bench.workloads` / :mod:`repro.bench.measures` /
  :mod:`repro.bench.reporting` / :mod:`repro.bench.harness` — shared
  inputs, quality measures, and table rendering.
- :mod:`repro.bench.experiments` (paper tables f1, e0–e11) and
  :mod:`repro.bench.perf` (perf trajectory e12–e17) — the specs.

:data:`ALL_SPECS` is the merged registry driven by ``repro bench``;
:data:`ALL_EXPERIMENTS` keeps the classic ``eN(fast=True)`` entry
points for the ``experiment`` CLI subcommand.
"""

from repro.bench.experiments import ALL_EXPERIMENTS, SPECS
from repro.bench.harness import Experiment, timed
from repro.bench.measures import PlantedRecovery, SetScores, planted_recovery, set_scores
from repro.bench.perf import (
    E12_SPEC,
    E13_SPEC,
    E14_SPEC,
    E15_SPEC,
    E16_SPEC,
    E17_SPEC,
    PERF_SPECS,
)
from repro.bench.reporting import Table, format_value, save_json
from repro.bench.runner import ConditionRecord, SpecResult, run_metadata, run_spec
from repro.bench.snapshot import (
    DEFAULT_TOLERANCE,
    Comparison,
    RegressionReport,
    SnapshotError,
    compare_snapshots,
    load_snapshot,
    save_snapshot,
    snapshot_path,
    validate_snapshot,
)
from repro.bench.spec import Condition, ExperimentSpec, SpecError, cross_grid, param_hash
from repro.bench.workloads import (
    SEED,
    Workload,
    make_level_masks,
    make_traffic,
    planted_workload,
    standard_miner,
)

#: Every spec the ``repro bench`` subcommand can run, by name.
ALL_SPECS = {**SPECS, **PERF_SPECS}

__all__ = [
    "ALL_EXPERIMENTS",
    "ALL_SPECS",
    "Comparison",
    "Condition",
    "ConditionRecord",
    "DEFAULT_TOLERANCE",
    "E12_SPEC",
    "E13_SPEC",
    "E14_SPEC",
    "E15_SPEC",
    "E16_SPEC",
    "E17_SPEC",
    "Experiment",
    "ExperimentSpec",
    "PERF_SPECS",
    "PlantedRecovery",
    "RegressionReport",
    "SEED",
    "SPECS",
    "SetScores",
    "SnapshotError",
    "SpecError",
    "SpecResult",
    "Table",
    "Workload",
    "compare_snapshots",
    "cross_grid",
    "format_value",
    "load_snapshot",
    "make_level_masks",
    "make_traffic",
    "param_hash",
    "planted_recovery",
    "planted_workload",
    "run_metadata",
    "run_spec",
    "save_json",
    "save_snapshot",
    "set_scores",
    "snapshot_path",
    "standard_miner",
    "timed",
    "validate_snapshot",
]

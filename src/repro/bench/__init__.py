"""Experiment harness: workloads, measures, tables, experiment suite.

``repro.bench.experiments`` holds one function per experiment in the
DESIGN.md index; the ``benchmarks/`` directory and the CLI both drive
those functions, so results are identical regardless of entry point.
"""

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import Experiment, timed
from repro.bench.measures import PlantedRecovery, SetScores, planted_recovery, set_scores
from repro.bench.reporting import Table, format_value, save_json
from repro.bench.workloads import Workload, planted_workload, standard_miner

__all__ = [
    "ALL_EXPERIMENTS",
    "Experiment",
    "PlantedRecovery",
    "SetScores",
    "Table",
    "Workload",
    "format_value",
    "planted_recovery",
    "planted_workload",
    "save_json",
    "set_scores",
    "standard_miner",
    "timed",
]

"""Effectiveness measures for subspace-detection experiments.

Two notions of ground truth coexist:

* the **oracle answer set** — the exact outlying subspaces computed by
  exhaustive search; precision/recall against it scores any heuristic
  (HOS-Miner's pruning is lossless, so it must score 1.0/1.0 — that is
  itself a reproduced claim);
* the **planted subspace** ``s*`` of a synthetic outlier; recovery
  metrics ask whether a method points the user at the planted cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.subspace import Subspace, is_subset

__all__ = [
    "SetScores",
    "set_scores",
    "planted_recovery",
    "PlantedRecovery",
]


@dataclass(frozen=True, slots=True)
class SetScores:
    """Precision / recall / F1 of a detected set vs a reference set."""

    precision: float
    recall: float
    f1: float
    detected: int
    reference: int
    correct: int


def set_scores(detected: Iterable[int], reference: Iterable[int]) -> SetScores:
    """Score two collections of subspace masks as sets.

    Empty-set conventions: precision of an empty detection is 1.0
    (nothing wrong was claimed); recall of an empty reference is 1.0
    (nothing was there to find).
    """
    detected_set = set(detected)
    reference_set = set(reference)
    correct = len(detected_set & reference_set)
    precision = correct / len(detected_set) if detected_set else 1.0
    recall = correct / len(reference_set) if reference_set else 1.0
    denominator = precision + recall
    f1 = 2.0 * precision * recall / denominator if denominator > 0 else 0.0
    return SetScores(
        precision=precision,
        recall=recall,
        f1=f1,
        detected=len(detected_set),
        reference=len(reference_set),
        correct=correct,
    )


@dataclass(frozen=True, slots=True)
class PlantedRecovery:
    """How well an answer points at a planted subspace ``s*``.

    Attributes
    ----------
    flagged:
        The method reported *any* outlying subspace for the point.
    exact:
        ``s*`` itself appears among the minimal detected subspaces.
    contained:
        Some minimal detected subspace is a subset of ``s*`` — the
        answer isolates (part of) the planted cause without dragging in
        unrelated dimensions; equivalently ``s*`` lies in the upward
        closure of the detection.
    covered:
        Some minimal detected subspace relates to ``s*`` by inclusion in
        either direction — the weakest "pointed at the cause" notion
        (a superset answer still names every planted dimension).
    best_jaccard:
        Best Jaccard similarity between ``s*`` and any minimal detected
        subspace (0 when nothing was detected).
    """

    flagged: bool
    exact: bool
    contained: bool
    covered: bool
    best_jaccard: float


def planted_recovery(minimal: Iterable[Subspace], planted: Subspace) -> PlantedRecovery:
    """Score a minimal-subspace answer against a planted subspace."""
    minimal = list(minimal)
    if not minimal:
        return PlantedRecovery(
            flagged=False, exact=False, contained=False, covered=False, best_jaccard=0.0
        )
    exact = any(found.mask == planted.mask for found in minimal)
    contained = any(is_subset(found.mask, planted.mask) for found in minimal)
    covered = contained or any(
        is_subset(planted.mask, found.mask) for found in minimal
    )
    best_jaccard = max(
        (found.mask & planted.mask).bit_count() / (found.mask | planted.mask).bit_count()
        for found in minimal
    )
    return PlantedRecovery(
        flagged=True,
        exact=exact,
        contained=contained,
        covered=covered,
        best_jaccard=best_jaccard,
    )

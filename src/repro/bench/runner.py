"""Execute a declarative spec: warm-up/repeat policy plus run metadata.

:func:`run_spec` is the single execution path for every benchmark in the
repo — the ``benchmarks/`` scripts, the ``bench`` CLI subcommand and the
CI smoke tier all call it, so a condition measured anywhere carries the
same metadata stamp (git SHA, parameter hash, numpy/BLAS build, wall and
CPU time, backend cost counters) and serializes to the same canonical
``BENCH_*.json`` schema (see :mod:`repro.bench.snapshot`).
"""

from __future__ import annotations

import datetime
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bench.harness import Experiment
from repro.bench.spec import ExperimentSpec, SpecError

__all__ = [
    "ConditionRecord",
    "SpecResult",
    "run_metadata",
    "run_spec",
]

SCHEMA_VERSION = 2


def _git_revision() -> tuple[str, bool]:
    """(short SHA, dirty flag); ``("unknown", False)`` outside a checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha or "unknown", bool(status)
    except (OSError, subprocess.SubprocessError):
        return "unknown", False


def _blas_info() -> str:
    """One-line description of the BLAS numpy was built against."""
    try:
        config = np.show_config(mode="dicts")  # numpy >= 1.26
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version", "")
        return f"{name} {version}".strip()
    except TypeError:  # older numpy: show_config() only prints
        return "unknown"


def run_metadata(spec: ExperimentSpec, tier: str) -> dict[str, Any]:
    """The per-run provenance stamp embedded in every snapshot."""
    sha, dirty = _git_revision()
    return {
        "experiment": spec.name,
        "tier": tier,
        "git_sha": sha,
        "git_dirty": dirty,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def _normalize_rows(raw: Any, spec: ExperimentSpec) -> list[dict[str, Any]]:
    """Coerce a run() return value to a list of measures dicts."""
    if raw is None:
        raise SpecError(f"spec {spec.name!r}: run() returned None")
    rows = raw if isinstance(raw, list) else [raw]
    for row in rows:
        if not isinstance(row, dict):
            raise SpecError(
                f"spec {spec.name!r}: run() must return a measures dict or a "
                f"list of them, got {type(row).__name__}"
            )
    return rows


def _aggregate(repeat_rows: list[list[dict[str, Any]]]) -> tuple[list[dict], list[str]]:
    """Merge measured repeats: per-key median for numbers, first value
    otherwise. Returns (rows, notes) with side-channel keys stripped."""
    notes: list[str] = []
    first = repeat_rows[0]
    merged: list[dict[str, Any]] = []
    for row_index, template in enumerate(first):
        out: dict[str, Any] = {}
        for key, value in template.items():
            if key == "_note":
                notes.append(str(value))
                continue
            if key.startswith("_"):
                continue
            series = [
                rows[row_index].get(key, value)
                for rows in repeat_rows
                if row_index < len(rows)
            ]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                out[key] = value
            else:
                out[key] = float(np.median([float(v) for v in series]))
                if isinstance(value, int) and all(
                    isinstance(v, int) for v in series
                ):
                    out[key] = int(out[key])
        merged.append(out)
    return merged, notes


@dataclass
class ConditionRecord:
    """One executed condition: identity, measures, costs."""

    params: dict[str, Any]
    param_hash: str
    rows: list[dict[str, Any]]
    wall_time_s: float
    cpu_time_s: float
    repeats: int
    counters: dict[str, int] = field(default_factory=dict)
    #: Latency percentiles over the measured repeats (schema v2); equal
    #: to ``wall_time_s`` when repeats are too few to resolve a tail.
    wall_time_p50_s: float = 0.0
    wall_time_p99_s: float = 0.0

    @property
    def reverify_fraction(self) -> "float | None":
        """Share of GEMM-kernel masks re-verified exactly near the
        threshold — the precision tier's honesty measure. ``None`` when
        the condition ran no GEMM masks."""
        gemm_masks = self.counters.get("gemm_masks", 0)
        if gemm_masks <= 0:
            return None
        return self.counters.get("reverified_masks", 0) / gemm_masks


@dataclass
class SpecResult:
    """A finished run of one spec at one tier."""

    spec: ExperimentSpec
    tier: str
    metadata: dict[str, Any]
    conditions: list[ConditionRecord]
    notes: list[str] = field(default_factory=list)

    def rows(self) -> list[dict[str, Any]]:
        """Every table row across conditions, in condition order."""
        return [row for record in self.conditions for row in record.rows]

    # ------------------------------------------------------------------
    def to_experiment(self, latency: bool = False) -> Experiment:
        """Render as the classic printed :class:`Experiment` table.

        ``latency=True`` (the ``bench`` CLI) appends per-condition
        ``wall_p50_ms``/``wall_p99_ms`` columns — the schema-v2 latency
        percentiles over the measured repeats — to every row of that
        condition. The paper-table experiments render without them.
        """
        if latency:
            rows = [
                {
                    **row,
                    "wall_p50_ms": record.wall_time_p50_s * 1e3,
                    "wall_p99_ms": record.wall_time_p99_s * 1e3,
                }
                for record in self.conditions
                for row in record.rows
            ]
        else:
            rows = self.rows()
        columns = list(self.spec.columns)
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        experiment = Experiment(
            experiment_id=self.spec.name.upper(),
            title=self.spec.title,
            columns=columns,
            expectation=self.spec.expectation,
        )
        for row in rows:
            experiment.add_row(**{column: row.get(column, "") for column in columns})
        for note in [*self.spec.notes, *self.notes]:
            experiment.note(note)
        return experiment

    def to_snapshot(self) -> dict[str, Any]:
        """The canonical ``BENCH_*.json`` payload (see snapshot module)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "experiment": self.spec.name,
            "title": self.spec.title,
            "tier": self.tier,
            "metadata": dict(self.metadata),
            "regression": dict(self.spec.regression),
            "notes": list(self.notes),
            "conditions": [
                {
                    "params": record.params,
                    "param_hash": record.param_hash,
                    "repeats": record.repeats,
                    "wall_time_s": record.wall_time_s,
                    "cpu_time_s": record.cpu_time_s,
                    "wall_time_p50_s": record.wall_time_p50_s,
                    "wall_time_p99_s": record.wall_time_p99_s,
                    "reverify_fraction": record.reverify_fraction,
                    "counters": record.counters,
                    "rows": record.rows,
                }
                for record in self.conditions
            ],
        }


def run_spec(spec: ExperimentSpec, tier: str = "smoke") -> SpecResult:
    """Execute every condition of *spec* at *tier*.

    Each condition runs ``spec.warmup`` unmeasured times and then
    ``spec.repeats`` measured times; numeric measures are aggregated by
    median across repeats while wall/CPU time keep the *minimum* (the
    least-noise estimate of the true cost). The shared context, when the
    spec declares one, is built exactly once per call — mirroring the
    original scripts that fitted one workload and swept a knob over it.
    """
    ctx = spec.setup(tier) if spec.setup is not None else None
    metadata = run_metadata(spec, tier)
    records: list[ConditionRecord] = []
    all_notes: list[str] = []
    for condition in spec.conditions(tier):
        for _ in range(spec.warmup):
            spec.run(ctx, **condition.params)
        repeat_rows: list[list[dict[str, Any]]] = []
        wall_times, cpu_times = [], []
        counters: dict[str, int] = {}
        for _ in range(spec.repeats):
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            raw = spec.run(ctx, **condition.params)
            wall_times.append(time.perf_counter() - wall_start)
            cpu_times.append(time.process_time() - cpu_start)
            rows = _normalize_rows(raw, spec)
            # Counters describe one execution; the last measured repeat
            # stands for the condition (identical across repeats for the
            # deterministic kernels).
            counters = {}
            for row in rows:
                extra = row.get("_counters")
                if isinstance(extra, dict):
                    for key, value in extra.items():
                        if key.startswith("peak_"):
                            # High-water marks: a sum across rows would
                            # measure traffic, not footprint.
                            counters[key] = max(counters.get(key, 0), int(value))
                        else:
                            counters[key] = counters.get(key, 0) + int(value)
            repeat_rows.append(rows)
        rows, notes = _aggregate(repeat_rows)
        # A note emitted by several conditions (shared-context specs)
        # should render once.
        all_notes.extend(note for note in notes if note not in all_notes)
        records.append(
            ConditionRecord(
                params=condition.params,
                param_hash=condition.hash,
                rows=rows,
                wall_time_s=min(wall_times),
                cpu_time_s=min(cpu_times),
                repeats=spec.repeats,
                counters=counters,
                wall_time_p50_s=float(np.percentile(wall_times, 50)),
                wall_time_p99_s=float(np.percentile(wall_times, 99)),
            )
        )
    return SpecResult(
        spec=spec, tier=tier, metadata=metadata, conditions=records, notes=all_notes
    )

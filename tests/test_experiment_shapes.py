"""Reproduction guards: the paper's claimed *shapes*, pinned as tests.

The bench specs (``repro bench``) print measured tables; these tests
assert the shapes those tables must keep showing (who wins, what grows,
what shrinks) on the fast grids, so a regression in any module that
silently broke a reproduced claim fails CI rather than only changing a
printed table.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    e1_scalability_n,
    e2_scalability_d,
    e4_threshold,
    e6_effectiveness,
    e9_filter,
    e10_ablation,
)


@pytest.fixture(scope="module")
def e10_rows():
    return {row["strategy"]: row for row in e10_ablation(fast=True).table.as_records()}


class TestE10Shapes:
    def test_every_strategy_matches_oracle(self, e10_rows):
        assert all(row["answers_match_oracle"] == "yes" for row in e10_rows.values())

    def test_pruning_beats_exhaustive_everywhere(self, e10_rows):
        exhaustive = float(e10_rows["exhaustive"]["outlier_q_evals"])
        for name in ("bottom_up", "top_down", "tsf_uniform", "tsf_adaptive"):
            assert float(e10_rows[name]["outlier_q_evals"]) < exhaustive

    def test_fixed_sweeps_are_one_sided(self, e10_rows):
        # bottom-up: good on outliers, useless on inliers; top-down: reverse.
        assert float(e10_rows["bottom_up"]["inlier_q_evals"]) == pytest.approx(
            float(e10_rows["exhaustive"]["inlier_q_evals"])
        )
        assert float(e10_rows["top_down"]["inlier_q_evals"]) == 1.0
        assert float(e10_rows["bottom_up"]["outlier_q_evals"]) < float(
            e10_rows["top_down"]["outlier_q_evals"]
        )

    def test_tsf_uniform_gets_both_fast_paths(self, e10_rows):
        assert float(e10_rows["tsf_uniform"]["inlier_q_evals"]) == 1.0
        assert float(e10_rows["tsf_uniform"]["outlier_q_evals"]) < float(
            e10_rows["bottom_up"]["outlier_q_evals"]
        )

    def test_adaptive_repairs_learned_prior_pathology(self, e10_rows):
        assert float(e10_rows["tsf_adaptive"]["outlier_q_evals"]) < 0.5 * float(
            e10_rows["tsf_learned"]["outlier_q_evals"]
        )
        assert float(e10_rows["tsf_adaptive"]["inlier_q_evals"]) == 1.0


class TestE1E2Shapes:
    def test_e1_hos_always_beats_exhaustive_on_evaluations(self):
        for row in e1_scalability_n(fast=True).table.as_records():
            assert float(row["hos_evals"]) < float(row["exh_evals"])
            assert float(row["adapt_evals"]) < float(row["exh_evals"])

    def test_e2_evaluated_fraction_shrinks_with_d(self):
        rows = e2_scalability_d(fast=True).table.as_records()
        fractions = [float(row["adapt_fraction"]) for row in rows]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] < 0.25


class TestE4Shapes:
    def test_planted_always_flagged_inliers_never(self):
        for row in e4_threshold(fast=True).table.as_records():
            flagged, total = row["flagged_planted"].split("/")
            assert flagged == total
            assert row["flagged_inliers"].startswith("0/")

    def test_threshold_grows_with_quantile(self):
        rows = e4_threshold(fast=True).table.as_records()
        thresholds = [float(row["T"]) for row in rows]
        assert thresholds == sorted(thresholds)


class TestE6Shapes:
    @pytest.fixture(scope="class")
    def by_key(self):
        rows = e6_effectiveness(fast=True).table.as_records()
        return {(row["workload"], row["method"]): row for row in rows}

    @pytest.mark.parametrize("workload", ["strong-3d", "subtle-2d"])
    def test_hos_matches_oracle_exactly(self, by_key, workload):
        row = by_key[(workload, "HOS-Miner")]
        assert float(row["prec_vs_oracle"]) == 1.0
        assert float(row["rec_vs_oracle"]) == 1.0
        assert float(row["flagged"]) == 1.0
        assert float(row["contained"]) == 1.0

    @pytest.mark.parametrize("workload", ["strong-3d", "subtle-2d"])
    def test_evolutionary_trails_on_every_axis(self, by_key, workload):
        hos = by_key[(workload, "HOS-Miner")]
        evo = by_key[(workload, "Evolutionary")]
        assert float(evo["rec_vs_oracle"]) < float(hos["rec_vs_oracle"])
        assert float(evo["flagged"]) <= float(hos["flagged"])
        assert int(evo["points_flagged"]) > int(hos["points_flagged"])


class TestE9Shapes:
    def test_filter_collapses_by_an_order_of_magnitude(self):
        for row in e9_filter(fast=True).table.as_records():
            assert float(row["refinement_factor"]) > 10.0
            assert int(row["minimal"]) < int(row["outlying_total"])

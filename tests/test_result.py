"""The user-facing OutlyingSubspaceResult object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import OutlyingSubspaceResult
from repro.core.search import SearchStats
from repro.core.subspace import Subspace


def _result(minimal_dims, d=4, total=None, names=None):
    minimal = [Subspace.from_dims(dims, d) for dims in minimal_dims]
    return OutlyingSubspaceResult(
        query=np.zeros(d),
        d=d,
        k=3,
        threshold=5.0,
        minimal=minimal,
        total_outlying=total if total is not None else len(minimal),
        od_values={s: 6.0 + i for i, s in enumerate(minimal)},
        stats=SearchStats(od_evaluations=7),
        feature_names=names,
    )


class TestBasics:
    def test_is_outlier(self):
        assert _result([(0, 2)]).is_outlier
        assert not _result([]).is_outlier

    def test_refinement_factor(self):
        result = _result([(0,), (1,)], total=10)
        assert result.refinement_factor == pytest.approx(5.0)
        assert _result([]).refinement_factor == 1.0

    def test_is_outlying_in_upward_closure(self):
        result = _result([(0, 2)])
        assert result.is_outlying_in(Subspace.from_dims((0, 2), 4))
        assert result.is_outlying_in(Subspace.from_dims((0, 1, 2), 4))
        assert not result.is_outlying_in(Subspace.from_dims((1, 3), 4))

    def test_all_outlying_masks_matches_closure(self):
        result = _result([(0,)])
        assert len(result.all_outlying_masks()) == 8  # supersets of {0} in d=4


class TestRendering:
    def test_describe_subspace_default_names(self):
        result = _result([(0, 2)])
        assert result.describe_subspace(result.minimal[0]) == "{x1, x3}"

    def test_describe_subspace_custom_names(self):
        result = _result([(0, 2)], names=["temp", "hr", "bp", "o2"])
        assert result.describe_subspace(result.minimal[0]) == "{temp, bp}"

    def test_explain_outlier_lists_minimal(self):
        text = _result([(0, 2)], total=5).explain()
        assert "5 subspaces" in text
        assert "[1, 3]" in text
        assert "OD=6" in text

    def test_explain_non_outlier(self):
        text = _result([]).explain()
        assert "NOT an outlier" in text

    def test_explain_truncates(self):
        result = _result([(i,) for i in range(4)], d=4)
        text = result.explain(max_rows=2)
        assert "and 2 more" in text

    def test_repr(self):
        assert "[1, 3]" in repr(_result([(0, 2)]))

"""THE correctness property: every pruning strategy equals exhaustive search.

Both pruning rules are exact consequences of OD monotonicity, so the
answer set of any search variant — TSF-ordered with any priors, adaptive
or not, per-level or per-evaluation re-selection, fixed sweeps — must be
*identical* to brute-force enumeration. Hypothesis drives random
datasets, thresholds, k and priors through all variants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_search import exhaustive_search, fixed_order_search
from repro.core.od import ODEvaluator
from repro.core.priors import PruningPriors
from repro.core.search import DynamicSubspaceSearch
from repro.index.linear import LinearScanIndex


def _make_problem(seed: int, d: int, k: int, quantile: float):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(50, d))
    X[0, : max(1, d // 2)] += generator.uniform(0, 8)  # sometimes outlying
    backend = LinearScanIndex(X)
    evaluator = ODEvaluator(backend, X[0], k, exclude=0)
    full_mask = (1 << d) - 1
    # Pick T relative to this very point's OD range so all regimes
    # (no outlying subspaces / some / all) get generated.
    top = evaluator.od(full_mask)
    threshold = quantile * top if top > 0 else 0.0
    return evaluator, threshold


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    d=st.integers(2, 6),
    k=st.integers(1, 5),
    quantile=st.floats(0.0, 1.2),
)
def test_dynamic_search_equals_exhaustive(seed, d, k, quantile):
    evaluator, threshold = _make_problem(seed, d, k, quantile)
    oracle = frozenset(exhaustive_search(evaluator, threshold).outlying_masks)
    for priors in (PruningPriors.uniform(d),):
        for adaptive in (False, True):
            for reselect in ("level", "evaluation"):
                outcome = DynamicSubspaceSearch(
                    evaluator, threshold, priors, reselect, adaptive=adaptive
                ).run()
                assert frozenset(outcome.outlying_masks) == oracle


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    d=st.integers(2, 6),
    k=st.integers(1, 4),
    quantile=st.floats(0.0, 1.2),
    order=st.sampled_from(["bottom_up", "top_down"]),
)
def test_fixed_order_search_equals_exhaustive(seed, d, k, quantile, order):
    evaluator, threshold = _make_problem(seed, d, k, quantile)
    oracle = frozenset(exhaustive_search(evaluator, threshold).outlying_masks)
    outcome = fixed_order_search(evaluator, threshold, order)
    assert frozenset(outcome.outlying_masks) == oracle


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    d=st.integers(2, 5),
    up=st.lists(st.floats(0, 1), min_size=5, max_size=5),
    down=st.lists(st.floats(0, 1), min_size=5, max_size=5),
)
def test_arbitrary_priors_cannot_change_the_answer(seed, d, up, down):
    """Priors steer the order only — ANY probability assignment must
    produce the oracle answer."""
    evaluator, threshold = _make_problem(seed, d, 3, 0.8)
    p_up = np.zeros(d + 1)
    p_down = np.zeros(d + 1)
    for m in range(1, d + 1):
        p_up[m] = up[m - 1]
        p_down[m] = down[m - 1]
    priors = PruningPriors(d, p_up, p_down)
    oracle = frozenset(exhaustive_search(evaluator, threshold).outlying_masks)
    outcome = DynamicSubspaceSearch(evaluator, threshold, priors).run()
    assert frozenset(outcome.outlying_masks) == oracle


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20), d=st.integers(2, 6))
def test_answer_set_is_upward_closed(seed, d):
    """Property 2 end-to-end: the returned answer set is upward closed."""
    from repro.core.subspace import iter_proper_supermasks

    evaluator, threshold = _make_problem(seed, d, 3, 0.7)
    outcome = DynamicSubspaceSearch(
        evaluator, threshold, PruningPriors.uniform(d)
    ).run()
    answer = set(outcome.outlying_masks)
    for mask in answer:
        for sup in iter_proper_supermasks(mask, d):
            assert sup in answer


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20), d=st.integers(2, 6))
def test_stats_account_for_every_subspace(seed, d):
    """Every subspace is either evaluated or pruned, exactly once."""
    evaluator, threshold = _make_problem(seed, d, 3, 0.9)
    evaluator.reset_counters()
    evaluator._cache.clear()  # fresh start: _make_problem pre-warmed one OD
    outcome = DynamicSubspaceSearch(
        evaluator, threshold, PruningPriors.uniform(d)
    ).run()
    stats = outcome.stats
    total = (1 << d) - 1
    assert (
        stats.od_evaluations + stats.upward_pruned + stats.downward_pruned == total
    )
    assert stats.od_evaluations == evaluator.evaluations
    assert sum(stats.evaluations_by_level.values()) == stats.od_evaluations


def test_threshold_zero_makes_everything_outlying(rng):
    X = rng.normal(size=(30, 4))
    evaluator = ODEvaluator(LinearScanIndex(X), X[0], 3, exclude=0)
    outcome = DynamicSubspaceSearch(evaluator, 0.0, PruningPriors.uniform(4)).run()
    assert len(outcome.outlying_masks) == 15
    assert outcome.is_outlier_anywhere()


def test_huge_threshold_makes_nothing_outlying(rng):
    X = rng.normal(size=(30, 4))
    evaluator = ODEvaluator(LinearScanIndex(X), X[0], 3, exclude=0)
    outcome = DynamicSubspaceSearch(evaluator, 1e9, PruningPriors.uniform(4)).run()
    assert outcome.outlying_masks == []
    assert not outcome.is_outlier_anywhere()
    # A single full-space evaluation should have decided everything.
    assert outcome.stats.od_evaluations == 1


class TestSearchValidation:
    def test_negative_threshold_rejected(self, rng):
        import pytest

        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            DynamicSubspaceSearch(evaluator, -1.0, PruningPriors.uniform(3))

    def test_mismatched_priors_rejected(self, rng):
        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            DynamicSubspaceSearch(evaluator, 1.0, PruningPriors.uniform(4))

    def test_bad_reselect_rejected(self, rng):
        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            DynamicSubspaceSearch(
                evaluator, 1.0, PruningPriors.uniform(3), reselect="both"
            )

    def test_bad_adaptive_weight_rejected(self, rng):
        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            DynamicSubspaceSearch(
                evaluator, 1.0, PruningPriors.uniform(3), adaptive_prior_weight=0
            )

    def test_exhaustive_rejects_negative_threshold(self, rng):
        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            exhaustive_search(evaluator, -0.5)

    def test_fixed_order_rejects_unknown_order(self, rng):
        from repro.core.exceptions import ConfigurationError

        X = rng.normal(size=(20, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            fixed_order_search(evaluator, 1.0, order="sideways")

"""Equi-depth grid and the sparsity coefficient."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.grid import EquiDepthGrid, SparseCube
from repro.core.exceptions import ConfigurationError, DataShapeError


class TestDiscretisation:
    def test_equi_depth_on_uniform_data(self):
        X = np.linspace(0, 1, 1000).reshape(-1, 1)
        grid = EquiDepthGrid(X, phi=5)
        counts = np.bincount(grid.codes[:, 0], minlength=5)
        assert counts.min() >= 190 and counts.max() <= 210

    def test_codes_in_range(self, rng):
        X = rng.normal(size=(200, 3))
        grid = EquiDepthGrid(X, phi=4)
        assert grid.codes.min() >= 0
        assert grid.codes.max() <= 3

    def test_ties_collapse_gracefully(self):
        X = np.zeros((100, 1))  # fully tied column
        grid = EquiDepthGrid(X, phi=4)
        assert len(set(grid.codes[:, 0])) == 1  # everything in one range

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiDepthGrid(np.zeros((10, 2)), phi=1)
        with pytest.raises(DataShapeError):
            EquiDepthGrid(np.zeros((0, 2)), phi=3)

    def test_selectivity(self):
        grid = EquiDepthGrid(np.random.default_rng(0).normal(size=(50, 2)), phi=4)
        assert grid.selectivity == 0.25


class TestCubes:
    def test_rows_in_cube_matches_manual_filter(self, rng):
        X = rng.normal(size=(300, 4))
        grid = EquiDepthGrid(X, phi=3)
        dims, ranges = (0, 2), (1, 0)
        rows = grid.rows_in_cube(dims, ranges)
        expected = np.flatnonzero(
            (grid.codes[:, 0] == 1) & (grid.codes[:, 2] == 0)
        )
        np.testing.assert_array_equal(rows, expected)

    def test_count_consistency(self, rng):
        X = rng.normal(size=(200, 3))
        grid = EquiDepthGrid(X, phi=3)
        total = sum(
            grid.count_in_cube((0,), (r,)) for r in range(3)
        )
        assert total == 200

    def test_cube_argument_validation(self, rng):
        grid = EquiDepthGrid(rng.normal(size=(50, 3)), phi=3)
        with pytest.raises(ConfigurationError):
            grid.rows_in_cube((), ())
        with pytest.raises(ConfigurationError):
            grid.rows_in_cube((0, 1), (0,))


class TestSparsity:
    def test_manual_value(self):
        """S(C) = (n(C) - N f^k) / sqrt(N f^k (1 - f^k)) with N=1000,
        phi=5, k=3: expected 8, sd = sqrt(8 * 0.992)."""
        grid = EquiDepthGrid(np.random.default_rng(0).normal(size=(1000, 5)), phi=5)
        expected = 1000 * 0.2**3
        sd = math.sqrt(1000 * 0.2**3 * (1 - 0.2**3))
        assert grid.sparsity(1, 3) == pytest.approx((1 - expected) / sd)

    def test_sign_conventions(self, rng):
        grid = EquiDepthGrid(rng.normal(size=(500, 4)), phi=4)
        assert grid.sparsity(0, 2) < 0  # emptier than expected
        assert grid.sparsity(400, 2) > 0  # denser than expected

    def test_evaluate_solution_wildcards(self, rng):
        X = rng.normal(size=(100, 4))
        grid = EquiDepthGrid(X, phi=3)
        solution = np.array([-1, 2, -1, 0], dtype=np.int32)
        cube = grid.evaluate_solution(solution)
        assert cube.dims == (1, 3)
        assert cube.ranges == (2, 0)
        assert cube.count == grid.count_in_cube((1, 3), (2, 0))

    def test_all_wildcard_solution_rejected(self, rng):
        grid = EquiDepthGrid(rng.normal(size=(50, 3)), phi=3)
        with pytest.raises(ConfigurationError):
            grid.evaluate_solution(np.full(3, -1, dtype=np.int32))


class TestSparseCube:
    def test_notation_and_contains(self):
        cube = SparseCube(dims=(1, 4), ranges=(0, 3), count=2, sparsity=-2.3, rows=(7, 9))
        assert cube.contains_row(7)
        assert not cube.contains_row(8)
        assert cube.dimensionality == 2
        assert "2:r0" in cube.notation() and "5:r3" in cube.notation()

"""Saving-factor definitions, the paper's worked examples, and TSF."""

from __future__ import annotations

from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError, DimensionalityError
from repro.core.savings import (
    TSFInputs,
    downward_saving_factor,
    total_saving_factor,
    total_workload,
    upward_saving_factor,
    workload_above,
    workload_below,
)


class TestWorkedExamples:
    """The exact numbers printed in Section 3.1 of the paper (d = 4)."""

    def test_dsf_of_a_3d_subspace_is_9(self):
        # DSF([1,2,3]) = C(3,1)*1 + C(3,2)*2 = 9
        assert downward_saving_factor(3) == 9

    def test_usf_of_a_2d_subspace_in_d4_is_10(self):
        # USF([1,4]) = C(2,1)*(2+1) + C(2,2)*(2+2) = 10
        assert upward_saving_factor(2, 4) == 10


class TestClosedForms:
    @given(st.integers(1, 16))
    def test_dsf_closed_form(self, m):
        assert downward_saving_factor(m) == m * (2 ** (m - 1) - 1)

    @given(st.integers(1, 16))
    def test_total_workload_closed_form(self, d):
        assert total_workload(d) == sum(comb(d, i) * i for i in range(1, d + 1))
        assert total_workload(d) == d * 2 ** (d - 1)

    @given(st.integers(1, 14), st.integers(1, 14))
    def test_workload_partition_identity(self, m, d):
        """Below-m + level-m + above-m workloads must cover everything."""
        if m > d:
            m, d = d, m
        level_m = comb(d, m) * m
        assert workload_below(m, d) + level_m + workload_above(m, d) == total_workload(d)

    @given(st.integers(1, 14), st.integers(1, 14))
    def test_usf_is_workload_of_supersets(self, m, d):
        """USF(m, d) equals the summed evaluation cost of the supersets of
        one m-dimensional subspace."""
        if m > d:
            m, d = d, m
        expected = sum(comb(d - m, i) * (m + i) for i in range(1, d - m + 1))
        assert upward_saving_factor(m, d) == expected

    def test_boundaries(self):
        assert downward_saving_factor(1) == 0  # no subsets below level 1
        assert upward_saving_factor(5, 5) == 0  # no supersets above level d


class TestValidation:
    def test_dsf_rejects_nonpositive(self):
        with pytest.raises(DimensionalityError):
            downward_saving_factor(0)

    def test_usf_rejects_m_above_d(self):
        with pytest.raises(DimensionalityError):
            upward_saving_factor(5, 4)

    def test_workloads_reject_bad_args(self):
        with pytest.raises(DimensionalityError):
            workload_below(0, 4)
        with pytest.raises(DimensionalityError):
            workload_above(5, 4)
        with pytest.raises(DimensionalityError):
            total_workload(0)


class TestTSF:
    def _inputs(self, m, d, p_up=0.5, p_down=0.5, below=None, above=None):
        return TSFInputs(
            m=m,
            d=d,
            p_up=p_up,
            p_down=p_down,
            remaining_below=workload_below(m, d) if below is None else below,
            remaining_above=workload_above(m, d) if above is None else above,
        )

    def test_level_1_uses_only_up_term(self):
        inputs = self._inputs(1, 4, p_up=1.0, p_down=1.0)
        assert total_saving_factor(inputs) == pytest.approx(
            upward_saving_factor(1, 4)
        )

    def test_level_d_uses_only_down_term(self):
        inputs = self._inputs(4, 4, p_up=1.0, p_down=1.0)
        assert total_saving_factor(inputs) == pytest.approx(downward_saving_factor(4))

    def test_interior_level_sums_both_terms(self):
        inputs = self._inputs(2, 4, p_up=0.5, p_down=0.5)
        expected = 0.5 * downward_saving_factor(2) + 0.5 * upward_saving_factor(2, 4)
        assert total_saving_factor(inputs) == pytest.approx(expected)

    def test_remaining_workload_scales_terms(self):
        full = total_saving_factor(self._inputs(2, 4, p_up=0.0, p_down=1.0))
        half = total_saving_factor(
            self._inputs(2, 4, p_up=0.0, p_down=1.0, below=workload_below(2, 4) // 2)
        )
        assert half == pytest.approx(full * 0.5)

    def test_exhausted_side_contributes_zero(self):
        inputs = self._inputs(3, 4, p_up=1.0, p_down=1.0, below=0, above=0)
        assert total_saving_factor(inputs) == 0.0

    def test_zero_probability_kills_term(self):
        only_up = total_saving_factor(self._inputs(2, 4, p_up=1.0, p_down=0.0))
        assert only_up == pytest.approx(upward_saving_factor(2, 4))

    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.floats(0, 1),
        st.floats(0, 1),
    )
    def test_tsf_nonnegative(self, m, d, p_up, p_down):
        if m > d:
            m, d = d, m
        assert total_saving_factor(self._inputs(m, d, p_up, p_down)) >= 0.0

    def test_inputs_validation(self):
        with pytest.raises(DimensionalityError):
            TSFInputs(m=0, d=4, p_up=0.5, p_down=0.5, remaining_below=0, remaining_above=0)
        with pytest.raises(ConfigurationError):
            TSFInputs(m=2, d=4, p_up=1.5, p_down=0.5, remaining_below=0, remaining_above=0)
        with pytest.raises(ConfigurationError):
            TSFInputs(m=2, d=4, p_up=0.5, p_down=0.5, remaining_below=-1, remaining_above=0)

"""Cross-cutting robustness: degenerate data, metric variations, bounds.

These tests poke the corners a production deployment hits first:
duplicated rows, constant columns, tiny datasets, non-default metrics,
and every combination of the search's optional machinery.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_search import exhaustive_search
from repro.core.miner import HOSMiner
from repro.core.od import ODEvaluator
from repro.core.priors import PruningPriors
from repro.core.search import DynamicSubspaceSearch
from repro.index.linear import LinearScanIndex
from repro.index.vafile import VAFile


class TestDegenerateData:
    def test_heavily_duplicated_rows(self):
        X = np.zeros((50, 4))
        X[40:] = 1.0
        miner = HOSMiner(k=3, threshold=0.5, sample_size=2).fit(X)
        result = miner.query_row(0)
        assert not result.is_outlier  # duplicates are never outliers

    def test_constant_dataset(self):
        X = np.full((30, 3), 7.0)
        miner = HOSMiner(k=3, threshold=0.1, sample_size=2).fit(X)
        assert not miner.query_row(5).is_outlier
        assert miner.detect_outliers() == []

    def test_single_constant_column(self):
        generator = np.random.default_rng(0)
        X = generator.normal(size=(100, 4))
        X[:, 2] = 3.14
        X[0, 0] += 9.0
        miner = HOSMiner(k=4, sample_size=3, threshold_quantile=0.98).fit(X)
        result = miner.query_row(0)
        assert result.is_outlier
        # The constant column can never be the distinguishing dimension.
        assert all(2 not in s.dims or len(s.dims) > 1 for s in result.minimal)

    def test_minimum_viable_dataset(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        miner = HOSMiner(k=1, threshold=10.0, sample_size=0).fit(X)
        assert not miner.query_row(0).is_outlier

    def test_d_equals_one(self):
        generator = np.random.default_rng(1)
        X = generator.normal(size=(80, 1))
        X[0] += 10.0
        miner = HOSMiner(k=3, sample_size=2, threshold_quantile=0.97).fit(X)
        result = miner.query_row(0)
        assert result.is_outlier
        assert [s.dims for s in result.minimal] == [(0,)]


class TestMetricVariations:
    @pytest.mark.parametrize("metric", ["manhattan", "chebyshev", "minkowski:3"])
    def test_pipeline_matches_oracle_under_any_metric(self, metric):
        generator = np.random.default_rng(5)
        X = generator.normal(size=(150, 5))
        X[0, :2] += 8.0
        miner = HOSMiner(
            k=4, sample_size=3, threshold_quantile=0.98, metric=metric
        ).fit(X)
        result = miner.query_row(0)
        evaluator = ODEvaluator(miner.backend_, X[0], 4, exclude=0)
        oracle = exhaustive_search(evaluator, miner.threshold_)
        assert result.total_outlying == len(oracle.outlying_masks)

    @pytest.mark.parametrize("metric", ["manhattan", "chebyshev"])
    def test_tree_backends_honour_metric(self, metric):
        generator = np.random.default_rng(6)
        X = generator.normal(size=(200, 4))
        from repro.index import RStarTree

        tree = RStarTree(X, metric=metric, max_entries=8)
        scan = LinearScanIndex(X, metric=metric)
        ti, td = tree.knn(X[3], 6, (0, 2), exclude=3)
        si, sd = scan.knn(X[3], 6, (0, 2), exclude=3)
        assert list(ti) == list(si)
        np.testing.assert_allclose(td, sd)


class TestVAFileBounds:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), bits=st.integers(2, 8))
    def test_bound_sandwich(self, seed, bits):
        """For every point: lower bound <= exact distance <= upper bound."""
        generator = np.random.default_rng(seed)
        X = generator.normal(size=(80, 4))
        va = VAFile(X, bits=bits)
        q = generator.normal(size=4)
        dims = np.array([0, 2, 3])
        lower, upper = va._bounds(q, dims)
        exact = va.metric.pairwise(X, q, dims)
        assert np.all(lower <= exact + 1e-9)
        assert np.all(exact <= upper + 1e-9)


class TestSearchMachineryCombinations:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        adaptive=st.booleans(),
        reselect=st.sampled_from(["level", "evaluation"]),
        weight=st.floats(0.5, 50.0),
    )
    def test_every_combination_is_exact(self, seed, adaptive, reselect, weight):
        generator = np.random.default_rng(seed)
        X = generator.normal(size=(60, 5))
        X[0, :2] += generator.uniform(0, 6)
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 3, exclude=0)
        threshold = 0.8 * evaluator.od((1 << 5) - 1)
        oracle = frozenset(exhaustive_search(evaluator, threshold).outlying_masks)
        outcome = DynamicSubspaceSearch(
            evaluator,
            threshold,
            PruningPriors.uniform(5),
            reselect=reselect,
            adaptive=adaptive,
            adaptive_prior_weight=weight,
        ).run()
        assert frozenset(outcome.outlying_masks) == oracle

    def test_external_query_point_never_excluded(self):
        """query_point must not exclude any dataset row, even one that is
        byte-identical to the query."""
        X = np.zeros((20, 3))
        X[10:] = 2.0
        miner = HOSMiner(k=2, threshold=0.5, sample_size=0).fit(X)
        result = miner.query_point(np.zeros(3))
        assert not result.is_outlier  # zero-distance duplicates exist

    def test_repeated_queries_are_stable(self, fitted_miner):
        first = fitted_miner.query_row(0)
        second = fitted_miner.query_row(0)
        assert [s.mask for s in first.minimal] == [s.mask for s in second.minimal]
        assert first.total_outlying == second.total_outlying

"""OD profiles (the diagnostic extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.od import ODEvaluator
from repro.core.profile import compute_od_profile
from repro.core.subspace import dims_of_mask, popcount
from repro.index.linear import LinearScanIndex


@pytest.fixture(scope="module")
def outlier_evaluator():
    generator = np.random.default_rng(6)
    X = generator.normal(size=(150, 5))
    X[0, 0] += 8.0
    X[0, 1] += 8.0
    return ODEvaluator(LinearScanIndex(X), X[0], 4, exclude=0)


class TestProfileShape:
    def test_levels_cover_lattice(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=10.0)
        assert len(profile.levels) == 5
        assert [p.level for p in profile.levels] == [1, 2, 3, 4, 5]

    def test_max_is_monotone_across_levels(self, outlier_evaluator):
        """OD monotonicity lifts to the per-level maximum."""
        profile = compute_od_profile(outlier_evaluator, threshold=10.0)
        maxima = [p.maximum for p in profile.levels]
        assert maxima == sorted(maxima)

    def test_minimum_is_monotone_too(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=10.0)
        minima = [p.minimum for p in profile.levels]
        assert minima == sorted(minima)

    def test_argmax_mask_level_matches(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=10.0)
        for level in profile.levels:
            assert popcount(level.argmax_mask) == level.level

    def test_argmax_points_at_planted_dims(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=10.0)
        assert set(dims_of_mask(profile.levels[1].argmax_mask)) == {0, 1}

    def test_max_level_truncation(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=10.0, max_level=2)
        assert len(profile.levels) == 2


class TestProfileSemantics:
    def test_crossing_level(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=20.0)
        crossing = profile.crossing_level
        assert crossing is not None
        for level in profile.levels:
            if level.level < crossing:
                assert level.maximum < 20.0
            if level.level == crossing:
                assert level.maximum >= 20.0

    def test_no_crossing_when_threshold_huge(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=1e9)
        assert profile.crossing_level is None
        assert profile.margin < 0

    def test_margin_sign(self, outlier_evaluator):
        low = compute_od_profile(outlier_evaluator, threshold=1.0)
        assert low.margin > 0

    def test_outlying_fraction_bounds(self, outlier_evaluator):
        profile = compute_od_profile(outlier_evaluator, threshold=15.0)
        for level in profile.levels:
            assert 0.0 <= level.outlying_fraction <= 1.0

    def test_render_contains_marker(self, outlier_evaluator):
        text = compute_od_profile(outlier_evaluator, threshold=15.0).render()
        assert "OD profile" in text
        assert "|" in text
        assert "m= 5" in text or "m=5" in text.replace(" ", "")

    def test_validation(self, outlier_evaluator):
        with pytest.raises(ConfigurationError):
            compute_od_profile(outlier_evaluator, threshold=-1.0)
        with pytest.raises(ConfigurationError):
            compute_od_profile(outlier_evaluator, threshold=1.0, max_level=9)

"""Lattice state tracking: transitions, pruning, aggregates."""

from __future__ import annotations

from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DimensionalityError
from repro.core.lattice import MAX_LATTICE_DIM, SubspaceLattice, SubspaceState
from repro.core.subspace import is_subset, popcount


class TestConstruction:
    def test_initial_state_all_unknown(self):
        lattice = SubspaceLattice(4)
        assert lattice.has_unknown()
        assert all(state is SubspaceState.UNKNOWN for _, state in lattice.iter_states())

    def test_initial_level_counts(self):
        lattice = SubspaceLattice(5)
        for m in range(1, 6):
            assert lattice.remaining_count(m) == comb(5, m)

    def test_rejects_bad_width(self):
        with pytest.raises(DimensionalityError):
            SubspaceLattice(0)
        with pytest.raises(DimensionalityError):
            SubspaceLattice(MAX_LATTICE_DIM + 1)

    def test_max_width_accepted(self):
        assert SubspaceLattice(MAX_LATTICE_DIM).d == MAX_LATTICE_DIM


class TestTransitions:
    def test_mark_evaluated_outlying(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b011, outlying=True)
        assert lattice.state(0b011) is SubspaceState.EVALUATED_OUTLYING
        assert lattice.is_outlying(0b011)
        assert lattice.remaining_count(2) == comb(3, 2) - 1

    def test_mark_evaluated_non_outlying(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b011, outlying=False)
        assert lattice.state(0b011) is SubspaceState.EVALUATED_NON_OUTLYING
        assert not lattice.is_outlying(0b011)

    def test_double_decision_rejected(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b1, outlying=True)
        with pytest.raises(DimensionalityError):
            lattice.mark_evaluated(0b1, outlying=False)

    def test_bad_mask_rejected(self):
        lattice = SubspaceLattice(3)
        with pytest.raises(DimensionalityError):
            lattice.mark_evaluated(0, True)
        with pytest.raises(DimensionalityError):
            lattice.state(0b1000)


class TestPruning:
    def test_prune_supersets_marks_exactly_proper_supersets(self):
        lattice = SubspaceLattice(4)
        mask = 0b0011
        pruned = lattice.prune_supersets(mask)
        assert pruned == 2 ** 2 - 1  # supersets via the 2 free dims
        for other, state in lattice.iter_states():
            if other != mask and is_subset(mask, other):
                assert state is SubspaceState.PRUNED_OUTLYING
            else:
                assert state is SubspaceState.UNKNOWN

    def test_prune_subsets_marks_exactly_proper_subsets(self):
        lattice = SubspaceLattice(4)
        mask = 0b0111
        pruned = lattice.prune_subsets(mask)
        assert pruned == 2 ** 3 - 2
        for other, state in lattice.iter_states():
            if other != mask and is_subset(other, mask):
                assert state is SubspaceState.PRUNED_NON_OUTLYING
            else:
                assert state is SubspaceState.UNKNOWN

    def test_pruning_is_idempotent(self):
        lattice = SubspaceLattice(4)
        assert lattice.prune_supersets(0b0001) > 0
        assert lattice.prune_supersets(0b0001) == 0

    def test_guard_skips_walk_when_nothing_above(self):
        lattice = SubspaceLattice(3)
        for mask in [0b111]:
            lattice.mark_evaluated(mask, True)
        for mask in [0b011, 0b101, 0b110]:
            lattice.mark_evaluated(mask, True)
        # All levels above 1 decided; pruning from a singleton finds nothing.
        assert lattice.prune_supersets(0b001) == 0

    def test_counts_by_state(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b001, outlying=True)
        lattice.prune_supersets(0b001)
        histogram = lattice.counts_by_state()
        assert histogram[SubspaceState.EVALUATED_OUTLYING] == 1
        assert histogram[SubspaceState.PRUNED_OUTLYING] == 3
        assert histogram[SubspaceState.UNKNOWN] == 3

    def test_outlying_masks_collects_both_kinds(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b001, outlying=True)
        lattice.prune_supersets(0b001)
        outlying = set(lattice.outlying_masks())
        assert outlying == {0b001, 0b011, 0b101, 0b111}


class TestAggregates:
    def test_remaining_workloads(self):
        lattice = SubspaceLattice(4)
        assert lattice.remaining_workload_below(3) == comb(4, 1) * 1 + comb(4, 2) * 2
        assert lattice.remaining_workload_above(3) == comb(4, 4) * 4
        lattice.mark_evaluated(0b0001, outlying=False)
        assert lattice.remaining_workload_below(3) == comb(4, 1) * 1 - 1 + comb(4, 2) * 2

    def test_levels_with_unknown_shrinks(self):
        lattice = SubspaceLattice(2)
        assert lattice.levels_with_unknown() == [1, 2]
        lattice.mark_evaluated(0b11, outlying=False)
        assert lattice.levels_with_unknown() == [1]

    def test_decided_stats(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b001, outlying=True)
        lattice.prune_supersets(0b001)
        decided, outlying = lattice.decided_stats(2)
        assert (decided, outlying) == (2, 2)  # 011 and 101 pruned outlying
        total_decided, total_outlying = lattice.decided_stats_total()
        assert (total_decided, total_outlying) == (4, 4)

    def test_level_outlying_fraction(self):
        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b001, outlying=True)
        lattice.prune_supersets(0b001)
        assert lattice.level_outlying_fraction(2) == pytest.approx(2 / 3)
        assert lattice.level_outlying_fraction(3) == pytest.approx(1.0)

    def test_unknown_masks_snapshot(self):
        lattice = SubspaceLattice(3)
        masks = lattice.unknown_masks_at_level(2)
        assert sorted(masks) == [0b011, 0b101, 0b110]
        lattice.mark_evaluated(0b011, outlying=False)
        assert 0b011 not in lattice.unknown_masks_at_level(2)

    def test_first_unknown_cursor_walk(self):
        lattice = SubspaceLattice(3)
        mask, cursor = lattice.first_unknown_at_level(2, 0)
        lattice.mark_evaluated(mask, outlying=False)
        mask2, cursor2 = lattice.first_unknown_at_level(2, cursor)
        assert mask2 != mask and cursor2 >= cursor
        lattice.mark_evaluated(mask2, outlying=False)
        mask3, _ = lattice.first_unknown_at_level(2, cursor2)
        lattice.mark_evaluated(mask3, outlying=False)
        none, _ = lattice.first_unknown_at_level(2, 0)
        assert none == -1


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(2, 6),
    decisions=st.lists(
        st.tuples(st.integers(1, 63), st.booleans()), min_size=1, max_size=20
    ),
)
def test_remaining_counts_stay_consistent(d, decisions):
    """Property: after any decision sequence the per-level remaining
    counts equal a recount of UNKNOWN states."""
    lattice = SubspaceLattice(d)
    top = (1 << d) - 1
    for raw_mask, outlying in decisions:
        mask = (raw_mask % top) + 1
        if not lattice.is_unknown(mask):
            continue
        lattice.mark_evaluated(mask, outlying)
        if outlying:
            lattice.prune_supersets(mask)
        else:
            lattice.prune_subsets(mask)
    recount = [0] * (d + 1)
    for mask, state in lattice.iter_states():
        if state is SubspaceState.UNKNOWN:
            recount[popcount(mask)] += 1
    for m in range(1, d + 1):
        assert lattice.remaining_count(m) == recount[m]

"""Bench harness: measures, tables, experiments plumbing."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import Experiment, timed
from repro.bench.measures import planted_recovery, set_scores
from repro.bench.reporting import Table, format_value, save_json
from repro.core.subspace import Subspace


class TestSetScores:
    def test_perfect_match(self):
        scores = set_scores([1, 2, 3], [1, 2, 3])
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_partial(self):
        scores = set_scores([1, 2], [2, 3, 4])
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(1 / 3)
        assert scores.correct == 1

    def test_empty_conventions(self):
        assert set_scores([], [1]).precision == 1.0
        assert set_scores([], [1]).recall == 0.0
        assert set_scores([1], []).recall == 1.0
        empty = set_scores([], [])
        assert empty.precision == empty.recall == 1.0


class TestPlantedRecovery:
    def _subspace(self, dims, d=6):
        return Subspace.from_dims(dims, d)

    def test_nothing_detected(self):
        recovery = planted_recovery([], self._subspace((0, 1)))
        assert not recovery.flagged and recovery.best_jaccard == 0.0

    def test_exact_detection(self):
        planted = self._subspace((0, 1))
        recovery = planted_recovery([planted], planted)
        assert recovery.exact and recovery.contained and recovery.covered
        assert recovery.best_jaccard == 1.0

    def test_subset_detection(self):
        recovery = planted_recovery(
            [self._subspace((0,))], self._subspace((0, 1))
        )
        assert recovery.contained and not recovery.exact
        assert recovery.best_jaccard == pytest.approx(0.5)

    def test_superset_detection(self):
        recovery = planted_recovery(
            [self._subspace((0, 1, 2))], self._subspace((0, 1))
        )
        assert recovery.covered and not recovery.contained

    def test_disjoint_detection(self):
        recovery = planted_recovery(
            [self._subspace((4, 5))], self._subspace((0, 1))
        )
        assert recovery.flagged and not recovery.covered
        assert recovery.best_jaccard == 0.0


class TestTable:
    def test_positional_and_named_rows(self):
        table = Table(["a", "b"])
        table.add_row(1, 2.5)
        table.add_row(a=3, b="x")
        text = table.render()
        assert "2.500" in text and "x" in text

    def test_named_rows_require_all_columns(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_mixed_args_rejected(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, a=2)

    def test_wrong_arity_rejected(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_markdown_render(self):
        table = Table(["x"], title="T")
        table.add_row(1)
        md = table.render_markdown()
        assert md.startswith("### T")
        assert "| x |" in md

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(12.34) == "12.3"
        assert format_value(0.1234) == "0.123"
        assert format_value("abc") == "abc"

    def test_as_records(self):
        table = Table(["a"])
        table.add_row(7)
        assert table.as_records() == [{"a": "7"}]


class TestExperiment:
    def test_render_includes_expectation_and_notes(self):
        experiment = Experiment("EX", "demo", ["v"], expectation="goes up")
        experiment.add_row(v=1)
        experiment.note("observed")
        text = experiment.render()
        assert "EX: demo" in text
        assert "expected shape: goes up" in text
        assert "note: observed" in text
        assert "goes up" in experiment.render_markdown()

    def test_save_writes_json(self, tmp_path):
        experiment = Experiment("EX", "demo", ["v"])
        experiment.add_row(v=2)
        path = experiment.save(directory=str(tmp_path))
        payload = json.loads(open(path).read())
        assert payload["id"] == "EX"
        assert payload["rows"] == [{"v": "2"}]

    def test_timed(self):
        value, seconds = timed(lambda x: x + 1, 41)
        assert value == 42
        assert seconds >= 0.0

    def test_save_json_creates_directories(self, tmp_path):
        target = tmp_path / "nested" / "out.json"
        save_json(str(target), {"k": 1})
        assert json.loads(target.read_text()) == {"k": 1}


class TestExperimentSuiteSmoke:
    """Cheap experiments run end-to-end; expensive ones are exercised by
    the benchmark harness instead."""

    def test_e0_matches_paper_numbers(self):
        from repro.bench.experiments import e0_savings

        rows = e0_savings().table.as_records()
        by_m = {row["m"]: row for row in rows}
        assert by_m["3"]["DSF(m)"] == "9"
        assert by_m["2"]["USF(m,4)"] == "10"

    def test_f1_shape(self):
        from repro.bench.experiments import f1_figure1

        experiment = f1_figure1(fast=True)
        rows = experiment.table.as_records()
        outlying = {row["view"]: row["outlying"] for row in rows}
        assert outlying == {"[1, 2]": "yes", "[3, 4]": "no", "[5, 6]": "no"}

    def test_registry_complete(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        assert set(ALL_EXPERIMENTS) == {
            "f1", "e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
            "e10", "e11",
        }

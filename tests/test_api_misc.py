"""Public API surface, smaller helpers, and bookkeeping types."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench.workloads import planted_workload
from repro.core.search import SearchOutcome, SearchStats
from repro.index.node import Node
from repro.index.stats import IndexStats


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_baselines_exports_resolve(self):
        import repro.baselines as baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None

    def test_index_exports_resolve(self):
        import repro.index as index

        for name in index.__all__:
            assert getattr(index, name) is not None

    def test_data_exports_resolve(self):
        import repro.data as data

        for name in data.__all__:
            assert getattr(data, name) is not None

    def test_make_backend_rejects_unknown(self):
        from repro import make_backend
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_backend("kdtree", np.zeros((5, 2)))


class TestSearchOutcomeHelpers:
    def _outcome(self):
        from repro.core.lattice import SubspaceLattice

        lattice = SubspaceLattice(3)
        lattice.mark_evaluated(0b001, outlying=True)
        lattice.prune_supersets(0b001)
        return SearchOutcome(
            d=3,
            threshold=1.0,
            outlying_masks=lattice.outlying_masks(),
            stats=SearchStats(od_evaluations=1, upward_pruned=3),
            lattice=lattice,
        )

    def test_total_and_fraction(self):
        outcome = self._outcome()
        assert outcome.total_subspaces == 7
        assert outcome.evaluated_fraction == pytest.approx(1 / 7)

    def test_outlying_subspaces_sorted(self):
        subspaces = self._outcome().outlying_subspaces()
        levels = [s.dimensionality for s in subspaces]
        assert levels == sorted(levels)
        assert subspaces[0].dims == (0,)

    def test_stats_helpers(self):
        stats = SearchStats(od_evaluations=2, upward_pruned=3, downward_pruned=4)
        assert stats.decided_without_evaluation == 7
        payload = stats.as_dict()
        assert payload["od_evaluations"] == 2
        assert payload["downward_pruned"] == 4


class TestNodeHelpers:
    def test_leaf_basics(self):
        leaf = Node(level=0)
        leaf.rows = [3, 1, 4]
        assert leaf.is_leaf and not leaf.is_supernode
        assert leaf.entry_count() == 3
        assert leaf.height() == 1
        assert sorted(leaf.subtree_rows()) == [1, 3, 4]
        assert "leaf" in repr(leaf)

    def test_directory_traversal(self):
        root = Node(level=1)
        left, right = Node(level=0), Node(level=0)
        left.rows, right.rows = [0, 1], [2]
        root.children = [left, right]
        assert {id(node) for node in root.iter_subtree()} == {
            id(root), id(left), id(right)
        }
        assert sorted(root.subtree_rows()) == [0, 1, 2]
        assert root.height() == 2

    def test_capacity_and_overflow(self):
        node = Node(level=1)
        node.children = [Node(level=0) for _ in range(5)]
        assert node.overflows(max_entries=4)
        node.blocks = 2
        assert not node.overflows(max_entries=4)
        assert node.is_supernode
        assert "supernode" in repr(node)

    def test_recompute_mbr_empty(self):
        node = Node(level=0)
        node.recompute_mbr(np.zeros((0, 2)))
        assert node.mbr is None

    def test_child_mbrs_requires_boxes(self):
        from repro.core.exceptions import IndexError_

        parent = Node(level=1)
        parent.children = [Node(level=0)]
        with pytest.raises(IndexError_):
            parent.child_mbrs()


class TestIndexStats:
    def test_bump_and_snapshot(self):
        stats = IndexStats()
        stats.bump("supernodes_created")
        stats.bump("supernodes_created", 2)
        stats.node_accesses = 5
        snapshot = stats.snapshot()
        assert snapshot["supernodes_created"] == 3
        assert snapshot["node_accesses"] == 5

    def test_reset_clears_extras(self):
        stats = IndexStats()
        stats.bump("x")
        stats.reset()
        assert stats.extra == {}
        assert stats.snapshot()["node_accesses"] == 0


class TestWorkload:
    def test_query_partition(self):
        workload = planted_workload(n=200, d=5, n_outliers=3, n_inlier_queries=2)
        assert workload.planted_queries == [0, 1, 2]
        assert len(workload.inlier_queries) == 2
        assert set(workload.planted_queries).isdisjoint(workload.inlier_queries)
        assert all(row >= 3 for row in workload.inlier_queries)


class TestE11Smoke:
    def test_table_shape(self):
        from repro.bench.experiments import e11_xtree_overlap

        experiment = e11_xtree_overlap(fast=True)
        rows = experiment.table.as_records()
        assert [row["max_overlap"] for row in rows] == ["0", "0.200", "1.000"]
        # Tighter overlap tolerance -> wider supernodes; max_overlap=1
        # accepts every topological split, so no supernodes at all.
        widths = [int(row["max_blocks"]) for row in rows]
        assert widths[0] >= widths[1] >= widths[2]
        assert int(rows[2]["supernodes"]) == 0
        assert widths[2] == 1

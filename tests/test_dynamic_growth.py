"""Dynamic insertion: backends grow, trees keep invariants, miner extends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.miner import HOSMiner
from repro.index import LinearScanIndex, RStarTree, VAFile, XTree


def _data(seed, n=150, d=4):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, d)) + generator.choice([-5.0, 5.0], size=(n, 1))


BACKENDS = [
    ("linear", lambda X: LinearScanIndex(X)),
    ("rstar", lambda X: RStarTree(X, max_entries=8)),
    ("xtree", lambda X: XTree(X, max_entries=8)),
    ("vafile", lambda X: VAFile(X, bits=5)),
]


class TestBackendInsert:
    @pytest.mark.parametrize("name, factory", BACKENDS, ids=[b[0] for b in BACKENDS])
    def test_insert_then_parity_with_rebuilt_scan(self, name, factory):
        X = _data(3)
        backend = factory(X)
        generator = np.random.default_rng(50)
        extra = generator.normal(size=(40, 4)) * 2.0
        for point in extra:
            row = backend.insert(point)
        assert row == 189
        assert backend.size == 190
        full = np.vstack([X, extra])
        scan = LinearScanIndex(full)
        for query_row in [0, 150, 189]:
            bi, bd = backend.knn(full[query_row], 6, (0, 1, 2, 3), exclude=query_row)
            si, sd = scan.knn(full[query_row], 6, (0, 1, 2, 3), exclude=query_row)
            assert list(bi) == list(si), name
            np.testing.assert_allclose(bd, sd)

    @pytest.mark.parametrize(
        "name, factory", BACKENDS[1:3], ids=["rstar", "xtree"]
    )
    def test_tree_invariants_survive_inserts(self, name, factory):
        X = _data(5, n=100)
        tree = factory(X)
        generator = np.random.default_rng(51)
        for point in generator.normal(size=(120, 4)) * 3.0:
            tree.insert(point)
        tree.validate()

    @pytest.mark.parametrize("name, factory", BACKENDS, ids=[b[0] for b in BACKENDS])
    def test_insert_shape_checked(self, name, factory):
        backend = factory(_data(7))
        with pytest.raises(DataShapeError):
            backend.insert(np.zeros(9))


class TestMinerExtend:
    def _miner(self):
        X = _data(11, n=200, d=4)
        return HOSMiner(k=4, sample_size=3, threshold_quantile=0.98).fit(X), X

    def test_extend_none_keeps_state(self):
        miner, X = self._miner()
        threshold = miner.threshold_
        priors = miner.priors_.p_up.copy()
        new_point = X.mean(axis=0) + 30.0  # a blatant new outlier
        miner.extend(new_point)
        assert miner.backend_.size == 201
        assert miner.threshold_ == threshold
        np.testing.assert_array_equal(miner.priors_.p_up, priors)
        result = miner.query_row(200)
        assert result.is_outlier

    def test_extend_threshold_recalibrates(self):
        miner, X = self._miner()
        before = miner.threshold_
        generator = np.random.default_rng(12)
        miner.extend(generator.normal(size=(100, 4)) * 4.0, refresh="threshold")
        assert miner.backend_.size == 300
        assert miner.threshold_ != before  # wider data -> different quantile

    def test_extend_full_relearns(self):
        miner, _ = self._miner()
        report_before = miner.learning_report_
        miner.extend(np.zeros((5, 4)), refresh="full")
        assert miner.learning_report_ is not report_before

    def test_extend_explicit_threshold_never_touched(self):
        X = _data(13, n=120, d=4)
        miner = HOSMiner(k=3, threshold=7.5, sample_size=0).fit(X)
        miner.extend(np.zeros((3, 4)), refresh="threshold")
        assert miner.threshold_ == 7.5

    def test_extend_validation(self):
        miner, _ = self._miner()
        with pytest.raises(ConfigurationError):
            miner.extend(np.zeros((2, 4)), refresh="later")
        with pytest.raises(DataShapeError):
            miner.extend(np.zeros((2, 9)))

    def test_vafile_miner_round_trip(self):
        """The fourth backend drives the full pipeline too."""
        X = _data(17, n=250, d=5)
        X[0, :2] += 12.0
        miner = HOSMiner(
            k=4, sample_size=3, threshold_quantile=0.98,
            index="vafile", index_options={"bits": 5},
        ).fit(X)
        result = miner.query_row(0)
        assert result.is_outlier
        reference = HOSMiner(
            k=4, sample_size=3, threshold_quantile=0.98
        ).fit(X).query_row(0)
        assert {s.mask for s in result.minimal} == {s.mask for s in reference.minimal}

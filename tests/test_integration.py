"""End-to-end integration: the full HOS-Miner pipeline on every scenario
the paper's demo promises, across backends and against the baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.naive_search import exhaustive_search
from repro.core.filtering import minimal_masks
from repro.core.miner import HOSMiner
from repro.core.od import ODEvaluator
from repro.core.subspace import is_subset
from repro.data.loaders import load_athletes, load_patients
from repro.data.normalize import zscore
from repro.data.synthetic import make_figure1_data, make_planted_outliers


class TestFigure1Scenario:
    def test_p_is_outlier_exactly_in_the_planted_view(self):
        data = make_figure1_data(n=400, seed=0)
        miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(data.X)
        result = miner.query_row(0)
        assert result.is_outlier
        planted = data.true_subspaces[0]
        # Every minimal subspace involves only the planted view's dims.
        for subspace in result.minimal:
            assert set(subspace.dims) <= set(planted.dims)
        # And the planted view itself is outlying (upward closure).
        assert result.is_outlying_in(planted)

    def test_other_views_are_not_outlying(self):
        from repro.core.subspace import Subspace

        data = make_figure1_data(n=400, seed=0)
        miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(data.X)
        result = miner.query_row(0)
        assert not result.is_outlying_in(Subspace.from_dims((2, 3), 6))
        assert not result.is_outlying_in(Subspace.from_dims((4, 5), 6))


class TestApplicationScenarios:
    """The paper's two motivating applications, end to end."""

    def test_athlete_weak_disciplines_recovered(self):
        data = load_athletes()
        miner = HOSMiner(k=6, sample_size=6, threshold_quantile=0.99).fit(
            zscore(data.X), feature_names=data.feature_names
        )
        for row in data.outlier_rows:
            result = miner.query_row(row)
            assert result.is_outlier, f"athlete {row} should be flagged"
            planted_dims = set(data.true_subspaces[row].dims)
            # Every minimal answer must implicate a planted discipline —
            # combinations with ordinary disciplines are legitimate (a
            # weak stamina score plus a merely below-par sprint can jointly
            # cross T before stamina does alone), but a minimal subspace
            # that avoids the weakness entirely would be a false lead.
            for subspace in result.minimal:
                assert set(subspace.dims) & planted_dims, (
                    f"athlete {row}: {subspace.dims} misses {planted_dims}"
                )

    def test_patient_conditions_recovered(self):
        data = load_patients()
        miner = HOSMiner(k=6, sample_size=6, threshold_quantile=0.99).fit(
            zscore(data.X), feature_names=data.feature_names
        )
        for row in data.outlier_rows:
            result = miner.query_row(row)
            assert result.is_outlier, f"patient {row} should be flagged"
            planted_dims = set(data.true_subspaces[row].dims)
            for subspace in result.minimal:
                assert set(subspace.dims) & planted_dims, (
                    f"patient {row}: {subspace.dims} misses {planted_dims}"
                )

    def test_explanations_use_feature_names(self):
        data = load_patients()
        miner = HOSMiner(k=6, sample_size=4, threshold_quantile=0.99).fit(
            zscore(data.X), feature_names=data.feature_names
        )
        text = miner.query_row(0).explain()
        assert "temperature" in text or "wbc_count" in text


class TestFullPipelineExactness:
    """HOS-Miner (pruning + TSF + learning + filter) against brute force."""

    @pytest.mark.parametrize("adaptive", [False, True])
    @pytest.mark.parametrize("index", ["linear", "xtree"])
    def test_results_match_oracle(self, index, adaptive):
        data = make_planted_outliers(
            n=250, d=6, n_outliers=2, subspace_dims=2, displacement=9.0, seed=31
        )
        options = {} if index == "linear" else {"max_entries": 16}
        miner = HOSMiner(
            k=4, sample_size=4, threshold_quantile=0.98,
            index=index, index_options=options, adaptive=adaptive,
        ).fit(data.X)
        for row in [0, 1, 100]:
            result = miner.query_row(row)
            evaluator = ODEvaluator(miner.backend_, data.X[row], 4, exclude=row)
            oracle = exhaustive_search(evaluator, miner.threshold_)
            assert {s.mask for s in result.minimal} == set(
                minimal_masks(oracle.outlying_masks)
            )
            assert result.total_outlying == len(oracle.outlying_masks)

    def test_minimal_answers_are_minimal_and_cover(self):
        data = make_planted_outliers(
            n=300, d=7, n_outliers=3, subspace_dims=(2, 3), displacement=8.0, seed=13
        )
        miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(data.X)
        for row in data.outlier_rows:
            outcome, _ = miner.search_outcome(row)
            result = miner.query_row(row)
            kept = [s.mask for s in result.minimal]
            # antichain
            for i, a in enumerate(kept):
                for b in kept[i + 1 :]:
                    assert not is_subset(a, b) and not is_subset(b, a)
            # coverage of the full answer set
            for mask in outcome.outlying_masks:
                assert any(is_subset(k, mask) for k in kept)


class TestCrossMethodComparison:
    def test_hos_finds_subspace_outlier_invisible_in_full_space_ranking(self):
        """The motivating gap: a *cross-combination* point (each attribute
        ordinary on its own, the combination alien) tops no full-space
        ranking yet is a glaring outlier in a 2-d subspace. HOS-Miner
        localises it; the full-space kNN detector ranks it well below the
        natural tail extremes."""
        from repro.baselines.knn_outlier import knn_distance_scores
        from repro.core.subspace import Subspace

        generator = np.random.default_rng(17)
        d = 16
        X = generator.normal(size=(600, d))
        # Two clusters in the pair (0, 1); row 0 takes dim 0 from one
        # cluster and dim 1 from the other.
        X[:300, 0] += 4.0
        X[:300, 1] += 4.0
        X[0, 0] = 4.0
        X[0, 1] = 0.0
        scores = knn_distance_scores(X, k=5)
        full_space_rank = int((scores > scores[0]).sum())
        miner = HOSMiner(k=5, threshold=5.0, sample_size=0, adaptive=True).fit(X)
        result = miner.query_row(0)
        assert result.is_outlying_in(Subspace.from_dims((0, 1), d))
        assert full_space_rank > 3, "outlier should NOT be a top full-space hit"

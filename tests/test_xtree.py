"""X-tree: supernode formation, split decisions, query parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.index.linear import LinearScanIndex
from repro.index.mbr import MBR
from repro.index.xtree import XTree


def _uniform(seed, n, d):
    return np.random.default_rng(seed).uniform(size=(n, d))


def _clustered(seed, n, d):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, d)) + generator.choice(
        [-8.0, 0.0, 8.0], size=(n, 1)
    )


class TestConstruction:
    def test_invariants(self):
        tree = XTree(_uniform(0, 400, 8), max_entries=8)
        tree.validate()

    def test_parameter_validation(self):
        X = _uniform(0, 30, 3)
        with pytest.raises(ConfigurationError):
            XTree(X, max_overlap=1.5)
        with pytest.raises(ConfigurationError):
            XTree(X, min_fanout=0.0)

    def test_no_forced_reinsert(self):
        tree = XTree(_uniform(1, 100, 4))
        assert tree.reinsert_fraction == 0.0


class TestSupernodes:
    def test_uniform_high_d_creates_supernodes(self):
        """The X-tree paper's regime: uniform high-dimensional data makes
        overlap-free directory splits impossible, forcing supernodes."""
        tree = XTree(_uniform(3, 2000, 16), max_entries=8)
        tree.validate()
        assert tree.supernode_count() > 0
        assert tree.max_supernode_blocks() > 1
        assert tree.stats.extra.get("supernodes_created", 0) > 0

    def test_clustered_low_d_avoids_supernodes(self):
        """Well-separated clusters split cleanly — no supernodes needed."""
        tree = XTree(_clustered(4, 1000, 4), max_entries=16)
        tree.validate()
        assert tree.supernode_count() == 0

    def test_supernode_capacity_respected(self):
        tree = XTree(_uniform(5, 1500, 16), max_entries=8)
        for node in tree.root.iter_subtree():
            assert node.entry_count() <= node.blocks * tree.max_entries

    def test_split_history_recorded(self):
        tree = XTree(_clustered(6, 500, 4), max_entries=8)
        split_dims = set()
        for node in tree.root.iter_subtree():
            split_dims |= node.split_dims
        assert split_dims  # some splits happened and were recorded
        assert all(0 <= dim < 4 for dim in split_dims)


class TestOverlapMinimalSplit:
    def test_separable_boxes_split_with_zero_overlap(self):
        tree = XTree(_uniform(0, 50, 2), max_entries=8)
        # Two groups of boxes, cleanly separable along axis 0.
        boxes = [
            MBR(np.array([x, 0.0]), np.array([x + 0.5, 1.0]))
            for x in [0.0, 1.0, 2.0, 10.0, 11.0, 12.0]
        ]
        result = tree._overlap_minimal_split(boxes)
        assert result is not None
        group_a, group_b, axis = result
        assert axis == 0
        assert {len(group_a), len(group_b)} == {3}

    def test_identical_boxes_cannot_split(self):
        tree = XTree(_uniform(0, 50, 2), max_entries=8)
        boxes = [MBR(np.zeros(2), np.ones(2)) for _ in range(6)]
        assert tree._overlap_minimal_split(boxes) is None

    def test_too_few_entries_for_balance(self):
        tree = XTree(_uniform(0, 50, 2), max_entries=8, min_fanout=0.5)
        boxes = [MBR(np.zeros(2), np.ones(2))]
        assert tree._overlap_minimal_split(boxes) is None


class TestQueryParity:
    def test_knn_parity_with_scan(self):
        X = _uniform(9, 800, 10)
        tree = XTree(X, max_entries=8)
        scan = LinearScanIndex(X)
        for row in [0, 111, 555]:
            for dims in [(0, 5), (1, 2, 3), tuple(range(10))]:
                ti, td = tree.knn(X[row], 6, dims, exclude=row)
                si, sd = scan.knn(X[row], 6, dims, exclude=row)
                assert list(ti) == list(si)
                np.testing.assert_allclose(td, sd)

    def test_parity_survives_supernodes(self):
        X = _uniform(10, 1500, 16)
        tree = XTree(X, max_entries=8)
        assert tree.supernode_count() > 0  # precondition for the test
        scan = LinearScanIndex(X)
        for row in [0, 700]:
            ti, _ = tree.knn(X[row], 9, (0, 4, 9, 15), exclude=row)
            si, _ = scan.knn(X[row], 9, (0, 4, 9, 15), exclude=row)
            assert list(ti) == list(si)

    def test_range_parity(self):
        X = _uniform(12, 600, 8)
        tree = XTree(X, max_entries=8)
        scan = LinearScanIndex(X)
        tr = tree.range_query(X[3], 0.4, (0, 1, 2), exclude=3)
        sr = scan.range_query(X[3], 0.4, (0, 1, 2), exclude=3)
        assert sorted(tr) == sorted(sr)

"""Declarative experiment harness: specs, runner, snapshots, regression gate.

Covers the contracts docs/benchmarking.md promises: exhaustive and
deterministic condition crossing, stable parameter hashes, snapshot
schema round-trips, and a regression comparator that flags a real 20%
slowdown while letting 5% machine jitter through.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import SCHEMA_VERSION, run_metadata, run_spec
from repro.bench.snapshot import (
    DEFAULT_TOLERANCE,
    SnapshotError,
    compare_snapshots,
    load_snapshot,
    save_snapshot,
    snapshot_path,
    validate_snapshot,
)
from repro.bench.spec import (
    Condition,
    ExperimentSpec,
    SpecError,
    cross_grid,
    param_hash,
)


# ----------------------------------------------------------------------
# Grid crossing and parameter hashing
# ----------------------------------------------------------------------
class TestCrossGrid:
    def test_exhaustive(self):
        grid = {"a": (1, 2, 3), "b": ("x", "y")}
        assignments = cross_grid(grid)
        assert len(assignments) == 6
        assert {(a["a"], a["b"]) for a in assignments} == {
            (a, b) for a in (1, 2, 3) for b in ("x", "y")
        }

    def test_deterministic_order_last_factor_fastest(self):
        grid = {"a": (1, 2), "b": ("x", "y")}
        pairs = [(a["a"], a["b"]) for a in cross_grid(grid)]
        assert pairs == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_empty_level_rejected(self):
        with pytest.raises(SpecError):
            cross_grid({"a": ()})


class TestParamHash:
    def test_stable_across_insertion_order(self):
        assert param_hash({"a": 1, "b": 2}) == param_hash({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert param_hash({"cell": (1, 2, 3)}) == param_hash({"cell": [1, 2, 3]})

    def test_numpy_scalars_normalised(self):
        np = pytest.importorskip("numpy")
        assert param_hash({"n": np.int64(5)}) == param_hash({"n": 5})

    def test_distinct_params_distinct_hash(self):
        assert param_hash({"n": 1}) != param_hash({"n": 2})

    def test_shape(self):
        digest = param_hash({"n": 1})
        assert len(digest) == 12
        int(digest, 16)  # valid hex

    def test_condition_carries_hash(self):
        condition = Condition(params={"n": 1})
        assert condition.hash == param_hash({"n": 1})


# ----------------------------------------------------------------------
# Spec validation and tier grids
# ----------------------------------------------------------------------
def _spec(**overrides):
    kwargs = dict(
        name="toy",
        title="Toy spec",
        grid={"n": (1, 2)},
        run=lambda ctx, n: {"n": n, "value": n * 10},
        columns=["n", "value"],
        expectation="value is 10n",
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestSpecValidation:
    def test_smoke_key_must_exist_in_grid(self):
        with pytest.raises(SpecError):
            _spec(smoke={"m": (1,)})

    def test_grid_and_fixed_disjoint(self):
        with pytest.raises(SpecError):
            _spec(fixed={"n": 3})

    def test_bad_regression_direction(self):
        with pytest.raises(SpecError):
            _spec(regression={"value": "sideways"})

    def test_warmup_and_repeats_bounds(self):
        with pytest.raises(SpecError):
            _spec(warmup=-1)
        with pytest.raises(SpecError):
            _spec(repeats=0)

    def test_tier_grid_smoke_overrides_per_factor(self):
        spec = _spec(grid={"n": (1, 2, 3), "m": (4, 5)}, smoke={"n": (1,)})
        assert spec.tier_grid("full") == {"n": (1, 2, 3), "m": (4, 5)}
        assert spec.tier_grid("smoke") == {"n": (1,), "m": (4, 5)}

    def test_conditions_merge_fixed(self):
        spec = _spec(fixed={"k": 5})
        params = [c.params for c in spec.conditions("full")]
        assert params == [{"n": 1, "k": 5}, {"n": 2, "k": 5}]


# ----------------------------------------------------------------------
# Runner: execution, repeats, aggregation
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_runs_every_condition_in_order(self):
        result = run_spec(_spec(), tier="full")
        assert [r["n"] for r in result.rows()] == [1, 2]
        assert [r["value"] for r in result.rows()] == [10, 20]

    def test_setup_called_once_and_threaded_through(self):
        calls = []

        def setup(tier):
            calls.append(tier)
            return {"base": 100}

        spec = _spec(
            setup=setup,
            run=lambda ctx, n: {"n": n, "value": ctx["base"] + n},
        )
        result = run_spec(spec, tier="smoke")
        assert calls == ["smoke"]
        assert [r["value"] for r in result.rows()] == [101, 102]

    def test_warmup_runs_unmeasured(self):
        count = {"runs": 0}

        def run(ctx, n):
            count["runs"] += 1
            return {"n": n, "value": 1}

        run_spec(_spec(run=run, grid={"n": (1,)}, warmup=2, repeats=3), tier="full")
        assert count["runs"] == 5  # 2 warmup + 3 measured

    def test_repeats_aggregate_by_median(self):
        values = iter([10.0, 30.0, 20.0])

        def run(ctx, n):
            return {"n": n, "value": next(values)}

        result = run_spec(_spec(run=run, grid={"n": (1,)}, repeats=3), tier="full")
        assert result.rows()[0]["value"] == 20.0

    def test_median_preserves_int_columns(self):
        values = iter([10, 30, 20])

        def run(ctx, n):
            return {"n": n, "hits": next(values)}

        spec = _spec(run=run, grid={"n": (1,)}, columns=["n", "hits"], repeats=3)
        hits = run_spec(spec, tier="full").rows()[0]["hits"]
        assert hits == 20 and isinstance(hits, int)

    def test_multi_row_conditions(self):
        spec = _spec(
            run=lambda ctx, n: [{"n": n, "side": "a"}, {"n": n, "side": "b"}],
            columns=["n", "side"],
        )
        rows = run_spec(spec, tier="full").rows()
        assert [(r["n"], r["side"]) for r in rows] == [
            (1, "a"), (1, "b"), (2, "a"), (2, "b"),
        ]

    def test_note_side_channel_deduped(self):
        spec = _spec(
            run=lambda ctx, n: {"n": n, "value": n, "_note": "shared footnote"}
        )
        experiment = run_spec(spec, tier="full").to_experiment()
        assert experiment.notes.count("shared footnote") == 1

    def test_latency_columns_opt_in(self):
        result = run_spec(_spec(), tier="full")
        plain = result.to_experiment()
        assert "wall_p50_ms" not in plain.columns  # paper tables stay clean
        timed = result.to_experiment(latency=True)
        assert timed.columns[-2:] == ["wall_p50_ms", "wall_p99_ms"]
        # Every row carries its own condition's percentiles, in ms.
        from repro.bench.reporting import format_value

        p50s = [row["wall_p50_ms"] for row in timed.table.as_records()]
        for record in result.conditions:
            assert format_value(record.wall_time_p50_s * 1e3) in p50s

    def test_counters_from_last_measured_repeat(self):
        ticks = {"i": 0}

        def run(ctx, n):
            ticks["i"] += 1
            return {"n": n, "value": 1, "_counters": {"gathers": ticks["i"]}}

        spec = _spec(run=run, grid={"n": (1,)}, repeats=3)
        record = run_spec(spec, tier="full").conditions[0]
        assert record.counters == {"gathers": 3}


class TestSnapshotShape:
    def test_to_snapshot_schema(self):
        snapshot = run_spec(_spec(), tier="smoke").to_snapshot()
        validate_snapshot(snapshot)
        assert snapshot["schema_version"] == SCHEMA_VERSION
        assert snapshot["experiment"] == "toy"
        assert snapshot["tier"] == "smoke"
        assert len(snapshot["conditions"]) == 2
        condition = snapshot["conditions"][0]
        assert condition["param_hash"] == param_hash(condition["params"])
        assert condition["wall_time_s"] >= 0.0

    def test_metadata_fields(self):
        metadata = run_metadata(_spec(), tier="smoke")
        for key in ("git_sha", "python", "numpy", "blas", "timestamp", "tier"):
            assert key in metadata

    def test_save_load_round_trip(self, tmp_path):
        snapshot = run_spec(_spec(), tier="smoke").to_snapshot()
        path = save_snapshot(snapshot, tmp_path / "BENCH_toy.json")
        assert load_snapshot(path) == snapshot

    def test_snapshot_path_convention(self):
        assert str(snapshot_path("e13")).endswith("BENCH_e13.json")

    def test_snapshot_json_is_canonical(self, tmp_path):
        snapshot = run_spec(_spec(), tier="smoke").to_snapshot()
        path = save_snapshot(snapshot, tmp_path / "BENCH_toy.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(SnapshotError):
            validate_snapshot({"schema_version": SCHEMA_VERSION})

    def test_validate_rejects_future_schema(self):
        snapshot = run_spec(_spec(), tier="smoke").to_snapshot()
        snapshot["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SnapshotError):
            validate_snapshot(snapshot)

    def test_validate_rejects_duplicate_conditions(self):
        snapshot = run_spec(_spec(), tier="smoke").to_snapshot()
        snapshot["conditions"].append(snapshot["conditions"][0])
        with pytest.raises(SnapshotError):
            validate_snapshot(snapshot)


# ----------------------------------------------------------------------
# Regression comparator
# ----------------------------------------------------------------------
def _gated_snapshot(speedups, *, direction="higher", measure="speedup"):
    """A minimal valid snapshot with one gated measure per condition."""
    spec = ExperimentSpec(
        name="gate",
        title="Gate fixture",
        grid={"n": tuple(range(len(speedups)))},
        run=lambda ctx, n: {"n": n, measure: speedups[n]},
        columns=["n", measure],
        expectation="fixture",
        regression={measure: direction},
    )
    return run_spec(spec, tier="full").to_snapshot()


class TestCompareSnapshots:
    def test_flags_twenty_percent_slowdown(self):
        baseline = _gated_snapshot([4.0])
        fresh = _gated_snapshot([3.2])  # -20%
        report = compare_snapshots(baseline, fresh)
        assert not report.passed
        assert len(report.regressions) == 1
        assert "speedup" in report.regressions[0].describe()

    def test_passes_five_percent_jitter(self):
        baseline = _gated_snapshot([4.0])
        for jittered in ([3.8], [4.2]):  # ±5%
            report = compare_snapshots(baseline, _gated_snapshot(jittered))
            assert report.passed

    def test_improvement_never_fails(self):
        report = compare_snapshots(_gated_snapshot([4.0]), _gated_snapshot([8.0]))
        assert report.passed

    def test_lower_direction_flags_increase(self):
        baseline = _gated_snapshot([10.0], direction="lower", measure="latency_ms")
        fresh = _gated_snapshot([12.5], direction="lower", measure="latency_ms")
        report = compare_snapshots(baseline, fresh)
        assert not report.passed

    def test_lower_direction_passes_decrease(self):
        baseline = _gated_snapshot([10.0], direction="lower", measure="latency_ms")
        fresh = _gated_snapshot([7.0], direction="lower", measure="latency_ms")
        assert compare_snapshots(baseline, fresh).passed

    def test_missing_baseline_condition_fails(self):
        baseline = _gated_snapshot([4.0, 4.0])
        fresh = _gated_snapshot([4.0])
        report = compare_snapshots(baseline, fresh)
        assert not report.passed

    def test_new_condition_passes(self):
        baseline = _gated_snapshot([4.0])
        fresh = _gated_snapshot([4.0, 4.0])
        assert compare_snapshots(baseline, fresh).passed

    def test_custom_tolerance(self):
        baseline = _gated_snapshot([4.0])
        fresh = _gated_snapshot([3.2])  # -20%
        assert compare_snapshots(baseline, fresh, tolerance=0.25).passed
        assert not compare_snapshots(baseline, fresh, tolerance=0.15).passed

    def test_tolerance_bounds(self):
        baseline = _gated_snapshot([4.0])
        with pytest.raises(SnapshotError):
            compare_snapshots(baseline, baseline, tolerance=1.0)
        with pytest.raises(SnapshotError):
            compare_snapshots(baseline, baseline, tolerance=-0.1)

    def test_mismatched_experiments_rejected(self):
        baseline = _gated_snapshot([4.0])
        other = dict(baseline, experiment="different")
        with pytest.raises(SnapshotError):
            compare_snapshots(baseline, other)

    def test_default_tolerance_is_fifteen_percent(self):
        assert DEFAULT_TOLERANCE == pytest.approx(0.15)

    def test_report_render_ends_with_verdict(self):
        baseline = _gated_snapshot([4.0])
        assert compare_snapshots(baseline, baseline).render().endswith("PASS")
        report = compare_snapshots(baseline, _gated_snapshot([1.0]))
        assert report.render().endswith("FAIL")


# ----------------------------------------------------------------------
# Committed baselines stay loadable and coherent with their specs
# ----------------------------------------------------------------------
class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["e12", "e13", "e14", "e15"])
    def test_committed_snapshot_matches_spec(self, name):
        from pathlib import Path

        from repro.bench import ALL_SPECS

        path = Path(__file__).resolve().parents[1] / f"BENCH_{name}.json"
        snapshot = load_snapshot(path)
        assert snapshot["experiment"] == name
        assert snapshot["tier"] == "smoke"
        spec = ALL_SPECS[name]
        committed = {c["param_hash"] for c in snapshot["conditions"]}
        declared = {c.hash for c in spec.conditions("smoke")}
        assert committed == declared, (
            "committed baseline no longer matches the spec's smoke grid — "
            f"regenerate with `repro bench {name}`"
        )
        for measure in spec.regression:
            assert any(
                measure in row for c in snapshot["conditions"] for row in c["rows"]
            )

"""R*-tree: structural invariants and exact query parity with the scan."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.index.linear import LinearScanIndex
from repro.index.rstar import RStarTree


def _data(seed, n=250, d=4, clusters=True):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(n, d))
    if clusters:
        X += generator.choice([-6.0, 0.0, 6.0], size=(n, 1))
    return X


class TestConstruction:
    @pytest.mark.parametrize("reinsert", [0.0, 0.3])
    @pytest.mark.parametrize("max_entries", [4, 8, 32])
    def test_invariants_after_incremental_build(self, max_entries, reinsert):
        X = _data(1, n=200)
        tree = RStarTree(X, max_entries=max_entries, reinsert_fraction=reinsert)
        tree.validate()
        assert tree.size == 200

    def test_invariants_after_str_bulk_load(self):
        X = _data(2, n=300)
        tree = RStarTree(X, max_entries=16, bulk_load="str")
        tree.validate()

    def test_single_point_tree(self):
        tree = RStarTree(np.array([[1.0, 2.0]]))
        tree.validate()
        assert tree.height() == 1
        indices, distances = tree.knn(np.array([0.0, 0.0]), 1, (0, 1))
        assert list(indices) == [0]

    def test_parameter_validation(self):
        X = _data(0, n=20)
        with pytest.raises(ConfigurationError):
            RStarTree(X, max_entries=3)
        with pytest.raises(ConfigurationError):
            RStarTree(X, min_fill=0.7)
        with pytest.raises(ConfigurationError):
            RStarTree(X, reinsert_fraction=0.6)
        with pytest.raises(ConfigurationError):
            RStarTree(X, bulk_load="hilbert")

    def test_tree_grows_in_height(self):
        X = _data(3, n=600)
        tree = RStarTree(X, max_entries=8)
        assert tree.height() >= 3
        assert tree.leaf_count() > 1
        assert tree.node_count() > tree.leaf_count()

    def test_repr(self):
        tree = RStarTree(_data(0, n=30))
        assert "RStarTree" in repr(tree)


class TestQueryParity:
    """Tree answers must equal the linear scan bit-for-bit."""

    @pytest.mark.parametrize("bulk", [None, "str"])
    def test_knn_parity_fixed(self, bulk):
        X = _data(7, n=300, d=5)
        tree = RStarTree(X, max_entries=12, bulk_load=bulk)
        scan = LinearScanIndex(X)
        for row in [0, 13, 77]:
            for dims in [(0,), (1, 3), (0, 2, 4), (0, 1, 2, 3, 4)]:
                ti, td = tree.knn(X[row], 8, dims, exclude=row)
                si, sd = scan.knn(X[row], 8, dims, exclude=row)
                assert list(ti) == list(si)
                np.testing.assert_allclose(td, sd)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        k=st.integers(1, 10),
        row=st.integers(0, 149),
    )
    def test_knn_parity_property(self, seed, k, row):
        X = _data(seed, n=150, d=4)
        tree = RStarTree(X, max_entries=8)
        scan = LinearScanIndex(X)
        generator = np.random.default_rng(seed + 1)
        size = int(generator.integers(1, 5))
        dims = tuple(sorted(generator.choice(4, size=size, replace=False)))
        ti, td = tree.knn(X[row], k, dims, exclude=row)
        si, sd = scan.knn(X[row], k, dims, exclude=row)
        assert list(ti) == list(si)
        np.testing.assert_allclose(td, sd)

    def test_range_parity(self):
        X = _data(11, n=250, d=4)
        tree = RStarTree(X, max_entries=10)
        scan = LinearScanIndex(X)
        for radius in [0.1, 1.0, 5.0, 100.0]:
            tr = tree.range_query(X[5], radius, (0, 2), exclude=5)
            sr = scan.range_query(X[5], radius, (0, 2), exclude=5)
            assert sorted(tr) == sorted(sr)

    def test_external_query_point(self):
        X = _data(13, n=200, d=3)
        tree = RStarTree(X, max_entries=8)
        scan = LinearScanIndex(X)
        q = np.array([50.0, -50.0, 0.0])  # far outside every box
        ti, _ = tree.knn(q, 5, (0, 1, 2))
        si, _ = scan.knn(q, 5, (0, 1, 2))
        assert list(ti) == list(si)


class TestAccounting:
    def test_knn_visits_fewer_nodes_than_full_traversal(self):
        X = _data(17, n=500, d=3)
        tree = RStarTree(X, max_entries=8)
        tree.stats.reset()
        tree.knn(X[0], 5, (0, 1, 2), exclude=0)
        assert 0 < tree.stats.node_accesses < tree.node_count()
        assert tree.stats.distance_computations < tree.size
        assert tree.stats.knn_queries == 1

    def test_range_accounting(self):
        X = _data(19, n=300, d=3)
        tree = RStarTree(X, max_entries=8)
        tree.stats.reset()
        tree.range_query(X[0], 0.5, (0, 1))
        assert tree.stats.range_queries == 1
        assert tree.stats.node_accesses > 0

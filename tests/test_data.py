"""Data generators, loaders and scalers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataShapeError, NotFittedError
from repro.data.loaders import (
    ATHLETE_FEATURES,
    PATIENT_FEATURES,
    dataset_to_csv,
    load_athletes,
    load_csv,
    load_patients,
)
from repro.data.normalize import MinMaxScaler, ZScoreScaler, minmax, zscore
from repro.data.synthetic import (
    make_correlated,
    make_figure1_data,
    make_gaussian_mixture,
    make_planted_outliers,
    make_uniform_noise,
)


class TestSynthetic:
    def test_shapes_and_determinism(self):
        a = make_gaussian_mixture(100, 5, seed=3)
        b = make_gaussian_mixture(100, 5, seed=3)
        assert a.X.shape == (100, 5)
        np.testing.assert_array_equal(a.X, b.X)
        c = make_gaussian_mixture(100, 5, seed=4)
        assert not np.array_equal(a.X, c.X)

    def test_uniform_bounds(self):
        data = make_uniform_noise(200, 3, low=-1, high=2, seed=0)
        assert data.X.min() >= -1 and data.X.max() <= 2

    def test_correlated_correlation(self):
        data = make_correlated(4000, 4, correlation=0.8, seed=1)
        corr = np.corrcoef(data.X.T)
        off_diagonal = corr[np.triu_indices(4, k=1)]
        assert np.all(off_diagonal > 0.6)

    def test_correlated_validation(self):
        with pytest.raises(ConfigurationError):
            make_correlated(10, 3, correlation=1.0)

    def test_planted_bookkeeping(self):
        data = make_planted_outliers(
            300, 8, n_outliers=4, subspace_dims=(2, 3), displacement=7.0, seed=5
        )
        assert data.outlier_rows == [0, 1, 2, 3]
        for row in data.outlier_rows:
            subspace = data.true_subspaces[row]
            assert subspace.dimensionality in (2, 3)

    def test_planted_displacement_visible(self):
        """The planted point must be isolated *in its planted subspace*:
        far from every background point there (global column statistics
        are the wrong yardstick — the background is multi-cluster)."""
        data = make_planted_outliers(
            500, 6, n_outliers=1, subspace_dims=2, displacement=10.0, seed=7
        )
        planted = data.true_subspaces[0]
        background = np.delete(data.X, 0, axis=0)
        dims = list(planted.dims)
        gaps = np.sqrt(((background[:, dims] - data.X[0, dims]) ** 2).sum(axis=1))
        assert gaps.min() >= 0.4 * 10.0  # the generator's isolation guarantee

    def test_planted_validation(self):
        with pytest.raises(ConfigurationError):
            make_planted_outliers(10, 3, n_outliers=11)
        with pytest.raises(ConfigurationError):
            make_planted_outliers(10, 3, subspace_dims=4)

    def test_figure1_structure(self):
        data = make_figure1_data(n=300, seed=2)
        assert data.d == 6
        assert data.outlier_rows == [0]
        assert data.true_subspaces[0].dims == (0, 1)
        # p matches an inlier exactly in views 2-3, far away in view 1.
        np.testing.assert_array_equal(data.X[0, 2:6], data.X[1, 2:6])
        assert np.linalg.norm(data.X[0, :2] - data.X[1:, :2].mean(axis=0)) > 4

    def test_repr(self):
        assert "planted" in repr(make_planted_outliers(50, 4, seed=0))


class TestLoaders:
    def test_athletes_deterministic_and_named(self):
        a, b = load_athletes(), load_athletes()
        np.testing.assert_array_equal(a.X, b.X)
        assert a.feature_names == ATHLETE_FEATURES
        assert a.d == len(ATHLETE_FEATURES)
        assert len(a.outlier_rows) == 3

    def test_athlete_weaknesses_visible(self):
        data = load_athletes()
        for row in data.outlier_rows:
            for dim in data.true_subspaces[row].dims:
                column = np.delete(data.X[:, dim], row)
                # The column mixes three position profiles, so use a 3-sigma
                # bound on the mixed spread.
                assert data.X[row, dim] < column.mean() - 3 * column.std()

    def test_patients_deterministic_and_named(self):
        data = load_patients()
        assert data.feature_names == PATIENT_FEATURES
        assert len(data.outlier_rows) == 3
        assert data.n == 400

    def test_csv_round_trip(self, tmp_path):
        original = load_athletes(n=20)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(original))
        loaded = load_csv(str(path))
        np.testing.assert_allclose(loaded.X, original.X)
        assert loaded.feature_names == original.feature_names

    def test_csv_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DataShapeError):
            load_csv(str(path))

    def test_csv_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataShapeError):
            load_csv(str(path))


class TestScalers:
    def test_zscore_properties(self, rng):
        X = rng.normal(loc=5, scale=3, size=(200, 4))
        Z = zscore(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_minmax_properties(self, rng):
        X = rng.normal(size=(100, 3))
        M = minmax(X)
        np.testing.assert_allclose(M.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(M.max(axis=0), 1.0, atol=1e-12)

    def test_constant_columns_safe(self):
        X = np.ones((50, 2))
        assert not np.isnan(zscore(X)).any()
        assert not np.isnan(minmax(X)).any()

    def test_transform_applies_fit_parameters(self, rng):
        X = rng.normal(size=(100, 2))
        scaler = ZScoreScaler().fit(X)
        single = scaler.transform(X[:1])
        np.testing.assert_allclose(single, (X[:1] - X.mean(0)) / X.std(0))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ZScoreScaler().transform(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_fit_validation(self):
        with pytest.raises(DataShapeError):
            ZScoreScaler().fit(np.zeros(5))

"""The HOSMiner facade: lifecycle, validation, query surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HOSMinerConfig
from repro.core.exceptions import (
    ConfigurationError,
    DataShapeError,
    NotFittedError,
)
from repro.core.miner import HOSMiner, calibrate_threshold
from repro.index.linear import LinearScanIndex


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"threshold": -2.0},
            {"threshold_quantile": 1.0},
            {"threshold_quantile": 0.0},
            {"threshold_sample": 0},
            {"index": "btree"},
            {"sample_size": -1},
            {"reselect": "sometimes"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HOSMinerConfig(**kwargs)

    def test_config_object_and_overrides_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            HOSMiner(HOSMinerConfig(), k=3)

    def test_defaults_are_paper_faithful(self):
        config = HOSMinerConfig()
        assert config.adaptive is False
        assert config.reselect == "level"
        assert config.index == "linear"


class TestLifecycle:
    def test_query_before_fit_raises(self):
        miner = HOSMiner(k=3)
        with pytest.raises(NotFittedError):
            miner.query_row(0)
        with pytest.raises(NotFittedError):
            _ = miner.threshold_

    def test_fit_rejects_bad_shapes(self):
        with pytest.raises(DataShapeError):
            HOSMiner(k=1, sample_size=0).fit(np.zeros((1, 3)))
        with pytest.raises(DataShapeError):
            HOSMiner(k=1, sample_size=0).fit(np.zeros(5))

    def test_fit_rejects_k_too_large(self):
        with pytest.raises(ConfigurationError):
            HOSMiner(k=10, sample_size=0).fit(np.zeros((5, 2)))

    def test_fit_rejects_wrong_feature_name_count(self, small_gaussian):
        with pytest.raises(ConfigurationError):
            HOSMiner(k=3, sample_size=0).fit(small_gaussian, feature_names=["a"])

    def test_fit_returns_self_and_sets_state(self, small_gaussian):
        miner = HOSMiner(k=3, sample_size=2, threshold_quantile=0.98)
        assert miner.fit(small_gaussian) is miner
        assert miner.threshold_ > 0
        assert miner.priors_.d == 5
        assert miner.backend_.size == 300
        assert miner.d_ == 5
        assert miner.fit_time_s > 0
        assert "fitted" in repr(miner)

    def test_explicit_threshold_skips_calibration(self, small_gaussian):
        miner = HOSMiner(k=3, threshold=42.0, sample_size=0).fit(small_gaussian)
        assert miner.threshold_ == 42.0


class TestQueries:
    def test_planted_outlier_found(self, small_gaussian):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.99).fit(
            small_gaussian
        )
        result = miner.query_row(0)
        assert result.is_outlier
        found_dims = set()
        for subspace in result.minimal:
            found_dims.update(subspace.dims)
        assert found_dims <= {0, 1}  # the planted dimensions

    def test_typical_inlier_clean(self, small_gaussian):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.99).fit(
            small_gaussian
        )
        result = miner.query_row(57)
        assert not result.is_outlier

    def test_query_dispatch(self, small_gaussian):
        miner = HOSMiner(k=3, sample_size=0, threshold_quantile=0.98).fit(
            small_gaussian
        )
        by_row = miner.query(0)
        by_point = miner.query(small_gaussian[0])
        # The row version excludes the point itself, the vector version
        # cannot (it is external), so the row version sees higher ODs and
        # at least as many outlying subspaces.
        assert by_row.total_outlying >= by_point.total_outlying

    def test_query_row_bounds_checked(self, fitted_miner):
        with pytest.raises(ConfigurationError):
            fitted_miner.query_row(10_000)

    def test_query_many(self, fitted_miner, planted_dataset):
        results = fitted_miner.query_many([0, 1, planted_dataset.X[2]])
        assert len(results) == 3

    def test_search_outcome_exposes_lattice(self, fitted_miner):
        outcome, evaluator = fitted_miner.search_outcome(0)
        assert outcome.d == fitted_miner.d_
        assert evaluator.evaluations == outcome.stats.od_evaluations

    def test_minimal_od_values_present_and_above_threshold(self, fitted_miner):
        result = fitted_miner.query_row(0)
        assert result.is_outlier
        for subspace in result.minimal:
            assert result.od_values[subspace] >= result.threshold

    def test_backends_agree(self, planted_dataset):
        X = planted_dataset.X
        results = {}
        for index in ("linear", "rstar", "xtree"):
            miner = HOSMiner(
                k=4, sample_size=0, threshold=8.0, index=index,
                index_options={} if index == "linear" else {"max_entries": 16},
            ).fit(X)
            result = miner.query_row(0)
            results[index] = {s.mask for s in result.minimal}
        assert results["linear"] == results["rstar"] == results["xtree"]

    def test_adaptive_answers_identical(self, planted_dataset):
        X = planted_dataset.X
        plain = HOSMiner(k=4, sample_size=3, threshold=8.0).fit(X)
        adaptive = HOSMiner(k=4, sample_size=3, threshold=8.0, adaptive=True).fit(X)
        for row in [0, 1, 2, 50, 51]:
            a = {s.mask for s in plain.query_row(row).minimal}
            b = {s.mask for s in adaptive.query_row(row).minimal}
            assert a == b


class TestCalibration:
    def test_threshold_is_full_space_quantile(self, rng):
        X = rng.normal(size=(100, 3))
        backend = LinearScanIndex(X)
        threshold = calibrate_threshold(backend, X, 3, quantile=0.5, sample=100)
        from repro.core.od import outlying_degree

        ods = [
            outlying_degree(backend, X[row], 3, (0, 1, 2), exclude=row)
            for row in range(100)
        ]
        assert threshold == pytest.approx(float(np.quantile(ods, 0.5)))

    def test_sampled_calibration_deterministic(self, rng):
        X = rng.normal(size=(200, 3))
        backend = LinearScanIndex(X)
        a = calibrate_threshold(backend, X, 3, sample=50, seed=5)
        b = calibrate_threshold(backend, X, 3, sample=50, seed=5)
        assert a == b

    def test_quantile_validated(self, rng):
        X = rng.normal(size=(50, 3))
        backend = LinearScanIndex(X)
        with pytest.raises(ConfigurationError):
            calibrate_threshold(backend, X, 3, quantile=1.5)

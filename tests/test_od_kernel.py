"""The GEMM level-wide OD kernel: tolerance, decisions, fallbacks.

The kernel knob's contract has two halves. *Values*: the GEMM kernel's
OD sums agree with the exact kernel within rtol 1e-9 (BLAS accumulates
in its own order) — property-tested over random data, masks, k, metrics
and input dtypes. *Decisions*: every ``OD >= T`` pruning decision — and
therefore every answer set — is **identical** between kernels on the
tier-1 workloads, because near-threshold GEMM values are re-verified
with the exact kernel before any decision is made on them.

Satellites covered here too: the capacity-doubling insert buffer, the
honest gather/GEMM-flop accounting, and the loud ``kernel="gemm"``
configuration error for metrics without a linear decomposition.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.core.metrics import get_metric, resolve_kernel, supports_gemm_kernel
from repro.core.miner import HOSMiner
from repro.core.od import GEMM_REVERIFY_RTOL, ODEvaluator, near_threshold
from repro.data.synthetic import make_planted_outliers
from repro.index.linear import LinearScanIndex
from repro.index.vafile import VAFile

RTOL = 1e-9


def _random_problem(seed: int, n: int, d: int, dtype):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(n, d)).astype(dtype)
    query = generator.normal(size=d).astype(dtype)
    n_masks = int(generator.integers(1, 20))
    masks_dims = [
        np.sort(
            generator.choice(d, size=int(generator.integers(1, d + 1)), replace=False)
        ).astype(np.intp)
        for _ in range(n_masks)
    ]
    return X, query, masks_dims


# ----------------------------------------------------------------------
# Values: GEMM vs exact within rtol 1e-9, any metric / dtype / masks
# ----------------------------------------------------------------------
class TestKernelValues:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        d=st.integers(2, 10),
        k=st.integers(1, 6),
        metric=st.sampled_from(["euclidean", "manhattan", "minkowski:3"]),
        dtype=st.sampled_from([np.float64, np.float32]),
        use_exclude=st.booleans(),
    )
    def test_linear_gemm_matches_exact(self, seed, d, k, metric, dtype, use_exclude):
        X, query, masks_dims = _random_problem(seed, 60, d, dtype)
        backend = LinearScanIndex(X, metric=metric)
        exclude = 7 if use_exclude else None
        exact = backend.knn_distance_sums(
            query, k, masks_dims, exclude=exclude, kernel="exact"
        )
        gemm = backend.knn_distance_sums(
            query, k, masks_dims, exclude=exclude, kernel="gemm"
        )
        np.testing.assert_allclose(gemm, exact, rtol=RTOL)
        # The exact kernel itself is bit-identical to summed kNN.
        for dims, value in zip(masks_dims, exact):
            _, distances = backend.knn(query, k, dims, exclude=exclude)
            assert value == float(distances.sum())

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        d=st.integers(2, 8),
        k=st.integers(1, 4),
        metric=st.sampled_from(["euclidean", "manhattan"]),
    )
    def test_batch_kernel_matches_single_query(self, seed, d, k, metric):
        X, _, masks_dims = _random_problem(seed, 50, d, np.float64)
        backend = LinearScanIndex(X, metric=metric)
        generator = np.random.default_rng(seed + 1)
        queries = generator.normal(size=(4, d))
        excludes = [None, 3, 49, None]
        grid = backend.knn_distance_sums_batch(
            queries, k, masks_dims, excludes=excludes, kernel="gemm"
        )
        for i in range(queries.shape[0]):
            single = backend.knn_distance_sums(
                queries[i], k, masks_dims, exclude=excludes[i], kernel="gemm"
            )
            np.testing.assert_array_equal(grid[i], single)

    def test_components_reuse_same_values(self, rng):
        X = rng.normal(size=(80, 6))
        backend = LinearScanIndex(X)
        query = rng.normal(size=6)
        dims_list = [(0, 1), (2, 4, 5), (0, 1, 2, 3, 4, 5)]
        components = backend.distance_components(query)
        with_c = backend.knn_distance_sums(
            query, 4, dims_list, components=components, kernel="gemm"
        )
        without_c = backend.knn_distance_sums(query, 4, dims_list, kernel="gemm")
        np.testing.assert_array_equal(with_c, without_c)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "minkowski:3"])
    def test_vafile_gemm_bit_identical_to_exact(self, metric, rng):
        """The VA prefilter only gates *candidates*; refinement is exact
        arithmetic, so both kernels return bit-identical sums."""
        X = rng.normal(size=(300, 6))
        va = VAFile(X, metric=metric, bits=5)
        lin = LinearScanIndex(X, metric=metric)
        query = rng.normal(size=6)
        dims_list = [(0,), (1, 3), (0, 2, 4, 5)]
        exact = va.knn_distance_sums(query, 5, dims_list, exclude=9, kernel="exact")
        gemm = va.knn_distance_sums(query, 5, dims_list, exclude=9, kernel="gemm")
        np.testing.assert_array_equal(gemm, exact)
        reference = [
            float(lin.knn(query, 5, dims, exclude=9)[1].sum()) for dims in dims_list
        ]
        np.testing.assert_array_equal(exact, reference)

    def test_empty_mask_list(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 3)))
        assert backend.knn_distance_sums(np.zeros(3), 2, [], kernel="gemm").size == 0


# ----------------------------------------------------------------------
# Decisions: answer sets identical across kernels on tier-1 workloads
# ----------------------------------------------------------------------
class TestPruningEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    @pytest.mark.parametrize("index", ["linear", "vafile"])
    def test_answer_sets_identical(self, metric, index):
        dataset = make_planted_outliers(
            n=300, d=6, n_outliers=3, subspace_dims=2, displacement=9.0, seed=23
        )
        kwargs = dict(
            k=4, sample_size=6, threshold_quantile=0.95, metric=metric, index=index
        )
        gemm_miner = HOSMiner(kernel="gemm", **kwargs).fit(dataset.X)
        exact_miner = HOSMiner(kernel="exact", **kwargs).fit(dataset.X)
        assert gemm_miner.kernel_ == "gemm" and exact_miner.kernel_ == "exact"
        assert gemm_miner.threshold_ == exact_miner.threshold_
        targets = list(range(24)) + [dataset.X[5] + 0.3]
        for target in targets:
            g = gemm_miner.query(target)
            e = exact_miner.query(target)
            assert g.minimal == e.minimal
            assert g.total_outlying == e.total_outlying
            assert g.is_outlier == e.is_outlier

    def test_full_outlying_sets_identical(self):
        dataset = make_planted_outliers(
            n=250, d=7, n_outliers=2, subspace_dims=3, displacement=8.0, seed=5
        )
        gemm_miner = HOSMiner(k=4, sample_size=4, kernel="gemm").fit(dataset.X)
        exact_miner = HOSMiner(k=4, sample_size=4, kernel="exact").fit(dataset.X)
        for row in list(dataset.outlier_rows) + [10, 20, 30]:
            g, _ = gemm_miner.search_outcome(row)
            e, _ = exact_miner.search_outcome(row)
            assert sorted(g.outlying_masks) == sorted(e.outlying_masks)

    def test_exact_threshold_hit_reverified(self, rng):
        """A threshold equal to a GEMM OD value lands inside the
        re-verification band, so the exact kernel decides — decisions
        match the exact search even in the worst adversarial case."""
        X = rng.normal(size=(120, 5))
        backend = LinearScanIndex(X)
        evaluator = ODEvaluator(backend, X[0], 3, exclude=0, kernel="gemm")
        probe = evaluator.od_many([0b00111])[0b00111]
        fresh = ODEvaluator(backend, X[0], 3, exclude=0, kernel="gemm")
        values = fresh.od_many([0b00111], threshold=probe)
        exact = float(backend.knn(X[0], 3, (0, 1, 2), exclude=0)[1].sum())
        assert values[0b00111] == exact  # the band forced the exact kernel

    def test_near_threshold_band(self):
        assert near_threshold(10.0, 10.0)
        assert near_threshold(10.0, 10.0 + 1e-12)
        assert not near_threshold(10.0, 10.0 + 1e-6)
        assert not near_threshold(0.0, 1.0)
        assert near_threshold(0.0, GEMM_REVERIFY_RTOL / 2)


# ----------------------------------------------------------------------
# The kernel knob: resolution, fallbacks, loud failures
# ----------------------------------------------------------------------
class WeirdMetric:
    """A metric with no component decomposition at all."""

    name = "weird"

    def pairwise(self, X, q, dims):
        dims = np.asarray(dims, dtype=np.intp)
        return np.abs(X[:, dims] - q[dims]).sum(axis=1) * 2.0

    def point(self, a, b, dims):
        dims = np.asarray(dims, dtype=np.intp)
        return float(np.abs(a[dims] - b[dims]).sum() * 2.0)

    def mindist(self, q, lower, upper, dims):
        return 0.0


class TestKernelConfiguration:
    def test_resolution(self):
        assert resolve_kernel("auto", get_metric("euclidean")) == "gemm"
        assert resolve_kernel("auto", get_metric("chebyshev")) == "exact"
        assert resolve_kernel("exact", get_metric("euclidean")) == "exact"
        assert supports_gemm_kernel(get_metric("minkowski:4"))
        assert not supports_gemm_kernel(WeirdMetric())
        with pytest.raises(ConfigurationError, match="kernel must be one of"):
            resolve_kernel("fast", get_metric("euclidean"))

    def test_explicit_gemm_rejected_for_max_reduction(self):
        with pytest.raises(ConfigurationError, match="component decomposition"):
            resolve_kernel("gemm", get_metric("chebyshev"))

    def test_fit_fails_loudly_on_gemm_with_custom_metric(self, rng):
        X = rng.normal(size=(40, 4))
        with pytest.raises(ConfigurationError, match="component decomposition"):
            HOSMiner(k=3, sample_size=0, kernel="gemm", metric=WeirdMetric()).fit(X)

    def test_auto_falls_back_for_custom_metric(self, rng):
        X = rng.normal(size=(40, 4))
        miner = HOSMiner(
            k=3, sample_size=2, threshold_quantile=0.9, metric=WeirdMetric()
        ).fit(X)
        assert miner.kernel_ == "exact"
        assert miner.query_row(0) is not None

    def test_config_validates_kernel(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            HOSMiner(kernel="fast")

    def test_index_rejects_gemm_for_incapable_metric(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 3)), metric=WeirdMetric())
        with pytest.raises(ConfigurationError, match="component decomposition"):
            backend.knn_distance_sums(np.zeros(3), 2, [(0, 1)], kernel="gemm")

    def test_evaluator_tree_backend_falls_back(self, rng):
        from repro.index.rstar import RStarTree

        X = rng.normal(size=(60, 4))
        tree = RStarTree(X)
        evaluator = ODEvaluator(tree, X[0], 3, exclude=0, kernel="gemm")
        values = evaluator.od_many([0b0011, 0b1100], threshold=1.0)
        for mask, dims in ((0b0011, (0, 1)), (0b1100, (2, 3))):
            assert values[mask] == float(tree.knn(X[0], 3, dims, exclude=0)[1].sum())

    def test_fit_fails_loudly_on_gemm_with_tree_backend(self, rng):
        """A user who demanded the fast kernel must not silently get the
        per-subspace tree descent instead."""
        X = rng.normal(size=(60, 4))
        with pytest.raises(ConfigurationError, match="knn_distance_sums"):
            HOSMiner(k=3, sample_size=0, kernel="gemm", index="rstar").fit(X)

    def test_auto_reports_exact_for_tree_backend(self, rng):
        X = rng.normal(size=(60, 4))
        miner = HOSMiner(
            k=3, sample_size=0, threshold_quantile=0.9, index="rstar"
        ).fit(X)
        assert miner.kernel_ == "exact"  # what actually runs

    def test_budget_bounds_kernel_work(self, rng):
        """SearchBudgetExceeded must cap backend work, not just recorded
        decisions: a level wider than the remaining budget may only
        evaluate up to the budget before raising."""
        from repro.core.exceptions import SearchBudgetExceeded
        from repro.core.priors import PruningPriors
        from repro.core.search import DynamicSubspaceSearch

        X = rng.normal(size=(80, 8))
        X[0] += 5.0
        backend = LinearScanIndex(X)
        evaluator = ODEvaluator(backend, X[0], 3, exclude=0, kernel="gemm")
        search = DynamicSubspaceSearch(
            evaluator, 2.0, PruningPriors.uniform(8), max_evaluations=3
        )
        with pytest.raises(SearchBudgetExceeded):
            search.run()
        assert evaluator.evaluations <= 3


# ----------------------------------------------------------------------
# Satellite: amortised insert buffer
# ----------------------------------------------------------------------
class TestInsertBuffer:
    def test_growth_preserves_data_and_answers(self, rng):
        X = rng.normal(size=(17, 4))
        backend = LinearScanIndex(X)
        extra = rng.normal(size=(203, 4))
        for row in extra:
            backend.insert(row)
        assert backend.size == 220
        reference = LinearScanIndex(np.vstack([X, extra]))
        np.testing.assert_array_equal(backend.data, reference.data)
        query = rng.normal(size=4)
        for dims in [(0, 2), (1, 2, 3)]:
            got = backend.knn(query, 5, dims)
            want = reference.knn(query, 5, dims)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])

    def test_amortised_capacity_doubling(self, rng):
        backend = LinearScanIndex(rng.normal(size=(4, 3)))
        buffers = set()
        for _ in range(1000):
            backend.insert(rng.normal(size=3))
            buffers.add(id(backend._buf))
        # 4 -> 1004 rows needs only ~log2(1004/4) reallocations; a
        # vstack-per-insert implementation would create ~1000 buffers.
        assert len(buffers) <= 12
        assert backend.size == 1004

    def test_gemm_kernel_after_growth(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 5)))
        for row in rng.normal(size=(50, 5)):
            backend.insert(row)
        query = rng.normal(size=5)
        exact = backend.knn_distance_sums(query, 4, [(0, 1), (2, 3, 4)])
        gemm = backend.knn_distance_sums(query, 4, [(0, 1), (2, 3, 4)], kernel="gemm")
        np.testing.assert_allclose(gemm, exact, rtol=RTOL)


# ----------------------------------------------------------------------
# Satellite: honest cost accounting
# ----------------------------------------------------------------------
class TestAccounting:
    def test_component_reuse_not_charged_as_scans(self, rng):
        X = rng.normal(size=(100, 5))
        backend = LinearScanIndex(X)
        query = rng.normal(size=5)
        components = backend.distance_components(query)
        # Building the matrix is one full per-dimension pass.
        assert backend.stats.distance_computations == 100
        before = backend.stats.distance_computations
        backend.knn_distance_sums(
            query, 3, [(0, 1), (2, 4)], components=components, kernel="exact"
        )
        assert backend.stats.distance_computations == before  # no new scans
        assert backend.stats.extra["component_gathers"] == 100 * 4  # 2+2 dims
        assert backend.stats.knn_queries == 2

    def test_fresh_exact_scans_still_charged(self, rng):
        X = rng.normal(size=(100, 5))
        backend = LinearScanIndex(X)
        backend.knn_distance_sums(rng.normal(size=5), 3, [(0, 1), (2, 4)])
        assert backend.stats.distance_computations == 200
        assert "component_gathers" not in backend.stats.extra

    def test_gemm_flops_counted(self, rng):
        X = rng.normal(size=(100, 5))
        backend = LinearScanIndex(X)
        query = rng.normal(size=5)
        components = backend.distance_components(query)
        before = backend.stats.distance_computations
        backend.knn_distance_sums(
            query, 3, [(0, 1), (2, 4), (0, 3)], components=components, kernel="gemm"
        )
        assert backend.stats.extra["gemm_flops"] == 2 * 100 * 5 * 3
        assert backend.stats.distance_computations == before


# ----------------------------------------------------------------------
# Satellite: the CLI --kernel flag
# ----------------------------------------------------------------------
class TestCliKernelFlag:
    @pytest.fixture()
    def csv_path(self, tmp_path, rng):
        X = rng.normal(size=(60, 4))
        X[3] += 6.0
        path = tmp_path / "data.csv"
        header = "a,b,c,d"
        np.savetxt(path, X, delimiter=",", header=header, comments="")
        return path

    @pytest.mark.parametrize("kernel", ["auto", "gemm", "exact"])
    def test_query_accepts_kernel(self, csv_path, kernel, capsys):
        from repro.cli import main

        assert main(["query", str(csv_path), "--row", "3", "--kernel", kernel]) == 0
        assert "row 3" in capsys.readouterr().out

    def test_batch_reports_kernel(self, csv_path, capsys):
        from repro.cli import main

        assert main(["batch", str(csv_path), "--rows", "0,3"]) == 0
        assert "kernel = gemm" in capsys.readouterr().out

    def test_batch_kernel_exact(self, csv_path, capsys):
        from repro.cli import main

        code = main(["batch", str(csv_path), "--rows", "0,3", "--kernel", "exact"])
        assert code == 0
        assert "kernel = exact" in capsys.readouterr().out

"""Metric correctness, subspace monotonicity, and MINDIST soundness."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.exceptions import ConfigurationError
from repro.core.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
    get_metric,
)

ALL_METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    MinkowskiMetric(3.0),
]

FINITE = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
VECTORS = arrays(np.float64, 6, elements=FINITE)


class TestPointDistances:
    def test_euclidean_manual(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([3.0, 4.0, 12.0])
        metric = EuclideanMetric()
        assert metric.point(a, b, (0, 1)) == pytest.approx(5.0)
        assert metric.point(a, b, (0, 1, 2)) == pytest.approx(13.0)

    def test_manhattan_manual(self):
        a = np.array([1.0, 2.0])
        b = np.array([4.0, -2.0])
        assert ManhattanMetric().point(a, b, (0, 1)) == pytest.approx(7.0)

    def test_chebyshev_manual(self):
        a = np.array([1.0, 2.0])
        b = np.array([4.0, -2.0])
        assert ChebyshevMetric().point(a, b, (0, 1)) == pytest.approx(4.0)

    def test_minkowski_p2_equals_euclidean(self):
        a = np.array([1.0, -3.0, 2.0])
        b = np.array([0.5, 4.0, -1.0])
        dims = (0, 1, 2)
        assert MinkowskiMetric(2.0).point(a, b, dims) == pytest.approx(
            EuclideanMetric().point(a, b, dims)
        )

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_pairwise_matches_point(self, metric, rng):
        X = rng.normal(size=(40, 6))
        q = rng.normal(size=6)
        dims = (1, 3, 4)
        expected = [metric.point(X[i], q, np.asarray(dims)) for i in range(40)]
        got = metric.pairwise(X, q, np.asarray(dims))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_identity_of_indiscernibles(self, metric):
        a = np.array([1.0, 2.0, 3.0])
        assert metric.point(a, a.copy(), (0, 1, 2)) == 0.0


class TestMonotonicity:
    """The property the whole pruning framework rests on."""

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    @settings(max_examples=60, deadline=None)
    @given(a=VECTORS, b=VECTORS, seed=st.integers(0, 2**16))
    def test_distance_grows_with_dimensions(self, metric, a, b, seed):
        generator = np.random.default_rng(seed)
        d = a.shape[0]
        size_small = int(generator.integers(1, d))
        small = sorted(generator.choice(d, size=size_small, replace=False).tolist())
        extra = [dim for dim in range(d) if dim not in small]
        size_extra = int(generator.integers(1, len(extra) + 1))
        big = sorted(small + extra[:size_extra])
        small_arr, big_arr = np.asarray(small), np.asarray(big)
        assert metric.point(a, b, big_arr) >= metric.point(a, b, small_arr) - 1e-12


class TestMindist:
    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    @settings(max_examples=60, deadline=None)
    @given(q=VECTORS, c1=VECTORS, c2=VECTORS, p=VECTORS, seed=st.integers(0, 2**16))
    def test_mindist_is_lower_bound(self, metric, q, c1, c2, p, seed):
        """mindist(q, box) <= dist(q, x) for any x inside the box."""
        lower = np.minimum(c1, c2)
        upper = np.maximum(c1, c2)
        # Clamp p into the box.
        inside = np.clip(p, lower, upper)
        generator = np.random.default_rng(seed)
        d = q.shape[0]
        size = int(generator.integers(1, d + 1))
        dims = np.sort(generator.choice(d, size=size, replace=False))
        assert metric.mindist(q, lower, upper, dims) <= metric.point(
            q, inside, dims
        ) + 1e-9

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_mindist_zero_inside(self, metric):
        lower = np.array([0.0, 0.0])
        upper = np.array([2.0, 2.0])
        q = np.array([1.0, 1.5])
        assert metric.mindist(q, lower, upper, np.array([0, 1])) == 0.0

    def test_euclidean_mindist_manual(self):
        lower = np.array([0.0, 0.0])
        upper = np.array([1.0, 1.0])
        q = np.array([4.0, 5.0])
        expected = math.hypot(3.0, 4.0)
        assert EuclideanMetric().mindist(q, lower, upper, np.array([0, 1])) == (
            pytest.approx(expected)
        )


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("euclidean", EuclideanMetric),
            ("L2", EuclideanMetric),
            ("manhattan", ManhattanMetric),
            ("l1", ManhattanMetric),
            ("chebyshev", ChebyshevMetric),
            ("linf", ChebyshevMetric),
        ],
    )
    def test_names_resolve(self, name, cls):
        assert isinstance(get_metric(name), cls)

    def test_minkowski_spec(self):
        metric = get_metric("minkowski:3")
        assert isinstance(metric, MinkowskiMetric)
        assert metric.p == 3.0

    def test_instances_pass_through(self):
        metric = EuclideanMetric()
        assert get_metric(metric) is metric

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_metric("cosine")

    def test_bad_minkowski_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            get_metric("minkowski:abc")

    def test_minkowski_requires_p_geq_1(self):
        with pytest.raises(ConfigurationError):
            MinkowskiMetric(0.5)

    def test_non_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            get_metric(42)  # type: ignore[arg-type]

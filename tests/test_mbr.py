"""MBR geometry used by the tree indexes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.exceptions import DataShapeError
from repro.index.mbr import MBR

FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
VEC3 = arrays(np.float64, 3, elements=FINITE)


def box(lower, upper):
    return MBR(np.asarray(lower, float), np.asarray(upper, float))


class TestConstruction:
    def test_from_point_is_degenerate(self):
        b = MBR.from_point(np.array([1.0, 2.0]))
        assert b.area() == 0.0
        assert b.contains_point(np.array([1.0, 2.0]))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(DataShapeError):
            box([2.0, 0.0], [1.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataShapeError):
            MBR(np.zeros(2), np.zeros(3))

    def test_union_of_empty_rejected(self):
        with pytest.raises(DataShapeError):
            MBR.union_of([])

    def test_copy_is_independent(self):
        a = box([0, 0], [1, 1])
        b = a.copy()
        b.extend_point(np.array([5.0, 5.0]))
        assert a.upper[0] == 1.0


class TestGeometry:
    def test_area_margin_center(self):
        b = box([0, 0, 0], [2, 3, 4])
        assert b.area() == 24.0
        assert b.margin() == 9.0
        np.testing.assert_array_equal(b.center(), [1.0, 1.5, 2.0])

    def test_containment(self):
        outer = box([0, 0], [10, 10])
        inner = box([2, 2], [3, 3])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_point(np.array([10.0, 0.0]))
        assert not outer.contains_point(np.array([10.1, 0.0]))

    def test_intersection_volume(self):
        a = box([0, 0], [2, 2])
        b = box([1, 1], [3, 3])
        assert a.intersection_volume(b) == 1.0
        disjoint = box([5, 5], [6, 6])
        assert a.intersection_volume(disjoint) == 0.0
        assert not a.intersects(disjoint)

    def test_overlap_ratio_cases(self):
        a = box([0, 0], [2, 2])
        assert a.overlap_ratio(box([0, 0], [2, 2])) == pytest.approx(1.0)
        assert a.overlap_ratio(box([5, 5], [6, 6])) == 0.0
        half = a.overlap_ratio(box([1, 0], [3, 2]))  # 2 / (4+4-2)
        assert half == pytest.approx(2 / 6)

    def test_overlap_ratio_degenerate_boxes(self):
        point = MBR.from_point(np.array([1.0, 1.0]))
        assert point.overlap_ratio(point) == 1.0  # intersecting, zero-volume
        other = MBR.from_point(np.array([2.0, 2.0]))
        assert point.overlap_ratio(other) == 0.0

    def test_enlargement(self):
        a = box([0, 0], [1, 1])
        assert a.enlargement(box([0, 0], [1, 1])) == 0.0
        assert a.enlargement(box([1, 0], [2, 1])) == pytest.approx(1.0)

    def test_overlap_enlargement_with_siblings(self):
        a = box([0, 0], [1, 1])
        sibling = box([1.5, 0.0], [2.5, 1.0])
        grow_to = box([1.9, 0.0], [2.0, 1.0])
        delta = a.overlap_enlargement(grow_to, [sibling])
        assert delta == pytest.approx(0.5)  # grown a overlaps sibling 0.5


class TestMutation:
    def test_extend_point(self):
        b = box([0, 0], [1, 1])
        b.extend_point(np.array([-1.0, 2.0]))
        np.testing.assert_array_equal(b.lower, [-1.0, 0.0])
        np.testing.assert_array_equal(b.upper, [1.0, 2.0])

    def test_extend_box(self):
        b = box([0, 0], [1, 1])
        b.extend_box(box([2, 2], [3, 3]))
        assert b.contains_box(box([2, 2], [3, 3]))

    def test_equality(self):
        assert box([0, 0], [1, 1]) == box([0, 0], [1, 1])
        assert box([0, 0], [1, 1]) != box([0, 0], [1, 2])
        assert box([0, 0], [1, 1]) != "not a box"


class TestProperties:
    @settings(max_examples=80)
    @given(a=VEC3, b=VEC3, c=VEC3, d=VEC3)
    def test_union_contains_both(self, a, b, c, d):
        box1 = MBR(np.minimum(a, b), np.maximum(a, b))
        box2 = MBR(np.minimum(c, d), np.maximum(c, d))
        union = box1.union(box2)
        assert union.contains_box(box1)
        assert union.contains_box(box2)

    @settings(max_examples=80)
    @given(a=VEC3, b=VEC3, c=VEC3, d=VEC3)
    def test_intersection_bounded_by_areas(self, a, b, c, d):
        box1 = MBR(np.minimum(a, b), np.maximum(a, b))
        box2 = MBR(np.minimum(c, d), np.maximum(c, d))
        volume = box1.intersection_volume(box2)
        assert volume <= box1.area() + 1e-6
        assert volume <= box2.area() + 1e-6
        assert volume >= 0.0

    @settings(max_examples=80)
    @given(a=VEC3, b=VEC3, c=VEC3, d=VEC3)
    def test_overlap_ratio_in_unit_interval(self, a, b, c, d):
        box1 = MBR(np.minimum(a, b), np.maximum(a, b))
        box2 = MBR(np.minimum(c, d), np.maximum(c, d))
        assert 0.0 <= box1.overlap_ratio(box2) <= 1.0 + 1e-9

    @settings(max_examples=80)
    @given(a=VEC3, b=VEC3, p=VEC3)
    def test_enlargement_nonnegative(self, a, b, p):
        box1 = MBR(np.minimum(a, b), np.maximum(a, b))
        point = MBR.from_point(p)
        assert box1.enlargement(point) >= -1e-9

"""Linear-scan backend: exactness, exclusion, accounting, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.index.linear import BLOCK_ROWS, LinearScanIndex


@pytest.fixture(scope="module")
def index():
    generator = np.random.default_rng(5)
    X = generator.normal(size=(130, 4))
    return LinearScanIndex(X), X


class TestKnn:
    def test_matches_numpy_reference(self, index):
        backend, X = index
        q = X[3]
        dims = (0, 2)
        indices, distances = backend.knn(q, 7, dims, exclude=3)
        reference = np.sqrt(((X[:, dims] - q[list(dims)]) ** 2).sum(axis=1))
        reference[3] = np.inf
        order = np.lexsort((np.arange(len(reference)), reference))[:7]
        np.testing.assert_array_equal(indices, order)
        np.testing.assert_allclose(distances, reference[order])

    def test_distances_sorted_and_exclude_respected(self, index):
        backend, X = index
        indices, distances = backend.knn(X[0], 10, (0, 1, 2, 3), exclude=0)
        assert 0 not in indices
        assert list(distances) == sorted(distances)

    def test_k_equal_n_minus_one(self, index):
        backend, X = index
        indices, _ = backend.knn(X[0], 129, (0, 1), exclude=0)
        assert len(indices) == 129

    def test_duplicate_ties_break_by_row(self):
        X = np.zeros((6, 2))
        backend = LinearScanIndex(X)
        indices, distances = backend.knn(np.zeros(2), 3, (0, 1))
        assert list(indices) == [0, 1, 2]
        assert list(distances) == [0.0, 0.0, 0.0]

    def test_k_validation(self, index):
        backend, X = index
        with pytest.raises(ConfigurationError):
            backend.knn(X[0], 0, (0,))
        with pytest.raises(ConfigurationError):
            backend.knn(X[0], 130, (0,), exclude=0)

    def test_dims_validation(self, index):
        backend, X = index
        with pytest.raises(ConfigurationError):
            backend.knn(X[0], 3, ())
        with pytest.raises(ConfigurationError):
            backend.knn(X[0], 3, (0, 9))

    def test_query_shape_validation(self, index):
        backend, _ = index
        with pytest.raises(DataShapeError):
            backend.knn(np.zeros(3), 3, (0,))


class TestRange:
    def test_matches_numpy_reference(self, index):
        backend, X = index
        q = X[10]
        hits = backend.range_query(q, 1.0, (0, 1), exclude=10)
        reference = np.sqrt(((X[:, (0, 1)] - q[[0, 1]]) ** 2).sum(axis=1))
        expected = set(np.flatnonzero(reference <= 1.0)) - {10}
        assert set(hits) == expected

    def test_radius_zero_finds_duplicates(self):
        X = np.zeros((4, 2))
        backend = LinearScanIndex(X)
        assert set(backend.range_query(np.zeros(2), 0.0, (0, 1))) == {0, 1, 2, 3}

    def test_negative_radius_rejected(self, index):
        backend, X = index
        with pytest.raises(ConfigurationError):
            backend.range_query(X[0], -1.0, (0,))


class TestAccounting:
    def test_stats_per_query(self):
        X = np.random.default_rng(0).normal(size=(130, 3))
        backend = LinearScanIndex(X)
        backend.knn(X[0], 3, (0, 1), exclude=0)
        assert backend.stats.knn_queries == 1
        assert backend.stats.distance_computations == 130
        assert backend.stats.node_accesses == -(-130 // BLOCK_ROWS)
        backend.range_query(X[0], 1.0, (0,))
        assert backend.stats.range_queries == 1
        assert backend.stats.distance_computations == 260

    def test_reset(self):
        X = np.zeros((10, 2))
        backend = LinearScanIndex(X)
        backend.knn(np.zeros(2), 2, (0,))
        backend.stats.reset()
        assert backend.stats.snapshot()["distance_computations"] == 0


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(DataShapeError):
            LinearScanIndex(np.zeros((0, 3)))
        with pytest.raises(DataShapeError):
            LinearScanIndex(np.zeros(5))

    def test_data_view_read_only(self, index):
        backend, _ = index
        with pytest.raises(ValueError):
            backend.data[0, 0] = 99.0

    def test_repr(self, index):
        backend, _ = index
        assert "LinearScanIndex" in repr(backend)

"""Outlying Degree: definition, caching, self-exclusion, monotonicity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.od import ODEvaluator, outlying_degree
from repro.core.subspace import Subspace, dims_of_mask, iter_proper_submasks
from repro.index.linear import LinearScanIndex


def brute_od(X, q, k, dims, exclude=None):
    """Reference OD: sort all distances, sum the k smallest."""
    diff = X[:, list(dims)] - np.asarray(q)[list(dims)]
    distances = np.sqrt((diff**2).sum(axis=1))
    if exclude is not None:
        distances = np.delete(distances, exclude)
    return float(np.sort(distances)[:k].sum())


class TestOutlyingDegree:
    def test_matches_brute_force(self, rng):
        X = rng.normal(size=(60, 4))
        backend = LinearScanIndex(X)
        q = rng.normal(size=4)
        for dims in [(0,), (1, 3), (0, 1, 2, 3)]:
            assert outlying_degree(backend, q, 5, dims) == pytest.approx(
                brute_od(X, q, 5, dims)
            )

    def test_self_exclusion_changes_od(self, rng):
        X = rng.normal(size=(30, 3))
        backend = LinearScanIndex(X)
        with_self = outlying_degree(backend, X[4], 3, (0, 1, 2))
        without_self = outlying_degree(backend, X[4], 3, (0, 1, 2), exclude=4)
        # Including the row itself contributes a zero distance, so the
        # excluded version is at least as large.
        assert without_self >= with_self

    def test_duplicates_remain_legal_neighbours(self):
        X = np.zeros((5, 2))
        X[4] = [9.0, 9.0]
        backend = LinearScanIndex(X)
        # Row 0 has three exact duplicates; excluding only itself keeps them.
        assert outlying_degree(backend, X[0], 3, (0, 1), exclude=0) == 0.0


class TestODEvaluator:
    def _evaluator(self, rng, n=50, d=4, k=4):
        X = rng.normal(size=(n, d))
        return ODEvaluator(LinearScanIndex(X), X[0], k, exclude=0), X

    def test_od_matches_function(self, rng):
        evaluator, X = self._evaluator(rng)
        mask = 0b1011
        assert evaluator.od(mask) == pytest.approx(
            brute_od(X, X[0], 4, dims_of_mask(mask), exclude=0)
        )

    def test_cache_counts(self, rng):
        evaluator, _ = self._evaluator(rng)
        evaluator.od(0b101)
        evaluator.od(0b101)
        evaluator.od(0b011)
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 1

    def test_reset_counters_keeps_cache(self, rng):
        evaluator, _ = self._evaluator(rng)
        evaluator.od(0b1)
        evaluator.reset_counters()
        assert evaluator.evaluations == 0
        evaluator.od(0b1)
        assert evaluator.cache_hits == 1 and evaluator.evaluations == 0

    def test_od_subspace_wrapper(self, rng):
        evaluator, _ = self._evaluator(rng)
        subspace = Subspace.from_dims([0, 2], 4)
        assert evaluator.od_subspace(subspace) == pytest.approx(evaluator.od(0b101))

    def test_od_subspace_rejects_wrong_width(self, rng):
        evaluator, _ = self._evaluator(rng)
        with pytest.raises(DataShapeError):
            evaluator.od_subspace(Subspace.from_dims([0], 5))

    def test_knn_set_contents(self, rng):
        evaluator, X = self._evaluator(rng)
        indices, distances = evaluator.knn_set(0b1111)
        assert len(indices) == 4
        assert 0 not in indices  # self excluded
        assert list(distances) == sorted(distances)
        assert evaluator.od(0b1111) == pytest.approx(float(distances.sum()))

    def test_rejects_bad_k(self, rng):
        X = rng.normal(size=(10, 3))
        backend = LinearScanIndex(X)
        with pytest.raises(ConfigurationError):
            ODEvaluator(backend, X[0], 10, exclude=0)  # only 9 candidates
        with pytest.raises(ConfigurationError):
            ODEvaluator(backend, X[0], 0)

    def test_rejects_bad_query_shape(self, rng):
        X = rng.normal(size=(10, 3))
        backend = LinearScanIndex(X)
        with pytest.raises(DataShapeError):
            ODEvaluator(backend, np.zeros(4), 2)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20), k=st.integers(1, 6))
def test_od_monotone_under_subspace_inclusion(seed, k):
    """Property 1/2's foundation: OD never decreases when dims are added.

    This is the load-bearing invariant of the whole search — checked on
    random data over every (subspace, proper subset) pair of a 4-d space.
    """
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(40, 4)) * generator.uniform(0.5, 3)
    backend = LinearScanIndex(X)
    evaluator = ODEvaluator(backend, X[0], k, exclude=0)
    for mask in range(1, 16):
        od_mask = evaluator.od(mask)
        for sub in iter_proper_submasks(mask):
            assert evaluator.od(sub) <= od_mask + 1e-9

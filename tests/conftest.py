"""Shared fixtures for the HOS-Miner test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import HOSMiner
from repro.data.synthetic import make_planted_outliers


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_gaussian() -> np.ndarray:
    """300 x 5 Gaussian blob with one extreme row (row 0, dims 0-1)."""
    generator = np.random.default_rng(7)
    X = generator.normal(size=(300, 5))
    X[0, 0] += 9.0
    X[0, 1] += 9.0
    return X


@pytest.fixture(scope="session")
def planted_dataset():
    """Deterministic planted-outlier dataset used across integration tests."""
    return make_planted_outliers(
        n=400, d=6, n_outliers=3, subspace_dims=2, displacement=9.0, seed=11
    )


@pytest.fixture(scope="session")
def fitted_miner(planted_dataset) -> HOSMiner:
    """One shared fitted miner (fitting costs a learning pass)."""
    return HOSMiner(k=4, sample_size=5, threshold_quantile=0.99).fit(
        planted_dataset.X
    )

"""Unit and property tests for the bitmask subspace algebra."""

from __future__ import annotations

import itertools
from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DimensionalityError
from repro.core.subspace import (
    Subspace,
    all_masks,
    dims_of_mask,
    full_mask,
    is_proper_subset,
    is_subset,
    iter_proper_submasks,
    iter_proper_supermasks,
    iter_submasks,
    iter_supermasks,
    mask_of_dims,
    masks_at_level,
    popcount,
)

MASKS = st.integers(min_value=1, max_value=(1 << 8) - 1)


class TestMaskPrimitives:
    def test_popcount_matches_bin(self):
        for mask in range(1, 200):
            assert popcount(mask) == bin(mask).count("1")

    def test_full_mask(self):
        assert full_mask(1) == 0b1
        assert full_mask(4) == 0b1111

    def test_full_mask_rejects_nonpositive(self):
        with pytest.raises(DimensionalityError):
            full_mask(0)

    def test_mask_of_dims_roundtrip(self):
        dims = (0, 2, 5)
        assert dims_of_mask(mask_of_dims(dims)) == dims

    def test_mask_of_dims_validates_range(self):
        with pytest.raises(DimensionalityError):
            mask_of_dims([3], d=3)
        with pytest.raises(DimensionalityError):
            mask_of_dims([-1])

    def test_dims_of_mask_sorted(self):
        assert dims_of_mask(0b101001) == (0, 3, 5)

    def test_subset_relations(self):
        assert is_subset(0b010, 0b110)
        assert not is_subset(0b011, 0b110)
        assert is_subset(0b110, 0b110)
        assert is_proper_subset(0b010, 0b110)
        assert not is_proper_subset(0b110, 0b110)


class TestEnumeration:
    def test_submask_count(self):
        mask = 0b10110  # m = 3
        assert len(list(iter_submasks(mask))) == 2**3 - 1
        assert len(list(iter_proper_submasks(mask))) == 2**3 - 2

    def test_supermask_count(self):
        mask = 0b00011  # m=2 in d=5
        assert len(list(iter_supermasks(mask, 5))) == 2**3
        assert len(list(iter_proper_supermasks(mask, 5))) == 2**3 - 1

    def test_submasks_are_subsets(self):
        mask = 0b101101
        for sub in iter_submasks(mask):
            assert is_subset(sub, mask)

    def test_supermasks_are_supersets(self):
        mask = 0b0101
        for sup in iter_supermasks(mask, 6):
            assert is_subset(mask, sup)

    def test_masks_at_level_counts(self):
        for d in range(1, 7):
            for m in range(0, d + 1):
                masks = masks_at_level(d, m)
                assert len(masks) == comb(d, m)
                assert all(popcount(mask) == m for mask in masks)

    def test_masks_at_level_rejects_bad_level(self):
        with pytest.raises(DimensionalityError):
            masks_at_level(4, 5)

    def test_all_masks_complete(self):
        assert sorted(all_masks(4)) == list(range(1, 16))

    @given(MASKS)
    def test_proper_submasks_exclude_self(self, mask):
        assert mask not in set(iter_proper_submasks(mask))

    @given(MASKS)
    def test_submask_walk_visits_every_subset(self, mask):
        dims = dims_of_mask(mask)
        expected = set()
        for size in range(1, len(dims) + 1):
            for combo in itertools.combinations(dims, size):
                expected.add(mask_of_dims(combo))
        assert set(iter_submasks(mask)) == expected


class TestSubspaceType:
    def test_from_dims_and_properties(self):
        s = Subspace.from_dims([0, 2], d=4)
        assert s.dims == (0, 2)
        assert s.dimensionality == 2
        assert len(s) == 2
        assert 2 in s and 1 not in s and 9 not in s
        assert list(s) == [0, 2]

    def test_from_dims_1based_matches_paper_notation(self):
        s = Subspace.from_dims_1based([1, 3], d=4)
        assert s.dims == (0, 2)
        assert s.notation() == "[1, 3]"

    def test_full(self):
        assert Subspace.full(3).dims == (0, 1, 2)

    def test_validation(self):
        with pytest.raises(DimensionalityError):
            Subspace(0, 4)  # empty
        with pytest.raises(DimensionalityError):
            Subspace(0b10000, 4)  # out of width
        with pytest.raises(DimensionalityError):
            Subspace(1, 0)

    def test_subset_superset(self):
        small = Subspace.from_dims([1], 4)
        big = Subspace.from_dims([1, 3], 4)
        assert small.is_subset_of(big)
        assert big.is_superset_of(small)
        assert not big.is_subset_of(small)

    def test_cross_space_operations_rejected(self):
        a = Subspace.from_dims([0], 3)
        b = Subspace.from_dims([0], 4)
        with pytest.raises(DimensionalityError):
            a.is_subset_of(b)
        with pytest.raises(DimensionalityError):
            a.union(b)

    def test_union_intersection(self):
        a = Subspace.from_dims([0, 1], 4)
        b = Subspace.from_dims([1, 2], 4)
        assert a.union(b).dims == (0, 1, 2)
        assert a.intersection(b).dims == (1,)
        disjoint = Subspace.from_dims([3], 4)
        assert a.intersection(disjoint) is None

    def test_subsets_supersets_iterators(self):
        s = Subspace.from_dims([0, 2], 3)
        assert sorted(x.dims for x in s.subsets()) == [(0,), (2,)]
        assert sorted(x.dims for x in s.supersets()) == [(0, 1, 2)]
        assert s.mask in {x.mask for x in s.subsets(proper=False)}

    def test_project(self):
        s = Subspace.from_dims([0, 2], 3)
        assert s.project([10.0, 20.0, 30.0]) == (10.0, 30.0)
        with pytest.raises(DimensionalityError):
            s.project([1.0, 2.0])

    def test_ordering_level_then_lex(self):
        d = 4
        subspaces = [Subspace(mask, d) for mask in all_masks(d)]
        ordered = sorted(subspaces)
        levels = [s.dimensionality for s in ordered]
        assert levels == sorted(levels)
        # Within a level, dims tuples are lexicographically sorted.
        for level in set(levels):
            group = [s.dims for s in ordered if s.dimensionality == level]
            assert group == sorted(group)

    def test_hashable_and_frozen(self):
        s = Subspace.from_dims([1], 3)
        assert s in {s}
        with pytest.raises(AttributeError):
            s.mask = 3  # type: ignore[misc]

    def test_repr_mentions_dims(self):
        assert "0, 2" in repr(Subspace.from_dims([0, 2], 4))

    @given(MASKS, MASKS)
    def test_subset_antisymmetry(self, a, b):
        if is_subset(a, b) and is_subset(b, a):
            assert a == b

    @given(MASKS, MASKS, MASKS)
    def test_subset_transitivity(self, a, b, c):
        if is_subset(a, b) and is_subset(b, c):
            assert is_subset(a, c)

    @settings(max_examples=50)
    @given(MASKS)
    def test_wrapper_agrees_with_primitives(self, mask):
        s = Subspace(mask, 8)
        assert s.dimensionality == popcount(mask)
        assert s.dims == dims_of_mask(mask)

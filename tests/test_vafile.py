"""VA-file backend: exact parity with the scan, bounds, growth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.index.linear import LinearScanIndex
from repro.index.vafile import VAFile


def _data(seed, n=300, d=6):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, d)) + generator.choice(
        [-5.0, 0.0, 5.0], size=(n, 1)
    )


class TestConstruction:
    @pytest.mark.parametrize("partitioning", ["equi_width", "equi_depth"])
    def test_boundaries_cover_data(self, partitioning):
        X = _data(0)
        va = VAFile(X, bits=4, partitioning=partitioning)
        assert va.cells == 16
        for dim in range(va.d):
            assert va.boundaries[dim][0] <= X[:, dim].min()
            assert va.boundaries[dim][-1] >= X[:, dim].max()
            assert np.all(np.diff(va.boundaries[dim]) >= 0)

    def test_codes_in_range(self):
        va = VAFile(_data(1), bits=3)
        assert va._approx.max() < 8

    def test_constant_column_safe(self):
        X = np.ones((50, 2))
        X[:, 1] = np.arange(50)
        va = VAFile(X, bits=4)
        indices, _ = va.knn(X[0], 3, (0, 1), exclude=0)
        assert len(indices) == 3

    def test_validation(self):
        X = _data(2)
        with pytest.raises(ConfigurationError):
            VAFile(X, bits=0)
        with pytest.raises(ConfigurationError):
            VAFile(X, partitioning="hilbert")
        with pytest.raises(DataShapeError):
            VAFile(np.zeros((0, 3)))

    def test_custom_metric_rejected(self):
        class WeirdMetric:
            name = "weird"

            def pairwise(self, X, q, dims):  # pragma: no cover
                return np.zeros(len(X))

            def point(self, a, b, dims):  # pragma: no cover
                return 0.0

            def mindist(self, q, lower, upper, dims):  # pragma: no cover
                return 0.0

        with pytest.raises(ConfigurationError):
            VAFile(_data(3), metric=WeirdMetric())

    def test_repr(self):
        assert "VAFile" in repr(VAFile(_data(4), bits=5))


class TestQueryParity:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev", "minkowski:3"])
    @pytest.mark.parametrize("partitioning", ["equi_width", "equi_depth"])
    def test_knn_parity_all_metrics(self, metric, partitioning):
        X = _data(5)
        va = VAFile(X, metric=metric, bits=5, partitioning=partitioning)
        scan = LinearScanIndex(X, metric=metric)
        for row in [0, 42, 123]:
            for dims in [(0,), (1, 4), (0, 2, 3, 5)]:
                vi, vd = va.knn(X[row], 7, dims, exclude=row)
                si, sd = scan.knn(X[row], 7, dims, exclude=row)
                assert list(vi) == list(si), (metric, dims, row)
                np.testing.assert_allclose(vd, sd)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 12), bits=st.integers(1, 8))
    def test_knn_parity_property(self, seed, k, bits):
        X = _data(seed, n=120, d=4)
        va = VAFile(X, bits=bits)
        scan = LinearScanIndex(X)
        generator = np.random.default_rng(seed + 1)
        size = int(generator.integers(1, 5))
        dims = tuple(sorted(generator.choice(4, size=size, replace=False)))
        row = int(generator.integers(0, 120))
        vi, _ = va.knn(X[row], k, dims, exclude=row)
        si, _ = scan.knn(X[row], k, dims, exclude=row)
        assert list(vi) == list(si)

    def test_range_parity(self):
        X = _data(9)
        va = VAFile(X, bits=5)
        scan = LinearScanIndex(X)
        for radius in [0.0, 0.5, 3.0, 50.0]:
            vr = va.range_query(X[7], radius, (0, 3), exclude=7)
            sr = scan.range_query(X[7], radius, (0, 3), exclude=7)
            assert sorted(vr) == sorted(sr)

    def test_duplicate_ties_deterministic(self):
        X = np.zeros((8, 2))
        va = VAFile(X, bits=2)
        indices, distances = va.knn(np.zeros(2), 4, (0, 1))
        assert list(indices) == [0, 1, 2, 3]
        np.testing.assert_array_equal(distances, 0.0)


class TestFiltering:
    def test_refines_fewer_than_all(self):
        """The whole point of the VA-file: far fewer exact distances than
        a full scan, with identical answers."""
        X = _data(11, n=2000, d=8)
        va = VAFile(X, bits=6)
        va.stats.reset()
        va.knn(X[0], 5, tuple(range(8)), exclude=0)
        assert va.stats.distance_computations < 0.25 * 2000
        assert 0 < va.candidate_fraction() < 0.25

    def test_more_bits_tighter_bounds(self):
        X = _data(13, n=1500, d=6)
        fractions = []
        for bits in (2, 4, 8):
            va = VAFile(X, bits=bits)
            va.knn(X[3], 5, (0, 1, 2, 3, 4, 5), exclude=3)
            fractions.append(va.candidate_fraction())
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_candidate_fraction_zero_before_queries(self):
        assert VAFile(_data(14), bits=4).candidate_fraction() == 0.0


class TestGrowth:
    def test_insert_preserves_parity(self):
        X = _data(15, n=150, d=4)
        va = VAFile(X, bits=5)
        generator = np.random.default_rng(99)
        new_points = generator.normal(size=(30, 4)) * 3.0  # some out of range
        for point in new_points:
            va.insert(point)
        assert va.size == 180
        full = np.vstack([X, new_points])
        scan = LinearScanIndex(full)
        for row in [0, 160, 179]:
            vi, _ = va.knn(full[row], 6, (0, 1, 2, 3), exclude=row)
            si, _ = scan.knn(full[row], 6, (0, 1, 2, 3), exclude=row)
            assert list(vi) == list(si)

    def test_insert_shape_checked(self):
        va = VAFile(_data(16), bits=4)
        with pytest.raises(DataShapeError):
            va.insert(np.zeros(3))


class TestValidationAtQueryTime:
    def test_k_and_dims_checked(self):
        X = _data(17, n=30)
        va = VAFile(X, bits=4)
        with pytest.raises(ConfigurationError):
            va.knn(X[0], 0, (0,))
        with pytest.raises(ConfigurationError):
            va.knn(X[0], 30, (0,), exclude=0)
        with pytest.raises(ConfigurationError):
            va.knn(X[0], 3, ())
        with pytest.raises(ConfigurationError):
            va.range_query(X[0], -1.0, (0,))
        with pytest.raises(DataShapeError):
            va.knn(np.zeros(2), 3, (0,))

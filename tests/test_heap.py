"""Bounded kNN max-heap: bound semantics and deterministic ties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.index.heap import KnnHeap


class TestBasics:
    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            KnnHeap(0)

    def test_bound_infinite_until_full(self):
        heap = KnnHeap(2)
        assert heap.bound() == float("inf")
        heap.offer(5.0, 1)
        assert heap.bound() == float("inf")
        heap.offer(3.0, 2)
        assert heap.bound() == 5.0
        assert heap.full

    def test_offer_replaces_worst(self):
        heap = KnnHeap(2)
        heap.offer(5.0, 1)
        heap.offer(3.0, 2)
        assert heap.offer(4.0, 3)  # replaces the 5.0
        assert heap.bound() == 4.0
        assert not heap.offer(9.0, 4)

    def test_items_sorted_by_distance_then_id(self):
        heap = KnnHeap(3)
        heap.offer(2.0, 9)
        heap.offer(1.0, 5)
        heap.offer(2.0, 3)
        assert heap.items() == [(5, 1.0), (3, 2.0), (9, 2.0)]

    def test_equal_distance_prefers_smaller_id(self):
        heap = KnnHeap(1)
        heap.offer(1.0, 7)
        assert heap.offer(1.0, 3)  # same distance, smaller id wins
        assert heap.items() == [(3, 1.0)]
        assert not heap.offer(1.0, 9)

    def test_len(self):
        heap = KnnHeap(4)
        heap.offer(1.0, 1)
        assert len(heap) == 1


@settings(max_examples=80)
@given(
    k=st.integers(1, 8),
    entries=st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 50)),
        min_size=0,
        max_size=40,
    ),
)
def test_heap_matches_sorted_reference(k, entries):
    """Property: the heap retains exactly the k smallest (distance, id)
    pairs, deduplicating nothing, ordered like the linear scan."""
    heap = KnnHeap(k)
    for distance, item in entries:
        heap.offer(distance, item)
    expected = sorted(((d, i) for d, i in entries))[:k]
    assert heap.items() == [(i, d) for d, i in expected]

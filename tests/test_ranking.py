"""Threshold-free normalised-OD ranking and dataset-wide mining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.miner import HOSMiner
from repro.core.od import ODEvaluator
from repro.core.ranking import top_n_outlying_subspaces
from repro.index.linear import LinearScanIndex


@pytest.fixture(scope="module")
def planted_evaluator():
    generator = np.random.default_rng(3)
    X = generator.normal(size=(200, 5))
    X[0, 1] += 7.0
    X[0, 3] += 7.0
    return ODEvaluator(LinearScanIndex(X), X[0], 4, exclude=0)


class TestRanking:
    def test_top_subspace_hits_planted_dims(self, planted_evaluator):
        ranking = top_n_outlying_subspaces(planted_evaluator, n=3)
        assert set(ranking[0].subspace.dims) <= {1, 3}

    def test_scores_descend(self, planted_evaluator):
        ranking = top_n_outlying_subspaces(planted_evaluator, n=10)
        scores = [entry.score for entry in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_raw_od_degenerates_to_full_space(self, planted_evaluator):
        ranking = top_n_outlying_subspaces(planted_evaluator, n=1, normalize="none")
        assert ranking[0].subspace.dimensionality == 5

    def test_sqrt_dim_normalisation_value(self, planted_evaluator):
        entry = top_n_outlying_subspaces(planted_evaluator, n=1)[0]
        expected = entry.od / np.sqrt(entry.subspace.dimensionality)
        assert entry.score == pytest.approx(expected)

    def test_dim_normalisation_value(self, planted_evaluator):
        entry = top_n_outlying_subspaces(planted_evaluator, n=1, normalize="dim")[0]
        assert entry.score == pytest.approx(entry.od / entry.subspace.dimensionality)

    def test_zscore_prefers_level_outliers(self, planted_evaluator):
        ranking = top_n_outlying_subspaces(planted_evaluator, n=5, normalize="zscore")
        # The planted pair should dominate its level's distribution.
        assert any(set(e.subspace.dims) == {1, 3} for e in ranking)

    def test_max_level_restricts(self, planted_evaluator):
        ranking = top_n_outlying_subspaces(planted_evaluator, n=50, max_level=2)
        assert all(entry.subspace.dimensionality <= 2 for entry in ranking)
        assert len(ranking) == 5 + 10  # C(5,1) + C(5,2)

    def test_deterministic(self, planted_evaluator):
        a = top_n_outlying_subspaces(planted_evaluator, n=8)
        b = top_n_outlying_subspaces(planted_evaluator, n=8)
        assert [e.subspace.mask for e in a] == [e.subspace.mask for e in b]

    def test_validation(self, planted_evaluator):
        with pytest.raises(ConfigurationError):
            top_n_outlying_subspaces(planted_evaluator, n=0)
        with pytest.raises(ConfigurationError):
            top_n_outlying_subspaces(planted_evaluator, n=3, normalize="log")
        with pytest.raises(ConfigurationError):
            top_n_outlying_subspaces(planted_evaluator, n=3, max_level=7)

    def test_repr(self, planted_evaluator):
        entry = top_n_outlying_subspaces(planted_evaluator, n=1)[0]
        assert "RankedSubspace" in repr(entry)


class TestDetectOutliers:
    @pytest.fixture(scope="class")
    def miner_and_truth(self):
        generator = np.random.default_rng(9)
        X = generator.normal(size=(300, 5))
        X[0, 0] += 10.0
        X[1, 2] += 9.0
        X[1, 4] += 9.0
        miner = HOSMiner(k=4, sample_size=3, threshold_quantile=0.99).fit(X)
        return miner, [0, 1]

    def test_planted_rows_detected_first(self, miner_and_truth):
        miner, truth = miner_and_truth
        detections = miner.detect_outliers()
        rows = [row for row, _ in detections]
        assert set(truth) <= set(rows)
        # The two planted rows have the largest full-space ODs.
        assert set(rows[:2]) == set(truth)

    def test_results_are_full_query_results(self, miner_and_truth):
        miner, _ = miner_and_truth
        for row, result in miner.detect_outliers():
            assert result.is_outlier
            assert result.minimal

    def test_max_results_truncates(self, miner_and_truth):
        miner, _ = miner_and_truth
        assert len(miner.detect_outliers(max_results=1)) == 1

    def test_max_results_validated(self, miner_and_truth):
        miner, _ = miner_and_truth
        with pytest.raises(ConfigurationError):
            miner.detect_outliers(max_results=0)

    def test_detection_consistent_with_flagging(self, miner_and_truth):
        """detect_outliers and per-row queries agree on who is an outlier."""
        miner, _ = miner_and_truth
        detected = {row for row, _ in miner.detect_outliers()}
        for row in range(0, 300, 37):
            assert (row in detected) == miner.query_row(row).is_outlier

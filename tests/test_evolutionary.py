"""The Aggarwal–Yu evolutionary comparator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.evolutionary import (
    EvolutionaryConfig,
    EvolutionarySubspaceSearch,
    brute_force_sparse_cubes,
)
from repro.baselines.grid import WILDCARD
from repro.core.exceptions import ConfigurationError, NotFittedError


def _easy_problem(seed=0, n=400):
    """The Aggarwal–Yu canonical scenario: two clusters in dims (0, 1)
    and one *cross-combination* point (dim 0 from one cluster, dim 1
    from the other). Each marginal range is well populated, the joint
    cell holds only the planted point — maximal negative sparsity.

    Note a merely *far* point would not work: with equi-depth ranges an
    extreme value shares its tail range with a third of the data, so its
    joint cell is as populated as independence predicts.
    """
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(n, 4)) * 0.5
    half = n // 2
    X[:half, 0] += 12.0
    X[:half, 1] += 12.0
    X[0, 0] = 12.0  # cluster-B coordinate ...
    X[0, 1] = 0.0   # ... paired with a cluster-A coordinate
    return X


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"phi": 1},
            {"target_dims": 0},
            {"population": 1},
            {"generations": 0},
            {"best_cubes": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"elite": 50, "population": 50},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EvolutionaryConfig(**kwargs)

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(ConfigurationError):
            EvolutionarySubspaceSearch(EvolutionaryConfig(), phi=3)

    def test_target_dims_checked_against_data(self):
        search = EvolutionarySubspaceSearch(target_dims=5)
        with pytest.raises(ConfigurationError):
            search.fit(np.zeros((20, 3)))


class TestGA:
    def test_finds_planted_outlier_on_easy_data(self):
        X = _easy_problem()
        search = EvolutionarySubspaceSearch(
            phi=3, target_dims=2, population=40, generations=25, best_cubes=10, seed=1
        ).fit(X)
        assert search.is_outlier(0)
        subspaces = search.subspaces_for_point(0)
        assert subspaces, "planted point should sit in some best cube"
        assert any(set(s.dims) & {0, 1} for s in subspaces)

    def test_matches_brute_force_on_tiny_problem(self):
        """With a generous budget on a tiny search space the GA must find
        the same sparsest value the oracle finds."""
        X = _easy_problem(seed=3, n=150)[:, :3]
        oracle = brute_force_sparse_cubes(X, phi=3, target_dims=2, best_cubes=1)
        search = EvolutionarySubspaceSearch(
            phi=3, target_dims=2, population=60, generations=40, best_cubes=1, seed=5
        ).fit(X)
        assert search.best_cubes_[0].sparsity == pytest.approx(
            oracle[0].sparsity, abs=1e-9
        )

    def test_deterministic_under_seed(self):
        X = _easy_problem(seed=9)
        a = EvolutionarySubspaceSearch(
            phi=3, target_dims=2, population=20, generations=10, seed=4
        ).fit(X)
        b = EvolutionarySubspaceSearch(
            phi=3, target_dims=2, population=20, generations=10, seed=4
        ).fit(X)
        assert [c.notation() for c in a.best_cubes_] == [
            c.notation() for c in b.best_cubes_
        ]

    def test_best_cubes_are_occupied_and_sorted(self):
        X = _easy_problem(seed=11)
        search = EvolutionarySubspaceSearch(
            phi=4, target_dims=2, population=30, generations=15, best_cubes=8, seed=0
        ).fit(X)
        sparsities = [cube.sparsity for cube in search.best_cubes_]
        assert sparsities == sorted(sparsities)
        assert all(cube.count > 0 for cube in search.best_cubes_)

    def test_history_tracks_generations(self):
        search = EvolutionarySubspaceSearch(
            phi=3, target_dims=2, population=10, generations=7, seed=0
        ).fit(_easy_problem(seed=13, n=100))
        assert len(search.history_) == 7

    def test_unfitted_access_raises(self):
        search = EvolutionarySubspaceSearch()
        with pytest.raises(NotFittedError):
            search.subspaces_for_point(0)
        with pytest.raises(NotFittedError):
            search.is_outlier(0)

    def test_repr_mentions_state(self):
        search = EvolutionarySubspaceSearch()
        assert "unfitted" in repr(search)


class TestOperators:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_random_solutions_have_exact_dimensionality(self, seed):
        search = EvolutionarySubspaceSearch(phi=4, target_dims=3)
        generator = np.random.default_rng(seed)
        solution = search._random_solution(generator, 8)
        assert (solution != WILDCARD).sum() == 3
        constrained = solution[solution != WILDCARD]
        assert constrained.min() >= 0 and constrained.max() < 4

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_crossover_repairs_dimensionality(self, seed):
        search = EvolutionarySubspaceSearch(phi=4, target_dims=3)
        generator = np.random.default_rng(seed)
        a = search._random_solution(generator, 8)
        b = search._random_solution(generator, 8)
        child = search._crossover(generator, a, b)
        assert (child != WILDCARD).sum() == 3

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_mutation_preserves_dimensionality(self, seed):
        search = EvolutionarySubspaceSearch(phi=4, target_dims=3, mutation_rate=1.0)
        generator = np.random.default_rng(seed)
        solution = search._random_solution(generator, 8)
        search._mutate(generator, solution, 4)
        assert (solution != WILDCARD).sum() == 3


class TestBruteForce:
    def test_enumerates_expected_count(self):
        X = np.random.default_rng(0).normal(size=(60, 3))
        cubes = brute_force_sparse_cubes(X, phi=2, target_dims=2, best_cubes=1000)
        # C(3,2) * 2^2 = 12 cubes, minus any empty ones.
        assert 1 <= len(cubes) <= 12
        sparsities = [cube.sparsity for cube in cubes]
        assert sparsities == sorted(sparsities)

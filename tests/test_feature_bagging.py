"""Feature-bagging ensemble (Lazarevic–Kumar comparator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.feature_bagging import FeatureBaggingConfig, FeatureBaggingDetector
from repro.core.exceptions import ConfigurationError, DataShapeError, NotFittedError


@pytest.fixture(scope="module")
def planted():
    generator = np.random.default_rng(44)
    X = generator.normal(size=(300, 8))
    X[0, 2] += 9.0
    X[0, 5] += 9.0
    return X


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"k": 0},
            {"combine": "mean"},
            {"score_quantile": 1.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FeatureBaggingConfig(**kwargs)

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(ConfigurationError):
            FeatureBaggingDetector(FeatureBaggingConfig(), rounds=3)


class TestDetection:
    def test_planted_outlier_ranks_top(self, planted):
        detector = FeatureBaggingDetector(rounds=12, k=10, seed=1).fit(planted)
        rows, scores = detector.top_n(5)
        assert rows[0] == 0
        assert list(scores) == sorted(scores, reverse=True)

    @pytest.mark.parametrize("combine", ["breadth", "cumulative"])
    def test_both_combiners_work(self, planted, combine):
        detector = FeatureBaggingDetector(rounds=8, k=10, combine=combine, seed=2)
        detector.fit(planted)
        rows, _ = detector.top_n(3)
        assert 0 in rows

    def test_sampled_subspace_sizes_in_paper_range(self, planted):
        detector = FeatureBaggingDetector(rounds=15, k=5, seed=3).fit(planted)
        for dims in detector.subspaces_:
            assert 4 <= len(dims) <= 7  # [d/2, d-1] for d=8

    def test_subspaces_for_point_hits_planted_dims(self, planted):
        detector = FeatureBaggingDetector(rounds=20, k=10, seed=4).fit(planted)
        answers = detector.subspaces_for_point(0)
        assert answers, "planted point should be extreme in some sampled subspace"
        assert any({2, 5} & set(s.dims) for s in answers)

    def test_deterministic_under_seed(self, planted):
        a = FeatureBaggingDetector(rounds=6, k=8, seed=7).fit(planted)
        b = FeatureBaggingDetector(rounds=6, k=8, seed=7).fit(planted)
        assert a.subspaces_ == b.subspaces_
        np.testing.assert_allclose(a.scores_, b.scores_)

    def test_unfitted_raises(self):
        detector = FeatureBaggingDetector()
        with pytest.raises(NotFittedError):
            detector.top_n(3)
        with pytest.raises(NotFittedError):
            detector.subspaces_for_point(0)

    def test_shape_validation(self):
        with pytest.raises(DataShapeError):
            FeatureBaggingDetector(k=10).fit(np.zeros((5, 3)))

    def test_top_n_validation(self, planted):
        detector = FeatureBaggingDetector(rounds=3, k=5, seed=0).fit(planted)
        with pytest.raises(ConfigurationError):
            detector.top_n(0)

    def test_repr(self):
        assert "unfitted" in repr(FeatureBaggingDetector())

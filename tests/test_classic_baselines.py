"""Classic "space → outliers" baselines: kNN-distance, DB(π, D), LOF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.db_outlier import db_outliers, db_outlying_subspaces, is_db_outlier
from repro.baselines.knn_outlier import knn_distance_scores, top_n_knn_outliers
from repro.baselines.lof import lof_scores, top_n_lof_outliers
from repro.core.exceptions import ConfigurationError
from repro.core.subspace import is_subset


@pytest.fixture(scope="module")
def blob_with_outlier():
    generator = np.random.default_rng(21)
    X = generator.normal(size=(150, 3))
    X[0] = [12.0, 12.0, 12.0]
    return X


class TestKnnOutlier:
    def test_kth_score_matches_manual(self, blob_with_outlier):
        X = blob_with_outlier
        scores = knn_distance_scores(X, k=3)
        distances = np.sqrt(((X - X[5]) ** 2).sum(axis=1))
        distances[5] = np.inf
        assert scores[5] == pytest.approx(np.sort(distances)[2])

    def test_sum_score_is_od(self, blob_with_outlier):
        """aggregate='sum' must equal HOS-Miner's OD in the same space."""
        from repro.core.od import outlying_degree
        from repro.index.linear import LinearScanIndex

        X = blob_with_outlier
        scores = knn_distance_scores(X, k=4, aggregate="sum")
        backend = LinearScanIndex(X)
        assert scores[7] == pytest.approx(
            outlying_degree(backend, X[7], 4, (0, 1, 2), exclude=7)
        )

    def test_planted_outlier_ranks_first(self, blob_with_outlier):
        result = top_n_knn_outliers(blob_with_outlier, k=3, n_outliers=5)
        assert result.rows[0] == 0
        assert 0 in result
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_subspace_restriction(self, blob_with_outlier):
        X = blob_with_outlier.copy()
        X[0] = 0.0
        X[0, 2] = 25.0  # outlying only in dim 2
        in_dim2 = top_n_knn_outliers(X, k=3, n_outliers=1, dims=(2,))
        in_dims01 = top_n_knn_outliers(X, k=3, n_outliers=1, dims=(0, 1))
        assert in_dim2.rows[0] == 0
        assert in_dims01.rows[0] != 0

    def test_validation(self, blob_with_outlier):
        with pytest.raises(ConfigurationError):
            knn_distance_scores(blob_with_outlier, k=0)
        with pytest.raises(ConfigurationError):
            knn_distance_scores(blob_with_outlier, k=3, aggregate="median")
        with pytest.raises(ConfigurationError):
            top_n_knn_outliers(blob_with_outlier, k=3, n_outliers=0)


class TestDBOutlier:
    def test_planted_outlier_detected(self, blob_with_outlier):
        flags = db_outliers(blob_with_outlier, pi=0.95, radius=5.0)
        assert flags[0]
        assert flags.sum() < 10  # inliers mostly clean

    def test_is_db_outlier_agrees_with_bulk(self, blob_with_outlier):
        flags = db_outliers(blob_with_outlier, pi=0.9, radius=3.0)
        for row in [0, 3, 50]:
            assert is_db_outlier(blob_with_outlier, row, 0.9, 3.0) == flags[row]

    def test_validation(self, blob_with_outlier):
        with pytest.raises(ConfigurationError):
            db_outliers(blob_with_outlier, pi=1.0, radius=1.0)
        with pytest.raises(ConfigurationError):
            db_outliers(blob_with_outlier, pi=0.5, radius=-1.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_db_subspace_answer_is_upward_closed(self, seed):
        """The DB(π, D) criterion is monotone too — its subspace answer
        set must be upward closed, corroborating the paper's properties
        on an independent outlier definition."""
        generator = np.random.default_rng(seed)
        X = generator.normal(size=(60, 4))
        X[0, :2] += 7.0
        subspaces = db_outlying_subspaces(X, 0, pi=0.9, radius=2.0)
        masks = {s.mask for s in subspaces}
        for mask in masks:
            for other in masks:
                pass  # closure checked below
        for mask in list(masks):
            for sup in range(1, 16):
                if is_subset(mask, sup) and sup != mask:
                    assert sup in masks


class TestLOF:
    def test_uniform_blob_scores_near_one(self):
        X = np.random.default_rng(3).uniform(size=(300, 2))
        scores = lof_scores(X, k=10)
        interior = scores[(X[:, 0] > 0.2) & (X[:, 0] < 0.8) & (X[:, 1] > 0.2) & (X[:, 1] < 0.8)]
        assert np.median(interior) == pytest.approx(1.0, abs=0.1)

    def test_planted_outlier_scores_high(self, blob_with_outlier):
        scores = lof_scores(blob_with_outlier, k=10)
        assert scores[0] > 2.0
        assert scores[0] == scores.max()

    def test_top_n(self, blob_with_outlier):
        rows, scores = top_n_lof_outliers(blob_with_outlier, k=10, n_outliers=3)
        assert rows[0] == 0
        assert list(scores) == sorted(scores, reverse=True)

    def test_duplicates_get_lof_one(self):
        X = np.zeros((20, 2))
        X[10:] = 1.0
        scores = lof_scores(X, k=3)
        np.testing.assert_allclose(scores, 1.0)

    def test_subspace_restriction_changes_answer(self):
        generator = np.random.default_rng(8)
        X = generator.normal(size=(200, 3))
        X[0, 2] = 20.0
        full = lof_scores(X, k=8)
        masked = lof_scores(X, k=8, dims=(0, 1))
        assert full[0] > 3.0
        assert masked[0] < 2.0

    def test_validation(self, blob_with_outlier):
        with pytest.raises(ConfigurationError):
            lof_scores(blob_with_outlier, k=0)
        with pytest.raises(ConfigurationError):
            top_n_lof_outliers(blob_with_outlier, k=3, n_outliers=0)

"""The mixed-precision GEMM tier, the top-k kernels, and their plumbing.

Contract under test (the PR 7 tentpole): with ``precision="float32"``
the level-wide GEMM runs in float32 but every answer set stays
**bit-identical** to the float64 kernel, because values inside the
rigorous rounding band of :func:`repro.core.precision.reverify_rtol`
are re-verified in exact float64 before any threshold decision. The
satellites ride along: the interchangeable top-k selection kernels
(value-identical, silent numba fallback), the column-blocked
single-query GEMM (bounded intermediate, bit-identical merge), the
float32 overflow fallback, and the schema-v2 bench counters
(percentiles, peak high-water marks, ``reverify_fraction``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.index.linear as linear_module
from repro.bench.runner import run_spec
from repro.bench.snapshot import SnapshotError, validate_snapshot
from repro.bench.spec import ExperimentSpec
from repro.core.exceptions import ConfigurationError
from repro.core.miner import HOSMiner
from repro.core.od import GEMM_REVERIFY_RTOL, ODEvaluator
from repro.core.precision import (
    FLOAT32_UNIT_ROUNDOFF,
    PRECISIONS,
    resolve_precision,
    reverify_rtol,
)
from repro.data.synthetic import make_planted_outliers
from repro.index.base import components32_from
from repro.index.linear import LinearScanIndex
from repro.index.topk import (
    TOPK_KERNELS,
    numba_available,
    resolve_topk_kernel,
    topk_prefix,
)
from repro.index.vafile import VAFile


@pytest.fixture
def rng():
    return np.random.default_rng(77)


def _random_masks(generator, d, n_masks):
    return [
        np.sort(
            generator.choice(d, size=int(generator.integers(1, d + 1)), replace=False)
        ).astype(np.intp)
        for _ in range(n_masks)
    ]


# ----------------------------------------------------------------------
# Knob resolution and the error bound
# ----------------------------------------------------------------------
class TestResolvePrecision:
    def test_auto_under_gemm_is_float32(self):
        assert resolve_precision("auto", "gemm") == "float32"

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_non_gemm_kernels_are_inert(self, precision):
        # float32 under the exact kernel is not an error: the exact
        # kernel IS the float64 reference (HOSMINER_PRECISION=float32
        # CI runs of exact-kernel configurations must stay valid).
        assert resolve_precision(precision, "exact") == "float64"

    def test_explicit_tiers_under_gemm(self):
        assert resolve_precision("float64", "gemm") == "float64"
        assert resolve_precision("float32", "gemm") == "float32"

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigurationError, match="precision"):
            resolve_precision("float16", "gemm")

    def test_config_knob_validated(self):
        with pytest.raises(ConfigurationError, match="precision"):
            HOSMiner(precision="double")
        with pytest.raises(ConfigurationError, match="topk_kernel"):
            HOSMiner(topk_kernel="quickselect")


class TestReverifyRtol:
    def test_float64_band_is_legacy(self):
        assert reverify_rtol("float64", 8) == GEMM_REVERIFY_RTOL
        assert reverify_rtol("auto", 8) == GEMM_REVERIFY_RTOL

    def test_band_grows_with_d_and_dominates_float64(self):
        widths = [reverify_rtol("float32", d) for d in (1, 4, 16, 64, 1024)]
        assert widths == sorted(widths)
        assert all(w >= GEMM_REVERIFY_RTOL for w in widths)
        # The band must dominate the raw per-sum bound e = (1+u)(1+γ_d)−1.
        u = FLOAT32_UNIT_ROUNDOFF
        for d, width in zip((1, 4, 16, 64, 1024), widths):
            gamma = d * u / (1 - d * u)
            assert width > (1 + u) * (1 + gamma) - 1

    def test_invalid_d_rejected(self):
        with pytest.raises(ConfigurationError):
            reverify_rtol("float32", 0)
        with pytest.raises(ConfigurationError):
            reverify_rtol("float32", 10**7)  # d*u >= 0.5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**20), d=st.integers(2, 24), k=st.integers(1, 6))
    def test_bound_covers_observed_error(self, seed, d, k):
        """The rigorous band covers the float32 kernel's actual relative
        error on random data — the property the bit-identity proof
        stands on."""
        generator = np.random.default_rng(seed)
        X = generator.normal(size=(150, d))
        query = generator.normal(size=d)
        backend = LinearScanIndex(X)
        masks = _random_masks(generator, d, 12)
        components = backend.distance_components(query)
        exact = backend.knn_distance_sums(
            query, k, masks, components=components, kernel="gemm"
        )
        f32 = backend.knn_distance_sums(
            query,
            k,
            masks,
            components=components,
            kernel="gemm",
            precision="float32",
        )
        rel = np.abs(f32 - exact) / np.maximum(np.abs(exact), 1e-300)
        assert float(rel.max()) < reverify_rtol("float32", d)


# ----------------------------------------------------------------------
# The float32 component cache
# ----------------------------------------------------------------------
class TestComponents32:
    def test_layout_and_values(self, rng):
        components = rng.uniform(size=(50, 6))
        c32 = components32_from(components)
        assert c32.shape == (6, 50)
        assert c32.dtype == np.float32
        assert c32.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(c32, components.T.astype(np.float32))

    def test_overflow_returns_none(self):
        components = np.array([[1.0, 1e300], [2.0, 3.0]])
        assert components32_from(components) is None

    def test_none_passthrough(self):
        assert components32_from(None) is None

    def test_overflow_falls_back_to_float64_silently(self, rng):
        """Cast overflow downgrades the tier, never the answers."""
        X = rng.normal(size=(60, 4))
        X[7] = 1e300  # squared components overflow float32 (and float64->inf)
        backend = LinearScanIndex(X)
        query = rng.normal(size=4)
        masks = _random_masks(rng, 4, 8)
        exact = backend.knn_distance_sums(query, 3, masks, kernel="gemm")
        f32 = backend.knn_distance_sums(
            query, 3, masks, kernel="gemm", precision="float32"
        )
        np.testing.assert_array_equal(f32, exact)


# ----------------------------------------------------------------------
# Top-k selection kernels
# ----------------------------------------------------------------------
class TestTopkKernels:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        m=st.integers(1, 8),
        n=st.integers(1, 3000),
        k=st.integers(1, 10),
        dtype=st.sampled_from([np.float64, np.float32]),
        ties=st.booleans(),
    )
    def test_all_kernels_value_identical(self, seed, m, n, k, dtype, ties):
        generator = np.random.default_rng(seed)
        k = min(k, n)
        S = generator.normal(size=(m, n)).astype(dtype)
        if ties and n >= 4:
            S[:, : n // 2] = np.round(S[:, : n // 2])  # mass-produce ties
            S[:, -1] = np.inf  # excluded-self sentinel
        reference = np.sort(S, axis=1)[:, :k]
        for kernel in ("partition", "filter", "numba"):
            got = topk_prefix(S.copy(), k, kernel)
            np.testing.assert_array_equal(got, reference)

    def test_strided_input(self, rng):
        """The filter kernel's as_strided view must respect the source
        strides — a column-sliced (non-contiguous) block is legal input."""
        wide = rng.normal(size=(4, 8192)).astype(np.float32)
        S = wide[:, ::2]
        reference = np.sort(S, axis=1)[:, :5]
        for kernel in ("partition", "filter", "numba"):
            np.testing.assert_array_equal(
                topk_prefix(S.copy(), 5, kernel), reference
            )

    def test_resolution_per_dtype(self):
        if numba_available():  # pragma: no cover - numba CI job
            assert resolve_topk_kernel("auto", np.dtype(np.float32)) == "numba"
            assert resolve_topk_kernel("numba", np.dtype(np.float64)) == "numba"
        else:
            # "filter" for float32 blocks; "partition" keeps the float64
            # reference byte-stable.
            assert resolve_topk_kernel("auto", np.dtype(np.float32)) == "filter"
            assert resolve_topk_kernel("auto", np.dtype(np.float64)) == "partition"
            # An explicit "numba" without numba falls back silently.
            assert resolve_topk_kernel("numba", np.dtype(np.float32)) == "filter"
            assert resolve_topk_kernel("numba", np.dtype(np.float64)) == "partition"
        assert resolve_topk_kernel("partition", np.dtype(np.float32)) == "partition"
        assert resolve_topk_kernel("filter", np.dtype(np.float64)) == "filter"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="topk_kernel"):
            resolve_topk_kernel("heap")

    @pytest.mark.parametrize("knob", TOPK_KERNELS)
    def test_backend_knob_end_to_end(self, rng, knob):
        X = rng.normal(size=(400, 6))
        query = rng.normal(size=6)
        masks = _random_masks(rng, 6, 10)
        reference = LinearScanIndex(X).knn_distance_sums(query, 4, masks, kernel="gemm")
        backend = LinearScanIndex(X, topk_kernel=knob)
        got = backend.knn_distance_sums(query, 4, masks, kernel="gemm")
        np.testing.assert_array_equal(got, reference)

    def test_backend_rejects_unknown_knob(self, rng):
        with pytest.raises(ConfigurationError, match="topk_kernel"):
            LinearScanIndex(rng.normal(size=(10, 2)), topk_kernel="heap")


# ----------------------------------------------------------------------
# Column blocking: bounded intermediate, bit-identical merge
# ----------------------------------------------------------------------
class TestBlockedGemm:
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_blocked_bit_identical_and_bounded(self, rng, precision, monkeypatch):
        X = rng.normal(size=(3000, 7))
        query = rng.normal(size=7)
        masks = _random_masks(rng, 7, 24)
        backend = LinearScanIndex(X)
        unblocked = backend.knn_distance_sums(
            query, 5, masks, exclude=11, kernel="gemm", precision=precision
        )
        ceiling = 32 * 2**10  # 32 KiB: forces many column blocks
        monkeypatch.setattr(linear_module, "BATCH_CHUNK_BYTES", ceiling)
        blocked_backend = LinearScanIndex(X)
        blocked = blocked_backend.knn_distance_sums(
            query, 5, masks, exclude=11, kernel="gemm", precision=precision
        )
        np.testing.assert_array_equal(blocked, unblocked)
        peak = blocked_backend.stats.snapshot()["peak_intermediate_bytes"]
        itemsize = 4 if precision == "float32" else 8
        # block = max(k, ceiling // (m * itemsize)) — the k floor is the
        # only way past the budget, and these cells are far above it.
        assert peak <= max(ceiling, len(masks) * 5 * itemsize)

    def test_float32_blocks_twice_as_wide(self, rng, monkeypatch):
        """The chunk budget is per-dtype bytes, so float32 fits twice the
        columns — same footprint, half the block count."""
        X = rng.normal(size=(2000, 5))
        query = rng.normal(size=5)
        masks = _random_masks(rng, 5, 16)
        monkeypatch.setattr(linear_module, "BATCH_CHUNK_BYTES", 64 * 2**10)
        m, itemsize64, itemsize32 = len(masks), 8, 4
        block64 = max(5, 64 * 2**10 // (m * itemsize64))
        block32 = max(5, 64 * 2**10 // (m * itemsize32))
        assert block32 == 2 * block64
        backend = LinearScanIndex(X)
        f64 = backend.knn_distance_sums(query, 3, masks, kernel="gemm")
        f32 = backend.knn_distance_sums(
            query, 3, masks, kernel="gemm", precision="float32"
        )
        np.testing.assert_allclose(f32, f64, rtol=reverify_rtol("float32", 5))


# ----------------------------------------------------------------------
# Answer-set identity across the precision tiers (the tentpole contract)
# ----------------------------------------------------------------------
class TestAnswerSetIdentity:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_miner_answer_sets_bit_identical(self, seed):
        dataset = make_planted_outliers(
            n=260, d=6, n_outliers=3, subspace_dims=2, displacement=8.5, seed=seed
        )
        kwargs = dict(k=4, sample_size=5, threshold_quantile=0.95, kernel="gemm")
        f64 = HOSMiner(precision="float64", **kwargs).fit(dataset.X)
        f32 = HOSMiner(precision="float32", **kwargs).fit(dataset.X)
        assert f64.precision_ == "float64" and f32.precision_ == "float32"
        # Calibration uses the exact kernel per point, so the threshold
        # is tier-independent — same T, same lattice decisions to match.
        assert f32.threshold_ == f64.threshold_
        targets = list(range(20)) + [dataset.X[4] + 0.25]
        for target in targets:
            a = f64.query(target)
            b = f32.query(target)
            assert a.minimal == b.minimal
            assert a.total_outlying == b.total_outlying
            assert a.is_outlier == b.is_outlier

    def test_auto_resolves_to_float32_under_gemm(self):
        dataset = make_planted_outliers(n=150, d=5, n_outliers=2, seed=2)
        miner = HOSMiner(k=3, sample_size=3, kernel="gemm", precision="auto").fit(
            dataset.X
        )
        assert miner.precision_ == "float32"
        exact = HOSMiner(k=3, sample_size=3, kernel="exact", precision="auto").fit(
            dataset.X
        )
        assert exact.precision_ == "float64"

    def test_adversarial_threshold_reverified(self, rng):
        """A threshold placed exactly on an OD value maximises the
        chance that the float32 value lands on the wrong side; the band
        re-verifies it exactly, so the decision matches float64."""
        from repro.core.subspace import mask_of_dims

        X = rng.normal(size=(140, 6))
        backend = LinearScanIndex(X)
        exact_eval = ODEvaluator(backend, X[0], 3, exclude=0, kernel="exact")
        bitmasks = [
            mask_of_dims(tuple(int(i) for i in dims), 6)
            for dims in _random_masks(rng, 6, 10)
        ]
        for planted in bitmasks:
            threshold = exact_eval.od_many([planted])[planted]
            f32_eval = ODEvaluator(
                backend, X[0], 3, exclude=0, kernel="gemm", precision="float32"
            )
            values = f32_eval.od_many(bitmasks, threshold=threshold)
            exact_values = exact_eval.od_many(bitmasks)
            for mask in bitmasks:
                assert (values[mask] >= threshold) == (
                    exact_values[mask] >= threshold
                )
            assert f32_eval.reverifications >= 1  # the planted hit is in-band

    def test_reverification_counter_surfaces_in_search_stats(self):
        dataset = make_planted_outliers(n=200, d=5, n_outliers=2, seed=11)
        miner = HOSMiner(
            k=3, sample_size=4, kernel="gemm", precision="float32"
        ).fit(dataset.X)
        outcome = miner.query(0)
        stats = outcome.stats.as_dict()
        assert "reverified" in stats
        assert stats["reverified"] >= 0


# ----------------------------------------------------------------------
# VA-file: the float32 tier only sharpens the filter, never the answers
# ----------------------------------------------------------------------
class TestVAFilePrecision:
    def test_float32_filter_bit_identical(self, rng):
        X = rng.normal(size=(220, 5))
        va = VAFile(X)
        query = rng.normal(size=5)
        masks = _random_masks(rng, 5, 12)
        exact = va.knn_distance_sums(query, 4, masks, exclude=7, kernel="exact")
        f32 = va.knn_distance_sums(
            query, 4, masks, exclude=7, kernel="gemm", precision="float32"
        )
        np.testing.assert_array_equal(f32, exact)

    def test_pathological_magnitudes_stay_exact(self, rng):
        """Components that overflow float32 (and products that overflow
        float64) must degrade the *filter*, not the answers: non-finite
        bounds are kept as candidates and refined exactly."""
        X = rng.normal(size=(90, 4))
        X[3] = 1e300
        va = VAFile(X)
        query = rng.normal(size=4)
        masks = _random_masks(rng, 4, 8)
        exact = va.knn_distance_sums(query, 3, masks, kernel="exact")
        for precision in ("float64", "float32"):
            got = va.knn_distance_sums(
                query, 3, masks, kernel="gemm", precision=precision
            )
            np.testing.assert_array_equal(got, exact)


# ----------------------------------------------------------------------
# Batch engine under the float32 tier
# ----------------------------------------------------------------------
class TestBatchPrecision:
    def test_batched_float32_matches_sequential_float64(self):
        """Decisions are bit-identical across tiers; raw OD values are
        bit-identical within a tier (batch vs sequential float32)."""
        dataset = make_planted_outliers(n=240, d=6, n_outliers=3, seed=29)
        kwargs = dict(k=4, sample_size=5, threshold_quantile=0.95, kernel="gemm")
        reference = HOSMiner(precision="float64", **kwargs).fit(dataset.X)
        miner = HOSMiner(precision="float32", **kwargs).fit(dataset.X)
        targets = list(range(12)) + [dataset.X[8] + 0.2]
        f64_sequential = [reference.query(t) for t in targets]
        f32_sequential = [miner.query(t) for t in targets]
        batch = miner.query_batch(targets)
        for a, s, b in zip(f64_sequential, f32_sequential, batch.results):
            assert a.minimal == b.minimal
            assert a.total_outlying == b.total_outlying
            assert s.od_values == b.od_values  # exact float equality, same tier

    def test_strided_targets(self):
        """Non-contiguous query rows (a transposed/sliced view) flow
        through the float32 cast without copy-order surprises."""
        dataset = make_planted_outliers(n=160, d=5, n_outliers=2, seed=31)
        miner = HOSMiner(
            k=3, sample_size=3, kernel="gemm", precision="float32"
        ).fit(dataset.X)
        block = np.asfortranarray(dataset.X[:6])
        strided = block[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        batch = miner.query_batch(list(strided))
        for row, result in zip(strided, batch.results):
            expected = miner.query(np.ascontiguousarray(row))
            assert result.minimal == expected.minimal
            assert result.od_values == expected.od_values


# ----------------------------------------------------------------------
# Bench schema v2: percentiles, peak counters, reverify_fraction
# ----------------------------------------------------------------------
def _counting_spec():
    def _run(ctx, scale: int) -> dict:
        return {
            "scale": scale,
            "value": float(scale),
            "_counters": {
                "gemm_masks": 10 * scale,
                "reverified_masks": scale,
                "peak_intermediate_bytes": 1000 * scale,
            },
        }

    return ExperimentSpec(
        name="tiny",
        title="schema fixture",
        grid={"scale": (2,)},
        smoke={"scale": (2,)},
        run=_run,
        columns=["scale", "value"],
        expectation="fixture",
        repeats=4,
    )


class TestSnapshotSchemaV2:
    def test_percentiles_and_reverify_fraction_stamped(self):
        result = run_spec(_counting_spec(), tier="smoke")
        record = result.conditions[0]
        assert record.wall_time_p50_s >= record.wall_time_s  # min <= p50
        assert record.wall_time_p99_s >= record.wall_time_p50_s
        assert record.reverify_fraction == pytest.approx(0.1)
        snapshot = result.to_snapshot()
        assert snapshot["schema_version"] == 2
        condition = snapshot["conditions"][0]
        assert condition["wall_time_p50_s"] == record.wall_time_p50_s
        assert condition["wall_time_p99_s"] == record.wall_time_p99_s
        assert condition["reverify_fraction"] == pytest.approx(0.1)
        validate_snapshot(snapshot)

    def test_peak_counters_aggregate_by_max(self):
        def _run(ctx, scale: int):
            # Two rows: sums must add, peaks must keep the high-water mark.
            return [
                {"scale": scale, "value": 1.0, "_counters": {
                    "gemm_masks": 5, "peak_intermediate_bytes": 700}},
                {"scale": scale, "value": 2.0, "_counters": {
                    "gemm_masks": 7, "peak_intermediate_bytes": 300}},
            ]

        spec = ExperimentSpec(
            name="tiny2",
            title="peak fixture",
            grid={"scale": (1,)},
            smoke={"scale": (1,)},
            run=_run,
            columns=["scale", "value"],
            expectation="fixture",
        )
        record = run_spec(spec, tier="smoke").conditions[0]
        assert record.counters["gemm_masks"] == 12
        assert record.counters["peak_intermediate_bytes"] == 700
        # gemm masks ran but none needed re-verification: 0.0, not None.
        assert record.reverify_fraction == 0.0

    def test_reverify_fraction_zero_and_none(self):
        spec = _counting_spec()
        record = run_spec(spec, tier="smoke").conditions[0]
        assert record.reverify_fraction == pytest.approx(0.1)
        no_gemm = type(record)(
            params={}, param_hash="x", rows=[], wall_time_s=0.0,
            cpu_time_s=0.0, repeats=1, counters={"distance_computations": 3},
        )
        assert no_gemm.reverify_fraction is None
        zero = type(record)(
            params={}, param_hash="x", rows=[], wall_time_s=0.0,
            cpu_time_s=0.0, repeats=1, counters={"gemm_masks": 4},
        )
        assert zero.reverify_fraction == 0.0

    def test_validate_accepts_v1_and_v2_rejects_v3(self):
        base = {
            "schema_version": 1,
            "experiment": "e13",
            "tier": "smoke",
            "metadata": {},
            "conditions": [{"params": {}, "param_hash": "a", "rows": []}],
        }
        validate_snapshot(base)
        validate_snapshot({**base, "schema_version": 2})
        with pytest.raises(SnapshotError, match="schema_version"):
            validate_snapshot({**base, "schema_version": 3})

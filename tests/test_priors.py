"""Pruning-prior conventions from Section 3.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DimensionalityError
from repro.core.priors import PruningPriors


class TestUniform:
    def test_interior_levels_are_half_half(self):
        priors = PruningPriors.uniform(6)
        for m in range(2, 6):
            assert priors.at(m) == (0.5, 0.5)

    def test_boundary_conventions(self):
        """p_up(1)=1, p_down(1)=0; p_up(d)=0, p_down(d)=1 — the paper's
        sampling-point initialisation."""
        priors = PruningPriors.uniform(6)
        assert priors.at(1) == (1.0, 0.0)
        assert priors.at(6) == (0.0, 1.0)

    def test_d1_degenerate_space(self):
        priors = PruningPriors.uniform(1)
        assert priors.at(1) == (1.0, 0.0)

    def test_arrays_are_frozen(self):
        priors = PruningPriors.uniform(4)
        with pytest.raises(ValueError):
            priors.p_up[2] = 0.9


class TestValidation:
    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            PruningPriors(3, np.zeros(3), np.zeros(4))

    def test_probability_range_checked(self):
        bad = np.zeros(5)
        bad[2] = 1.5
        with pytest.raises(ConfigurationError):
            PruningPriors(4, bad, np.zeros(5))

    def test_level_bounds_checked(self):
        priors = PruningPriors.uniform(4)
        with pytest.raises(DimensionalityError):
            priors.at(0)
        with pytest.raises(DimensionalityError):
            priors.at(5)

    def test_d_checked(self):
        with pytest.raises(DimensionalityError):
            PruningPriors(0, np.zeros(1), np.zeros(1))


class TestFromLevelValues:
    def test_builds_sparse_dicts(self):
        priors = PruningPriors.from_level_values(
            4, {1: 1.0, 2: 0.25}, {3: 0.75, 4: 1.0}
        )
        assert priors.at(2) == (0.25, 0.0)
        assert priors.at(3) == (0.0, 0.75)

"""Batched multi-query engine: losslessness, sharing, and plumbing.

The batched path must be *indistinguishable* from the sequential one in
its answers — element-wise identical results, including exact OD values
and tie order — while provably doing less work (shared-cache replays,
duplicate coalescing). These tests pin both halves of that contract,
plus the index-layer batch kernels and the up-front validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataShapeError
from repro.core.miner import HOSMiner
from repro.core.od import ODEvaluator, SharedODCache
from repro.core.result import BatchResult
from repro.data.synthetic import make_planted_outliers
from repro.index import LinearScanIndex, RStarTree, VAFile, XTree


@pytest.fixture(scope="module")
def dataset():
    return make_planted_outliers(
        n=300, d=6, n_outliers=3, subspace_dims=2, displacement=9.0, seed=23
    )


@pytest.fixture(scope="module")
def miner(dataset) -> HOSMiner:
    return HOSMiner(k=4, sample_size=6, threshold_quantile=0.95).fit(dataset.X)


def assert_results_identical(sequential, batched):
    """Element-wise identity, down to exact OD floats."""
    assert len(sequential) == len(batched)
    for a, b in zip(sequential, batched):
        assert a.minimal == b.minimal
        assert a.total_outlying == b.total_outlying
        assert a.threshold == b.threshold
        assert a.od_values == b.od_values  # exact float equality
        assert a.stats.od_evaluations == b.stats.od_evaluations
        assert a.stats.level_schedule == b.stats.level_schedule


# ----------------------------------------------------------------------
# Index layer: knn_batch
# ----------------------------------------------------------------------
class TestKnnBatch:
    @pytest.mark.parametrize("backend_cls", [LinearScanIndex, VAFile, RStarTree, XTree])
    def test_matches_sequential_knn(self, backend_cls, rng):
        X = rng.normal(size=(120, 5))
        backend = backend_cls(X)
        queries = rng.normal(size=(9, 5))
        excludes = [None, 3, None, 7, None, 0, None, None, 119]
        for dims in [(0,), (1, 3), (0, 2, 4), (0, 1, 2, 3, 4)]:
            batched = backend.knn_batch(queries, 4, dims, excludes=excludes)
            for query, exclude, (indices, distances) in zip(queries, excludes, batched):
                seq_indices, seq_distances = backend.knn(query, 4, dims, exclude=exclude)
                np.testing.assert_array_equal(indices, seq_indices)
                np.testing.assert_array_equal(distances, seq_distances)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev", "minkowski:3"])
    def test_linear_metrics_bit_identical(self, metric, rng):
        X = rng.normal(size=(80, 4))
        backend = LinearScanIndex(X, metric=metric)
        queries = rng.normal(size=(6, 4))
        batched = backend.knn_batch(queries, 3, (0, 2, 3))
        for query, (indices, distances) in zip(queries, batched):
            seq_indices, seq_distances = backend.knn(query, 3, (0, 2, 3))
            np.testing.assert_array_equal(indices, seq_indices)
            np.testing.assert_array_equal(distances, seq_distances)

    def test_empty_batch(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 3)))
        assert backend.knn_batch(np.empty((0, 3)), 2, (0, 1)) == []

    def test_validates_shapes_and_excludes(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 3)))
        with pytest.raises(DataShapeError, match=r"\(m, 3\)"):
            backend.knn_batch(rng.normal(size=(4, 2)), 2, (0, 1))
        with pytest.raises(ConfigurationError, match="exclusions"):
            backend.knn_batch(rng.normal(size=(4, 3)), 2, (0, 1), excludes=[None])
        with pytest.raises(ConfigurationError, match="out of range"):
            backend.knn_batch(rng.normal(size=(1, 3)), 2, (0, 1), excludes=[99])


class TestKnnDistanceSums:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev", "minkowski:3"])
    @pytest.mark.parametrize("use_components", [False, True])
    def test_matches_knn_sum(self, metric, use_components, rng):
        X = rng.normal(size=(100, 5))
        backend = LinearScanIndex(X, metric=metric)
        query = rng.normal(size=5)
        components = backend.distance_components(query) if use_components else None
        dims_list = [(0, 1), (1, 4), (2, 3)]
        sums = backend.knn_distance_sums(
            query, 4, dims_list, exclude=17, components=components
        )
        for dims, value in zip(dims_list, sums):
            _, distances = backend.knn(query, 4, dims, exclude=17)
            assert value == float(distances.sum())  # bit-identical

    def test_distance_components_none_for_custom_metric(self, rng):
        class WeirdMetric:
            name = "weird"

            def pairwise(self, X, q, dims):
                dims = np.asarray(dims, dtype=np.intp)
                return np.abs(X[:, dims] - q[dims]).sum(axis=1) * 2.0

            def point(self, a, b, dims):
                dims = np.asarray(dims, dtype=np.intp)
                return float(np.abs(a[dims] - b[dims]).sum() * 2.0)

            def mindist(self, q, lower, upper, dims):
                return 0.0

        backend = LinearScanIndex(rng.normal(size=(30, 3)), metric=WeirdMetric())
        assert backend.distance_components(np.zeros(3)) is None
        # The sums kernel still answers correctly via pairwise fallback.
        sums = backend.knn_distance_sums(np.zeros(3), 2, [(0, 1)])
        _, distances = backend.knn(np.zeros(3), 2, (0, 1))
        assert sums[0] == float(distances.sum())


# ----------------------------------------------------------------------
# Search layer: the stepped coroutine replays run() exactly
# ----------------------------------------------------------------------
class TestRunStepped:
    @pytest.mark.parametrize("reselect", ["level", "evaluation"])
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_equivalent_to_run(self, miner, dataset, reselect, adaptive):
        from repro.core.search import DynamicSubspaceSearch

        for row in [0, 1, 50]:
            reference = DynamicSubspaceSearch(
                ODEvaluator(miner.backend_, dataset.X[row], 4, exclude=row),
                miner.threshold_,
                miner.priors_,
                reselect,
                adaptive=adaptive,
            ).run()

            evaluator = ODEvaluator(miner.backend_, dataset.X[row], 4, exclude=row)
            search = DynamicSubspaceSearch(
                evaluator, miner.threshold_, miner.priors_, reselect, adaptive=adaptive
            )
            generator = search.run_stepped()
            pending = next(generator)
            while True:
                values = {mask: evaluator.od(mask) for mask in pending}
                try:
                    pending = generator.send(values)
                except StopIteration as stop:
                    outcome = stop.value
                    break

            assert sorted(outcome.outlying_masks) == sorted(reference.outlying_masks)
            assert outcome.stats.od_evaluations == reference.stats.od_evaluations
            assert outcome.stats.level_schedule == reference.stats.level_schedule
            assert outcome.stats.upward_pruned == reference.stats.upward_pruned
            assert outcome.stats.downward_pruned == reference.stats.downward_pruned


# ----------------------------------------------------------------------
# Miner layer: query_batch losslessness (the headline contract)
# ----------------------------------------------------------------------
class TestQueryBatch:
    def test_rows_identical_to_sequential(self, miner):
        rows = list(range(64))
        sequential = [miner.query_row(row) for row in rows]
        batched = miner.query_batch(rows)
        assert_results_identical(sequential, batched.results)

    def test_external_points_identical_to_sequential(self, miner, dataset, rng):
        points = dataset.X[rng.choice(dataset.X.shape[0], size=20)] + rng.normal(
            scale=0.1, size=(20, dataset.X.shape[1])
        )
        sequential = [miner.query_point(point) for point in points]
        batched = miner.query_batch(points)
        assert_results_identical(sequential, batched.results)

    def test_mixed_targets_with_duplicates(self, miner, dataset):
        external = dataset.X[5] + 0.25
        targets = [0, 1, external, 0, external, 2, 1]
        sequential = [miner.query(t) for t in targets]
        batched = miner.query_batch(targets)
        assert_results_identical(sequential, batched.results)

    def test_strictly_fewer_knn_evaluations(self, dataset):
        """Acceptance: ≥64 targets, identical answers, strictly fewer
        real kNN evaluations than the sequential loop, cache hits > 0."""
        fresh = HOSMiner(k=4, sample_size=6, threshold_quantile=0.95).fit(dataset.X)
        # Traffic with repetition: every row once, the first eight twice.
        targets = list(range(56)) + list(range(8)) * 2
        assert len(targets) >= 64

        before = fresh.backend_.stats.knn_queries
        sequential = [fresh.query_row(row) for row in targets]
        sequential_knn = fresh.backend_.stats.knn_queries - before

        before = fresh.backend_.stats.knn_queries
        batched = fresh.query_batch(targets)
        batched_knn = fresh.backend_.stats.knn_queries - before

        assert_results_identical(sequential, batched.results)
        assert batched.shared_cache_hits > 0
        assert batched_knn < sequential_knn
        assert batched.knn_evaluations == batched_knn

    def test_second_batch_rides_the_cache(self, dataset):
        fresh = HOSMiner(k=4, sample_size=6, threshold_quantile=0.95).fit(dataset.X)
        targets = list(range(16))
        first = fresh.query_batch(targets)
        before = fresh.backend_.stats.knn_queries
        second = fresh.query_batch(targets)
        assert fresh.backend_.stats.knn_queries == before  # pure replay
        assert_results_identical(first.results, second.results)

    def test_workers_mode_identical(self, miner, dataset, rng):
        points = dataset.X[rng.choice(dataset.X.shape[0], size=12)] + rng.normal(
            scale=0.1, size=(12, dataset.X.shape[1])
        )
        sequential = [miner.query_point(point) for point in points]
        batched = miner.query_batch(points, workers=2)
        assert batched.workers == 2
        assert_results_identical(sequential, batched.results)

    def test_empty_and_single_batches(self, miner, dataset):
        empty = miner.query_batch([])
        assert len(empty) == 0 and empty.results == []
        assert empty.n_outliers == 0
        single = miner.query_batch([3])
        assert_results_identical([miner.query_row(3)], single.results)
        vector = miner.query_batch(np.asarray(dataset.X[3]))
        assert len(vector) == 1

    def test_row_array_targets(self, miner):
        batched = miner.query_batch(np.array([0, 4, 9]))
        sequential = [miner.query_row(row) for row in (0, 4, 9)]
        assert_results_identical(sequential, batched.results)

    @pytest.mark.parametrize("index", ["vafile", "rstar"])
    def test_other_backends(self, dataset, index):
        fresh = HOSMiner(
            k=4, sample_size=4, threshold_quantile=0.95, index=index
        ).fit(dataset.X)
        rows = list(range(10))
        sequential = [fresh.query_row(row) for row in rows]
        batched = fresh.query_batch(rows)
        assert_results_identical(sequential, batched.results)

    @pytest.mark.parametrize("reselect,adaptive", [("evaluation", False), ("level", True)])
    def test_search_variants(self, dataset, reselect, adaptive):
        fresh = HOSMiner(
            k=4,
            sample_size=4,
            threshold_quantile=0.95,
            reselect=reselect,
            adaptive=adaptive,
        ).fit(dataset.X)
        rows = list(range(12))
        sequential = [fresh.query_row(row) for row in rows]
        batched = fresh.query_batch(rows)
        assert_results_identical(sequential, batched.results)

    def test_validation_up_front(self, miner):
        with pytest.raises(DataShapeError, match=r"\(m, 6\)"):
            miner.query_batch(np.zeros((3, 4)))
        with pytest.raises(DataShapeError, match="shape"):
            miner.query_batch([np.zeros(4)])
        with pytest.raises(ConfigurationError, match="out of range"):
            miner.query_batch([10_000])
        with pytest.raises(ConfigurationError, match="workers"):
            miner.query_batch([0], workers=0)

    def test_batch_result_reporting(self, miner):
        batched = miner.query_batch(list(range(8)))
        assert isinstance(batched, BatchResult)
        assert len(list(batched)) == 8
        assert batched[0].threshold == miner.threshold_
        assert batched.wall_time_s > 0
        assert batched.queries_per_second > 0
        text = batched.summary()
        assert "8 queries" in text and "shared-cache hits" in text
        assert batched.stats.od_evaluations == sum(
            result.stats.od_evaluations for result in batched.results
        )


# ----------------------------------------------------------------------
# Shared OD cache semantics
# ----------------------------------------------------------------------
class TestSharedODCache:
    def test_fit_populates_cache(self, miner):
        assert len(miner.od_cache_) > 0  # calibration + learning entries

    def test_extend_invalidates(self, dataset):
        fresh = HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(dataset.X)
        fresh.query_batch(list(range(8)))
        assert len(fresh.od_cache_) > 0
        fresh.extend(dataset.X[:2] + 5.0)
        assert len(fresh.od_cache_) == 0
        # Post-extend batches are still identical to sequential.
        sequential = [fresh.query_row(row) for row in range(6)]
        batched = fresh.query_batch(list(range(6)))
        assert_results_identical(sequential, batched.results)

    def test_point_key_distinguishes_row_and_external(self):
        query = np.array([1.0, 2.0])
        assert SharedODCache.point_key(query, 3) == ("row", 3)
        assert SharedODCache.point_key(query, None)[0] == "ext"
        assert SharedODCache.point_key(query, None) == SharedODCache.point_key(
            query.copy(), None
        )

    def test_evaluator_shared_hits(self, rng):
        X = rng.normal(size=(50, 4))
        backend = LinearScanIndex(X)
        cache = SharedODCache()
        first = ODEvaluator(backend, X[0], 3, exclude=0, shared_cache=cache)
        value = first.od(0b0011)
        second = ODEvaluator(backend, X[0], 3, exclude=0, shared_cache=cache)
        assert second.od(0b0011) == value
        assert second.shared_hits == 1 and second.evaluations == 0


# ----------------------------------------------------------------------
# ODEvaluator validation (satellite)
# ----------------------------------------------------------------------
class TestEvaluatorValidation:
    def test_wrong_length_names_both_shapes(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 5)))
        with pytest.raises(DataShapeError, match=r"expected a query of shape \(5,\), got shape \(3,\)"):
            ODEvaluator(backend, np.zeros(3), 2)

    def test_matrix_query_rejected(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 5)))
        with pytest.raises(DataShapeError, match=r"\(2, 5\)"):
            ODEvaluator(backend, np.zeros((2, 5)), 2)

    def test_unconvertible_query_rejected(self, rng):
        backend = LinearScanIndex(rng.normal(size=(30, 2)))
        with pytest.raises(DataShapeError, match="converted"):
            ODEvaluator(backend, ["not", "numbers"], 2)

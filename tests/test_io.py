"""Persistence: miner save/load round-trips and result serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.exceptions import HOSMinerError
from repro.core.io import load_miner, result_from_dict, result_to_dict, save_miner
from repro.core.miner import HOSMiner
from repro.data.synthetic import make_planted_outliers


@pytest.fixture(scope="module")
def saved_miner(tmp_path_factory):
    dataset = make_planted_outliers(
        n=200, d=5, n_outliers=2, subspace_dims=2, displacement=9.0, seed=23
    )
    miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.98).fit(
        dataset.X, feature_names=[f"f{i}" for i in range(5)]
    )
    path = str(tmp_path_factory.mktemp("io") / "miner.npz")
    save_miner(miner, path)
    return miner, path, dataset


class TestMinerRoundTrip:
    def test_threshold_and_priors_preserved(self, saved_miner):
        miner, path, _ = saved_miner
        loaded = load_miner(path)
        assert loaded.threshold_ == pytest.approx(miner.threshold_)
        np.testing.assert_allclose(loaded.priors_.p_up, miner.priors_.p_up)
        np.testing.assert_allclose(loaded.priors_.p_down, miner.priors_.p_down)

    def test_queries_identical_after_reload(self, saved_miner):
        miner, path, dataset = saved_miner
        loaded = load_miner(path)
        for row in [0, 1, 50]:
            original = miner.query_row(row)
            restored = loaded.query_row(row)
            assert {s.mask for s in original.minimal} == {
                s.mask for s in restored.minimal
            }
            assert original.total_outlying == restored.total_outlying

    def test_feature_names_preserved(self, saved_miner):
        _, path, __ = saved_miner
        loaded = load_miner(path)
        assert "f3" in loaded.query_row(0).describe_subspace(
            loaded.query_row(0).minimal[0]
        ) or loaded._feature_names == [f"f{i}" for i in range(5)]

    def test_config_round_trip(self, saved_miner):
        miner, path, _ = saved_miner
        loaded = load_miner(path)
        assert loaded.config.k == miner.config.k
        assert loaded.config.sample_size == miner.config.sample_size

    def test_unfitted_miner_rejected(self, tmp_path):
        with pytest.raises(HOSMinerError):
            save_miner(HOSMiner(k=3), str(tmp_path / "x.npz"))

    def test_version_checked(self, saved_miner, tmp_path):
        _, path, __ = saved_miner
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"]).decode())
            header["format_version"] = 99
            corrupted = str(tmp_path / "bad.npz")
            np.savez_compressed(
                corrupted,
                header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
                X=archive["X"],
                p_up=archive["p_up"],
                p_down=archive["p_down"],
            )
        with pytest.raises(HOSMinerError):
            load_miner(corrupted)


class TestResultRoundTrip:
    def test_json_round_trip(self, saved_miner):
        miner, _, __ = saved_miner
        result = miner.query_row(0)
        payload = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(payload)
        assert [s.mask for s in restored.minimal] == [s.mask for s in result.minimal]
        assert restored.threshold == pytest.approx(result.threshold)
        assert restored.total_outlying == result.total_outlying
        assert restored.stats.od_evaluations == result.stats.od_evaluations
        for subspace in result.minimal:
            assert restored.od_values[subspace] == pytest.approx(
                result.od_values[subspace]
            )

    def test_explain_works_after_round_trip(self, saved_miner):
        miner, _, __ = saved_miner
        restored = result_from_dict(result_to_dict(miner.query_row(0)))
        assert "outlier" in restored.explain()

    def test_version_checked(self):
        with pytest.raises(HOSMinerError):
            result_from_dict({"format_version": 0})

"""Chaos suite: the shard engine under injected crashes, hangs, stalls.

The fault-tolerance contract extends the identity contract of
``test_shard.py``: under any injected single-worker crash or hang,
``query_batch`` answers stay *element-wise identical* to the sequential
kernels — across every kernel × precision tier — and the supervision
counters (``worker_respawns`` / ``timeouts`` / ``retries`` /
``degraded_rounds``) faithfully reflect what happened. On top sit the
crash-timing edge cases the identity sweep can't reach: death between
the coordinator's ``send()`` and ``recv()``, death during fit-time
segment attach, a ``close()`` racing an in-flight round, and bounded
teardown against a worker that ignores the shutdown sentinel.

Every test pins its own fault spec (via the ``faults=`` pool argument
or :func:`repro.testing.faults.fault_env`), so the suite is stable even
under the CI chaos job's ambient ``HOSMINER_FAULTS``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import HOSMinerConfig
from repro.core.exceptions import ConfigurationError
from repro.core.miner import HOSMiner
from repro.core.shard import ShardPool
from repro.core.stream import StreamEngine
from repro.data.synthetic import make_drift_stream, make_planted_outliers
from repro.testing.faults import (
    CRASH_EXIT_CODE,
    FaultClause,
    FaultPlan,
    fault_env,
    parse_faults,
)


@pytest.fixture(scope="module")
def dataset():
    return make_planted_outliers(
        n=240, d=5, n_outliers=3, subspace_dims=2, displacement=9.0, seed=31
    )


@pytest.fixture()
def scatter_args(dataset, rng):
    queries = np.ascontiguousarray(dataset.X[:4])
    dims_list = [
        np.array([0, 1], dtype=np.intp),
        np.array([2, 3, 4], dtype=np.intp),
        np.array([0, 2, 4], dtype=np.intp),
    ]
    return queries, dims_list, 4, [0, 1, 2, 3]


def reference_prefixes(dataset, scatter_args, kernel="exact", precision="float64"):
    queries, dims_list, k, excludes = scatter_args
    with ShardPool(dataset.X, 1, faults="") as pool:
        return pool.scatter_prefixes(
            queries, dims_list, k, excludes, kernel, precision
        )


def assert_results_identical(sequential, batched):
    """Element-wise identity, down to exact OD floats (as in test_shard)."""
    assert len(sequential) == len(batched)
    for a, b in zip(sequential, batched):
        assert a.minimal == b.minimal
        assert a.total_outlying == b.total_outlying
        assert a.od_values == b.od_values  # exact float equality


# ----------------------------------------------------------------------
# The spec grammar
# ----------------------------------------------------------------------
class TestFaultGrammar:
    def test_parses_the_documented_clauses(self):
        clauses = parse_faults(
            "crash:shard=1:round=3; hang:shard=0:round=2, slow:ms=500"
        )
        assert [c.kind for c in clauses] == ["crash", "hang", "slow"]
        assert clauses[0] == FaultClause("crash", shard=1, round=3)
        assert clauses[1] == FaultClause("hang", shard=0, round=2)
        assert clauses[2].ms == 500.0 and clauses[2].shard is None

    def test_empty_specs_parse_to_nothing(self):
        assert parse_faults(None) == ()
        assert parse_faults("") == ()
        assert parse_faults("  ;  ,  ") == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:shard=0",          # unknown kind
            "crash:shard=x",            # non-integer shard
            "crash:round=0",            # rounds are 1-based
            "crash:at=gather",          # unknown consult point
            "crash:at=attach:round=2",  # attach fires before any round
            "crash:ms=50",              # ms only applies to slow
            "slow:ms=-1",               # negative sleep
            "crash:badfield=1",         # unknown field
            "crash:shard",              # not key=value
        ],
    )
    def test_bad_clauses_fail_loudly(self, bad):
        with pytest.raises(ConfigurationError, match="bad fault clause"):
            parse_faults(bad)

    def test_gen_selects_incarnations(self):
        (clause,) = parse_faults("crash:shard=0:round=1")
        assert clause.matches(shard=0, gen=0, point="recv", round=1)
        # Default gen=0: the respawned incarnation serves clean.
        assert not clause.matches(shard=0, gen=1, point="recv", round=1)
        (persistent,) = parse_faults("crash:shard=0:gen=any")
        assert persistent.matches(shard=0, gen=7, point="recv", round=9)

    def test_plan_filters_to_its_shard(self):
        plan = FaultPlan.from_spec("crash:shard=1:round=3; slow:ms=5", 0, 0)
        assert [c.kind for c in plan.clauses] == ["slow"]
        # An unmatched fire is a no-op (and a slow one just sleeps).
        plan.fire("recv", 1)

    def test_pool_validates_spec_eagerly(self, dataset):
        with pytest.raises(ConfigurationError, match="bad fault clause"):
            ShardPool(dataset.X, 2, faults="explode:shard=0")

    def test_fault_env_sets_and_restores(self, monkeypatch):
        monkeypatch.setenv("HOSMINER_FAULTS", "slow:ms=1")
        import os

        with fault_env("crash:shard=0"):
            assert os.environ["HOSMINER_FAULTS"] == "crash:shard=0"
        assert os.environ["HOSMINER_FAULTS"] == "slow:ms=1"
        with fault_env(None):
            assert "HOSMINER_FAULTS" not in os.environ
        assert os.environ["HOSMINER_FAULTS"] == "slow:ms=1"


# ----------------------------------------------------------------------
# The headline contract: identity under faults, counters truthful
# ----------------------------------------------------------------------
class TestIdentityUnderFaults:
    @pytest.mark.parametrize(
        "kernel,precision",
        [("exact", "float64"), ("gemm", "float64"), ("gemm", "float32")],
    )
    def test_query_batch_identical_under_crash(self, dataset, kernel, precision):
        """A worker crash mid-batch is invisible in the answers, across
        every kernel × precision tier; the respawn is in the counters."""
        make = lambda: HOSMiner(  # noqa: E731
            k=4,
            sample_size=4,
            threshold_quantile=0.95,
            kernel=kernel,
            precision=precision,
            timeout_s=15.0,
            backoff_s=0.01,
        ).fit(dataset.X)
        targets = list(range(8))
        with fault_env(None):
            sequential = make().query_batch(targets, workers=1)
        with fault_env("crash:shard=1:round=2"):
            with make() as miner:
                batched = miner.query_batch(targets, workers=3, shard="rows")
                assert batched.stats.worker_respawns == 1
                assert batched.stats.retries >= 1
                assert batched.stats.degraded_rounds == 0
                assert_results_identical(sequential.results, batched.results)
                # The respawned worker keeps serving: a second batch on
                # the same pool is identical too, with no new respawns.
                miner.od_cache_.invalidate()
                again = miner.query_batch(targets, workers=3, shard="rows")
                assert again.stats.worker_respawns == 0
                assert_results_identical(sequential.results, again.results)

    def test_query_batch_identical_under_hang(self, dataset):
        """A hung worker trips the reply deadline, is killed and
        respawned; answers unchanged, ``timeouts`` reflects it."""
        targets = list(range(8))
        with fault_env(None):
            sequential = (
                HOSMiner(k=4, sample_size=4, threshold_quantile=0.95)
                .fit(dataset.X)
                .query_batch(targets, workers=1)
            )
        with fault_env("hang:shard=0:round=2"):
            with HOSMiner(
                k=4,
                sample_size=4,
                threshold_quantile=0.95,
                timeout_s=0.5,
                backoff_s=0.01,
            ).fit(dataset.X) as miner:
                batched = miner.query_batch(targets, workers=3, shard="rows")
        assert batched.stats.timeouts >= 1
        assert batched.stats.worker_respawns >= 1
        assert_results_identical(sequential.results, batched.results)

    def test_slow_worker_is_not_a_failure(self, dataset, scatter_args):
        """A straggler under the deadline just makes the round slower."""
        queries, dims_list, k, excludes = scatter_args
        ref = reference_prefixes(dataset, scatter_args)
        with ShardPool(
            dataset.X, 3, timeout_s=10.0, faults="slow:shard=1:ms=50"
        ) as pool:
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.respawns == 0 and pool.timeouts == 0
        np.testing.assert_array_equal(got, ref)

    def test_fault_counters_surface_in_summary_and_dict(self, dataset):
        with fault_env("crash:shard=0:round=1"):
            with HOSMiner(
                k=4,
                sample_size=4,
                threshold_quantile=0.95,
                timeout_s=15.0,
                backoff_s=0.01,
            ).fit(dataset.X) as miner:
                batched = miner.query_batch(list(range(4)), workers=2, shard="rows")
        assert batched.stats.worker_respawns == 1
        assert "fault recovery" in batched.summary()
        as_dict = batched.stats.as_dict()
        assert as_dict["worker_respawns"] == 1
        assert as_dict["retries"] == batched.stats.retries
        assert as_dict["timeouts"] == batched.stats.timeouts
        assert as_dict["degraded_rounds"] == 0

    def test_healthy_batches_report_zero_fault_counters(self, dataset):
        with fault_env(None):
            with HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(
                dataset.X
            ) as miner:
                batched = miner.query_batch(list(range(4)), workers=2, shard="rows")
                inproc = miner.query_batch(list(range(2)), workers=1)
        for stats in (batched.stats, inproc.stats):
            assert stats.worker_respawns == 0
            assert stats.retries == 0
            assert stats.timeouts == 0
            assert stats.degraded_rounds == 0
        assert "fault recovery" not in batched.summary()


# ----------------------------------------------------------------------
# Graceful degradation: irrecoverable shards served in-process
# ----------------------------------------------------------------------
class TestDegradation:
    def test_irrecoverable_shard_degrades_with_identical_answers(
        self, dataset, scatter_args
    ):
        """``gen=any`` makes every respawn crash too: the retry budget
        drains, the shard degrades, and the coordinator serves its slice
        through the same kernels — element-wise identical, permanently."""
        queries, dims_list, k, excludes = scatter_args
        ref = reference_prefixes(dataset, scatter_args)
        with ShardPool(
            dataset.X,
            3,
            timeout_s=5.0,
            max_retries=1,
            backoff_s=0.01,
            faults="crash:shard=2:gen=any",
        ) as pool:
            first = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.degraded_shards == [2]
            assert pool.degraded_rounds == 1
            assert pool.retries == 1
            # The pool stays open and keeps serving; later rounds hit
            # the in-process fallback directly (no more retries).
            second = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "gemm", "float64"
            )
            assert pool.degraded_rounds == 2
            assert pool.retries == 1
        np.testing.assert_array_equal(first, ref)
        np.testing.assert_array_equal(
            second, reference_prefixes(dataset, scatter_args, "gemm", "float64")
        )

    def test_degraded_counters_flow_through_query_batch(self, dataset):
        targets = list(range(6))
        with fault_env(None):
            sequential = (
                HOSMiner(k=4, sample_size=4, threshold_quantile=0.95)
                .fit(dataset.X)
                .query_batch(targets, workers=1)
            )
        with fault_env("crash:shard=0:gen=any"):
            with HOSMiner(
                k=4,
                sample_size=4,
                threshold_quantile=0.95,
                timeout_s=5.0,
                max_retries=1,
                backoff_s=0.01,
            ).fit(dataset.X) as miner:
                batched = miner.query_batch(targets, workers=2, shard="rows")
        assert batched.stats.degraded_rounds >= 1
        assert "degraded shard-round" in batched.summary()
        assert_results_identical(sequential.results, batched.results)

    def test_max_retries_zero_degrades_immediately(self, dataset, scatter_args):
        queries, dims_list, k, excludes = scatter_args
        with ShardPool(
            dataset.X,
            3,
            timeout_s=5.0,
            max_retries=0,
            faults="crash:shard=1:round=1",
        ) as pool:
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.retries == 0 and pool.respawns == 0
            assert pool.degraded_shards == [1]
        np.testing.assert_array_equal(got, reference_prefixes(dataset, scatter_args))


# ----------------------------------------------------------------------
# Crash-timing edge cases the identity sweep can't reach
# ----------------------------------------------------------------------
class TestCrashTiming:
    def test_death_between_send_and_recv(self, dataset, scatter_args):
        """``at=recv`` (the default) kills the worker after it received
        the request — from the coordinator's side, exactly a death
        between its ``send()`` and ``recv()``: the send succeeded, the
        reply never comes, ``poll()`` wakes on EOF."""
        queries, dims_list, k, excludes = scatter_args
        ref = reference_prefixes(dataset, scatter_args)
        with ShardPool(
            dataset.X,
            3,
            timeout_s=15.0,
            backoff_s=0.01,
            faults="crash:shard=1:round=1:at=recv",
        ) as pool:
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.respawns == 1
            assert pool.timeouts == 0  # EOF wake-up, not a deadline expiry
        np.testing.assert_array_equal(got, ref)

    def test_death_after_compute_before_reply(self, dataset, scatter_args):
        """``at=send`` kills the worker after computing, before the
        reply hits the pipe — the replayed round recomputes and the
        caller still can't tell."""
        queries, dims_list, k, excludes = scatter_args
        ref = reference_prefixes(dataset, scatter_args)
        with ShardPool(
            dataset.X,
            3,
            timeout_s=15.0,
            backoff_s=0.01,
            faults="crash:shard=0:round=1:at=send",
        ) as pool:
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.respawns == 1
        np.testing.assert_array_equal(got, ref)

    def test_death_during_segment_attach(self, dataset, scatter_args):
        """A worker that dies attaching its segment at spawn (fit time)
        is caught by the first round's EOF and respawned — the respawn
        (gen=1) attaches cleanly and the round replays."""
        queries, dims_list, k, excludes = scatter_args
        ref = reference_prefixes(dataset, scatter_args)
        with ShardPool(
            dataset.X,
            3,
            timeout_s=15.0,
            backoff_s=0.01,
            faults="crash:shard=0:at=attach",
        ) as pool:
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.respawns == 1
        np.testing.assert_array_equal(got, ref)

    def test_injected_crash_exitcode_is_visible(self, dataset, scatter_args):
        """The supervisor sees the distinctive injected exitcode — the
        crash really is a process death, not a caught exception."""
        queries, dims_list, k, excludes = scatter_args
        with ShardPool(
            dataset.X,
            3,
            timeout_s=15.0,
            backoff_s=0.01,
            faults="crash:shard=1:round=1",
        ) as pool:
            doomed = pool._procs[1]
            pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert doomed.exitcode == CRASH_EXIT_CODE
            assert pool._procs[1] is not doomed

    def test_close_racing_inflight_round(self, dataset, scatter_args):
        """``close()`` while a slow round is in flight: the round either
        completes or fails loudly, close() stays bounded, and no
        shared-memory segment leaks. Never a hang, never a respawn onto
        an unlinked segment."""
        queries, dims_list, k, excludes = scatter_args
        pool = ShardPool(
            dataset.X,
            3,
            timeout_s=5.0,
            backoff_s=0.01,
            faults="slow:ms=300",
        )
        names = pool.segment_names
        outcome: dict = {}

        def scatter():
            try:
                outcome["result"] = pool.scatter_prefixes(
                    queries, dims_list, k, excludes, "exact", "float64"
                )
            except Exception as exc:  # racing close() may surface here
                outcome["error"] = exc

        thread = threading.Thread(target=scatter)
        thread.start()
        time.sleep(0.05)  # let the scatter reach the slow workers
        start = time.perf_counter()
        pool.close()
        assert time.perf_counter() - start < 15.0
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "scatter wedged against close()"
        assert pool.closed
        if "result" in outcome:
            np.testing.assert_array_equal(
                outcome["result"], reference_prefixes(dataset, scatter_args)
            )
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_bounded_against_hung_worker(self, dataset, scatter_args):
        """A worker wedged in a 600 s hang cannot stall teardown: the
        sentinel grace expires, ``terminate()``/``kill()`` escalate, and
        ``close()`` returns in bounded time with segments unlinked."""
        queries, dims_list, k, excludes = scatter_args
        pool = ShardPool(
            dataset.X,
            3,
            timeout_s=None,  # no deadline: the hang would block forever
            faults="hang:shard=1:round=1",
        )
        names = pool.segment_names
        # Park shard 1 in the hang without blocking ourselves on it.
        pool._conns[1].send(
            (queries, dims_list, k, [None] * len(excludes), "exact", "float64")
        )
        time.sleep(0.2)  # let the worker enter the sleep
        start = time.perf_counter()
        pool.close()
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"close() took {elapsed:.1f}s against a hung worker"
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Supervision surface: ping, error aggregation, knobs
# ----------------------------------------------------------------------
class TestSupervisionSurface:
    def test_ping_reports_health_and_marks_dead(self, dataset, scatter_args):
        queries, dims_list, k, excludes = scatter_args
        with ShardPool(dataset.X, 3, timeout_s=5.0, backoff_s=0.01, faults="") as pool:
            assert pool.ping() == [True, True, True]
            # Kill one worker out-of-band: ping detects it and marks the
            # shard dead; the next scatter respawns it transparently.
            pool._procs[2].kill()
            pool._procs[2].join(timeout=5.0)
            assert pool.ping() == [True, True, False]
            got = pool.scatter_prefixes(
                queries, dims_list, k, excludes, "exact", "float64"
            )
            assert pool.respawns == 1
            assert pool.ping() == [True, True, True]
        np.testing.assert_array_equal(got, reference_prefixes(dataset, scatter_args))

    def test_multi_shard_errors_attach_notes(self, dataset):
        """Every failing shard's exception survives: the first is
        raised, the siblings ride along as PEP 678 ``__notes__``."""
        with ShardPool(dataset.X, 3, faults="") as pool:
            bad_dims = [np.array([dataset.X.shape[1] + 5], dtype=np.intp)]
            with pytest.raises(Exception) as excinfo:
                pool.scatter_prefixes(
                    dataset.X[:1], bad_dims, 3, [None], "exact", "float64"
                )
            notes = getattr(excinfo.value, "__notes__", [])
            sibling_notes = [n for n in notes if "sibling shard" in n]
            assert len(sibling_notes) == 2  # 3 shards failed, 2 as notes
            assert not pool.closed  # the pool survives bad requests

    def test_config_knobs_validate(self):
        assert HOSMinerConfig(timeout_s=None).timeout_s is None
        assert HOSMinerConfig(timeout_s=1.5).timeout_s == 1.5
        with pytest.raises(ConfigurationError, match="timeout_s"):
            HOSMinerConfig(timeout_s=-1.0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            HOSMinerConfig(max_retries=-1)
        with pytest.raises(ConfigurationError, match="backoff_s"):
            HOSMinerConfig(backoff_s=-0.1)

    def test_timeout_env_default(self, monkeypatch):
        monkeypatch.delenv("HOSMINER_TIMEOUT_S", raising=False)
        assert HOSMinerConfig().timeout_s == 30.0
        monkeypatch.setenv("HOSMINER_TIMEOUT_S", "2.5")
        assert HOSMinerConfig().timeout_s == 2.5
        for disabled in ("none", "off", "0", ""):
            monkeypatch.setenv("HOSMINER_TIMEOUT_S", disabled)
            assert HOSMinerConfig().timeout_s is None
        monkeypatch.setenv("HOSMINER_TIMEOUT_S", "soon")
        with pytest.raises(ConfigurationError, match="HOSMINER_TIMEOUT_S"):
            HOSMinerConfig()

    def test_pool_knobs_validate(self, dataset):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            ShardPool(dataset.X, 2, timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            ShardPool(dataset.X, 2, max_retries=-1)
        with pytest.raises(ConfigurationError, match="backoff_s"):
            ShardPool(dataset.X, 2, backoff_s=-0.5)


# ----------------------------------------------------------------------
# Streaming chaos: faults during incremental window updates
# ----------------------------------------------------------------------
class TestStreamChaos:
    """The chaos face of the differential suite in ``test_stream.py``.

    A live row-shard pool absorbs window updates through per-shard
    ``sync`` messages; these tests kill, hang, or permanently degrade
    workers exactly there and require the one thing that matters: after
    recovery, every answer is still element-wise identical to a fresh
    fit on the equivalent window with the same explicit threshold.
    """

    WINDOW = 160

    def drift(self, cycles=3):
        stream = make_drift_stream(
            self.WINDOW // 10 + cycles, 10, 5, drift_per_batch=0.4, seed=41
        )
        return np.vstack(stream[: self.WINDOW // 10]), stream[self.WINDOW // 10 :]

    def streaming_miner(self, warm, threshold, **overrides):
        kwargs = dict(
            k=4,
            sample_size=4,
            threshold=threshold,
            seed=5,
            stream_window=self.WINDOW,
            timeout_s=15.0,
            backoff_s=0.01,
        )
        kwargs.update(overrides)
        return HOSMiner(**kwargs).fit(warm)

    def calibrate(self, warm):
        with fault_env(None):
            return float(
                HOSMiner(k=4, sample_size=4, threshold_quantile=0.9, seed=5)
                .fit(warm)
                .threshold_
            )

    def oracle_answers(self, frame, threshold, targets):
        with fault_env(None):
            miner = HOSMiner(k=4, sample_size=4, threshold=threshold, seed=5)
            return miner.fit(frame).query_batch(targets, workers=1)

    def run_chaos_stream(self, faults, **miner_overrides):
        """Push a drift stream through a live pool under *faults*; check
        every post-recovery answer against fresh-fit oracles."""
        warm, batches = self.drift()
        threshold = self.calibrate(warm)
        targets = list(range(8))
        with fault_env(faults):
            with self.streaming_miner(warm, threshold, **miner_overrides) as miner:
                engine = StreamEngine(miner)
                # Spawn the live pool before any update reaches it.
                miner.query_batch(targets, workers=2, shard="rows")
                pool = miner._shard_pool
                assert pool is not None
                frame = warm
                for rows in batches:
                    engine.push(rows)
                    frame = np.vstack([frame, rows])[-self.WINDOW :]
                    batched = miner.query_batch(targets, workers=2, shard="rows")
                    oracle = self.oracle_answers(frame, threshold, targets)
                    assert_results_identical(oracle.results, batched.results)
        return pool, miner

    def test_crash_during_sync_stays_oracle_identical(self):
        """A worker killed on receipt of a window-update sync is
        respawned onto the updated geometry; answers never notice."""
        pool, miner = self.run_chaos_stream("crash:shard=1:at=sync")
        assert pool.respawns >= 1

    def test_hang_during_sync_stays_oracle_identical(self):
        """A worker that hangs mid-sync trips the reply deadline and is
        killed + respawned; answers never notice."""
        pool, miner = self.run_chaos_stream(
            "hang:shard=1:at=sync", timeout_s=0.5
        )
        assert pool.timeouts >= 1
        assert pool.respawns >= 1

    def test_degraded_shard_follows_window_updates(self):
        """A shard degraded before the stream starts keeps serving
        in-process over every subsequent window update."""
        pool, miner = self.run_chaos_stream("crash:shard=0:gen=any")
        assert 0 in pool.degraded_shards

    def test_update_with_no_live_pool_respawns_cleanly(self):
        """Pushes with no pool (or a closed one) leave nothing stale:
        the next sharded batch spawns a pool over the current window."""
        warm, batches = self.drift()
        threshold = self.calibrate(warm)
        targets = list(range(8))
        with fault_env(None):
            with self.streaming_miner(warm, threshold) as miner:
                engine = StreamEngine(miner)
                frame = warm
                for rows in batches:
                    engine.push(rows)
                    frame = np.vstack([frame, rows])[-self.WINDOW :]
                batched = miner.query_batch(targets, workers=2, shard="rows")
                oracle = self.oracle_answers(frame, threshold, targets)
                assert_results_identical(oracle.results, batched.results)

"""Result refinement: the paper's worked example + antichain properties."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import (
    covers,
    expand_upward,
    is_antichain,
    minimal_masks,
    minimal_subspaces,
)
from repro.core.subspace import Subspace, is_subset

MASK_SETS = st.sets(st.integers(1, (1 << 7) - 1), min_size=0, max_size=40)


class TestPaperExample:
    """Section 3.4: in a 4-d space, the outlying subspaces [1,3], [2,4],
    [1,2,3], [1,2,4], [1,3,4], [2,3,4], [1,2,3,4] filter down to exactly
    [1,3] and [2,4]."""

    def test_filter_keeps_only_the_two_minimal_subspaces(self):
        d = 4
        raw = [
            Subspace.from_dims_1based(dims, d)
            for dims in ([1, 3], [2, 4], [1, 2, 3], [1, 2, 4], [1, 3, 4], [2, 3, 4], [1, 2, 3, 4])
        ]
        kept = minimal_subspaces(raw)
        assert [s.notation() for s in kept] == ["[1, 3]", "[2, 4]"]


class TestMinimalMasks:
    def test_empty_input(self):
        assert minimal_masks([]) == []

    def test_single_mask(self):
        assert minimal_masks([0b101]) == [0b101]

    def test_duplicates_collapse(self):
        assert minimal_masks([0b1, 0b1, 0b1]) == [0b1]

    def test_incomparable_masks_all_kept(self):
        masks = [0b001, 0b010, 0b100]
        assert sorted(minimal_masks(masks)) == masks

    def test_chain_keeps_bottom(self):
        assert minimal_masks([0b111, 0b011, 0b001]) == [0b001]

    def test_deterministic_order(self):
        masks = [0b110, 0b001, 0b010]
        # ascending (dimensionality, value): 0b001, 0b010 kill 0b110? No:
        # 0b110 is a superset of 0b010 -> dropped.
        assert minimal_masks(masks) == [0b001, 0b010]

    def test_minimal_subspaces_empty(self):
        assert minimal_subspaces([]) == []


class TestProperties:
    @settings(max_examples=100)
    @given(MASK_SETS)
    def test_output_is_antichain(self, masks):
        assert is_antichain(minimal_masks(masks))

    @settings(max_examples=100)
    @given(MASK_SETS)
    def test_output_covers_input(self, masks):
        kept = minimal_masks(masks)
        assert covers(kept, masks)

    @settings(max_examples=100)
    @given(MASK_SETS)
    def test_output_is_subset_of_input(self, masks):
        assert set(minimal_masks(masks)) <= set(masks)

    @settings(max_examples=100)
    @given(MASK_SETS)
    def test_idempotent(self, masks):
        once = minimal_masks(masks)
        assert minimal_masks(once) == once

    @settings(max_examples=60)
    @given(MASK_SETS)
    def test_expand_upward_recovers_upward_closure(self, masks):
        """For an upward-closed input, filter + expand is the identity."""
        d = 7
        closure = set()
        for mask in masks:
            closure.update(sup for sup in expand_upward([mask], d))
        kept = minimal_masks(closure)
        assert expand_upward(kept, d) == closure


class TestHelpers:
    def test_is_antichain(self):
        assert is_antichain([0b001, 0b010])
        assert not is_antichain([0b001, 0b011])
        assert is_antichain([])

    def test_covers(self):
        assert covers([0b001], [0b001, 0b011, 0b101])
        assert not covers([0b010], [0b001])
        assert covers([], [])

    def test_expand_upward_counts(self):
        # A singleton in d=4 has 2^3 supersets including itself.
        assert len(expand_upward([0b0001], 4)) == 8

    def test_expand_upward_members_are_supersets(self):
        for sup in expand_upward([0b0011], 4):
            assert is_subset(0b0011, sup)

"""Streaming engine: differential identity against fresh-fit oracles.

The incremental path (``HOSMiner.insert`` / ``expire`` behind
:class:`repro.core.stream.StreamEngine`) exists on one condition: after
*any* interleaving of pushes and queries, every answer is element-wise
identical — ``minimal``, ``total_outlying``, exact ``od_values`` floats
— to a fresh ``fit`` on the equivalent window with the same explicit
``threshold``. This suite is that condition, executed:

* backend parity — the in-place index buffers (linear scan and VA-file)
  against freshly built indexes over the same window, including the
  out-of-grid VA-file insert regression (drifted points beyond the
  fit-time grid must stretch the outer boundary, not clamp);
* delta-cache rules — the kth-bound eviction/retention/re-keying
  algebra of :class:`repro.core.od.SharedODCache`, pinned entry by
  entry;
* the miner-level differential sweep across kernels × precisions ×
  backends × worker counts;
* seeded randomized operation sequences — every failure message carries
  the seed and the exact op list, so a red run replays by hand.

``extend`` keeps its pre-streaming invalidate-everything semantics; the
regression pin for that lives here too, next to the delta path it
contrasts with.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.core.metrics import EuclideanMetric
from repro.core.miner import HOSMiner
from repro.core.od import SharedODCache, kth_bound
from repro.core.stream import StreamEngine
from repro.data.synthetic import make_drift_stream
from repro.index.linear import LinearScanIndex
from repro.index.vafile import VAFile

pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered in matmul"
)

K = 4
D = 5
WINDOW = 120
BATCH = 10


def drift_windows(cycles: int = 4, drift: float = 0.3, seed: int = 170):
    """A warm window plus *cycles* drift batches from the same stream."""
    stream = make_drift_stream(
        WINDOW // BATCH + cycles, BATCH, D, drift_per_batch=drift, seed=seed
    )
    return np.vstack(stream[: WINDOW // BATCH]), stream[WINDOW // BATCH :]


def fitted(warm, threshold=None, **overrides):
    kwargs = dict(k=K, sample_size=4, seed=5)
    if threshold is None:
        kwargs["threshold_quantile"] = 0.9
    else:
        kwargs["threshold"] = threshold
    kwargs.update(overrides)
    return HOSMiner(**kwargs).fit(warm)


def assert_answers_identical(streamed, oracle, context=""):
    streamed, oracle = list(streamed), list(oracle)
    assert len(streamed) == len(oracle), context
    for a, b in zip(streamed, oracle):
        assert a.minimal == b.minimal, context
        assert a.total_outlying == b.total_outlying, context
        assert a.od_values == b.od_values, context  # exact float equality


# ----------------------------------------------------------------------
# StreamEngine window semantics
# ----------------------------------------------------------------------
class TestStreamEngineSemantics:
    def test_requires_a_fitted_miner(self):
        with pytest.raises(NotFittedError):
            StreamEngine(HOSMiner(k=K))

    def test_window_defaults_to_config_stream_window(self):
        warm, _ = drift_windows()
        engine = StreamEngine(fitted(warm, stream_window=WINDOW))
        assert engine.window == WINDOW

    def test_window_below_k_plus_one_rejected(self):
        warm, _ = drift_windows()
        with pytest.raises(ConfigurationError, match=r"k\+1"):
            StreamEngine(fitted(warm), window=K)

    def test_tree_backend_rejected_for_windowed_streaming(self):
        warm, _ = drift_windows()
        with pytest.raises(ConfigurationError, match="expiry"):
            StreamEngine(fitted(warm, index="rstar"), window=WINDOW)

    def test_tree_backend_allowed_unbounded(self):
        """Without a window nothing expires, so trees may stream inserts."""
        warm, batches = drift_windows()
        engine = StreamEngine(fitted(warm, index="rstar"), window=None)
        engine.push(batches[0])
        assert engine.occupancy == WINDOW + BATCH
        assert engine.expired == 0

    def test_push_below_capacity_expires_nothing(self):
        warm, batches = drift_windows()
        engine = StreamEngine(fitted(warm), window=WINDOW + 2 * BATCH)
        assert engine.push(batches[0]) == 0
        assert engine.occupancy == WINDOW + BATCH

    def test_push_at_capacity_expires_batch_size(self):
        warm, batches = drift_windows()
        engine = StreamEngine(fitted(warm), window=WINDOW)
        assert engine.push(batches[0]) == BATCH
        assert engine.occupancy == WINDOW

    def test_push_larger_than_window_keeps_its_tail(self):
        """An oversized push is legal: exactly the last `window` rows stay."""
        warm, _ = drift_windows()
        engine = StreamEngine(fitted(warm), window=WINDOW)
        oversize = np.vstack(drift_windows(seed=9)[1] * 5)[: WINDOW + 7]
        engine.push(oversize)
        assert engine.occupancy == WINDOW
        np.testing.assert_array_equal(
            engine.miner.backend_.data, oversize[-WINDOW:]
        )

    def test_counters_accumulate(self):
        warm, batches = drift_windows()
        engine = StreamEngine(fitted(warm), window=WINDOW)
        for rows in batches[:3]:
            engine.push(rows)
        assert engine.pushes == 3
        assert engine.inserted == 3 * BATCH
        assert engine.expired == 3 * BATCH
        assert f"occupancy={WINDOW}" in repr(engine)

    def test_close_keeps_the_miner_usable(self):
        warm, batches = drift_windows()
        with StreamEngine(fitted(warm), window=WINDOW) as engine:
            engine.push(batches[0])
        assert engine.miner.query(0).od_values  # still serving after close


# ----------------------------------------------------------------------
# Backend parity: in-place buffers vs freshly built indexes
# ----------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("cls", [LinearScanIndex, VAFile])
    @pytest.mark.parametrize("kernel", ["exact", "gemm"])
    def test_insert_expire_matches_fresh_build(self, cls, kernel):
        warm, batches = drift_windows(cycles=5, drift=0.4)
        live = cls(warm)
        frame = warm
        dims_list = [np.array([0, 1], dtype=np.intp), np.arange(D, dtype=np.intp)]
        for rows in batches:
            for row in rows:
                live.insert(row)
            live.expire(rows.shape[0])
            frame = np.vstack([frame, rows])[-WINDOW:]
            np.testing.assert_array_equal(live.data, frame)
            fresh = cls(frame)
            for query in (frame[0], frame[-1], rows[0] + 3.0):
                got = live.knn_distance_prefix(query, K, dims_list, kernel=kernel)
                ref = fresh.knn_distance_prefix(query, K, dims_list, kernel=kernel)
                np.testing.assert_array_equal(got, ref)

    def test_vafile_out_of_grid_insert_regression(self):
        """Inserts beyond the fit-time grid must stretch the outer edges.

        Clamping out-of-range coordinates into the edge cells made the
        cell-gap lower bound exceed the true distance, silently pruning
        true neighbours under drift. Pin the fix: heavy drift, then
        bit-identical kNN against a fresh VA-file *and* the linear scan.
        """
        warm, batches = drift_windows(cycles=8, drift=1.5, seed=23)
        live = VAFile(warm)
        frame = warm
        dims_list = [np.array([0, 2], dtype=np.intp), np.arange(D, dtype=np.intp)]
        for rows in batches:
            for row in rows:
                live.insert(row)
            live.expire(rows.shape[0])
            frame = np.vstack([frame, rows])[-WINDOW:]
        assert np.any(frame.max(axis=0) > warm.max(axis=0))  # really off-grid
        for query in (frame[-1], frame[0], frame[-1] + 2.0):
            got = live.knn_distance_prefix(query, K, dims_list)
            np.testing.assert_array_equal(
                got, VAFile(frame).knn_distance_prefix(query, K, dims_list)
            )
            np.testing.assert_array_equal(
                got, LinearScanIndex(frame).knn_distance_prefix(query, K, dims_list)
            )

    def test_prefix_batch_agrees_with_sums_batch(self):
        """The (q, m, k) prefix batch is the sums batch before summing."""
        warm, _ = drift_windows()
        dims_list = [np.array([0, 1], dtype=np.intp), np.arange(D, dtype=np.intp)]
        for cls in (LinearScanIndex, VAFile):
            index = cls(warm)
            queries = warm[:3]
            prefix = index.knn_distance_prefix_batch(
                queries, K, dims_list, excludes=[0, 1, None], kernel="gemm"
            )
            sums = index.knn_distance_sums_batch(
                queries, K, dims_list, excludes=[0, 1, None], kernel="gemm"
            )
            assert prefix.shape == (3, len(dims_list), K)
            np.testing.assert_array_equal(prefix.sum(axis=2), sums)


# ----------------------------------------------------------------------
# Delta-cache eviction algebra
# ----------------------------------------------------------------------
class TestDeltaCache:
    MASK = (1 << D) - 1  # the full-space subspace

    def data(self):
        rng = np.random.default_rng(3)
        return rng.normal(size=(20, D))

    def test_kth_bound_inflates_by_the_band(self):
        assert kth_bound(2.0, 0.0) == 2.0
        assert kth_bound(2.0, 1e-6) == pytest.approx(2.0 + 3e-6)
        assert kth_bound(float("inf"), 0.0) == float("inf")
        assert kth_bound(float("nan"), 0.0) == float("inf")

    def test_put_records_bound_and_value_fallback(self):
        cache = SharedODCache()
        key = ("row", 0)
        cache.put(key, self.MASK, 7.0, kth=2.0)
        assert cache.kth_of(key, self.MASK) == 2.0
        cache.put(key, self.MASK, 7.0)  # overwrite sans kth keeps the bound
        assert cache.kth_of(key, self.MASK) == 2.0
        other = ("row", 1)
        cache.put(other, self.MASK, 7.0)  # no bound anywhere: value steps in
        assert cache.kth_of(other, self.MASK) == 7.0

    def test_insert_keeps_far_rows_and_ties_evicts_near(self):
        data = self.data()
        cache = SharedODCache()
        cache.put(("row", 0), self.MASK, 5.0, kth=1.0)
        metric = EuclideanMetric()
        direction = np.zeros(D)
        direction[0] = 1.0
        far = data[0] + 50.0 * direction
        tie = data[0] + 1.0 * direction  # distance exactly the bound
        near = data[0] + 0.5 * direction
        grown = np.vstack([data, far, tie])
        assert cache.delta_insert(np.vstack([far, tie]), grown, metric) == (0, 1)
        assert cache.get(("row", 0), self.MASK) == 5.0
        grown = np.vstack([data, near])
        assert cache.delta_insert(near[None, :], grown, metric) == (1, 0)
        assert cache.get(("row", 0), self.MASK) is None

    def test_expire_evicts_ties_rekeys_survivors(self):
        data = self.data()
        metric = EuclideanMetric()
        cache = SharedODCache()
        cache.put(("row", 0), self.MASK, 5.0, kth=1.0)  # the expired row itself
        cache.put(("row", 5), self.MASK, 6.0, kth=1e-9)  # tight bound, survives
        ext = np.ascontiguousarray(data[7] + 30.0)
        cache.put(("ext", ext.tobytes()), self.MASK, 9.0, kth=1e-9)
        expired, shrunk = data[:2], data[2:]
        evicted, retained = cache.delta_expire(expired, 2, shrunk, metric)
        assert (evicted, retained) == (1, 2)
        # survivors re-keyed to window coordinates, bounds carried over
        assert cache.get(("row", 3), self.MASK) == 6.0
        assert cache.kth_of(("row", 3), self.MASK) == 1e-9
        assert cache.get(("ext", ext.tobytes()), self.MASK) == 9.0
        # a removed row tying the bound could have been a neighbour
        # (the bound is compared against pairwise_many's floats, so the
        # tie is manufactured with the same arithmetic)
        cache2 = SharedODCache()
        tie_kth = float(
            metric.pairwise_many(expired, data[2][None, :], np.arange(D)).min()
        )
        cache2.put(("row", 2), self.MASK, 5.0, kth=tie_kth)
        assert cache2.delta_expire(data[:2], 2, shrunk, metric) == (1, 0)

    def test_unresolvable_and_boundless_entries_evict(self):
        data = self.data()
        cache = SharedODCache()
        cache.put(("ext", np.zeros(D + 1).tobytes()), self.MASK, 1.0, kth=1e-9)
        cache.put(("row", 999), self.MASK, 1.0, kth=1e-9)  # beyond the window
        cache.put(("row", 1), self.MASK, 1.0, kth=1e-9)
        del cache._kth[(("row", 1), self.MASK)]  # simulate a legacy boundless entry
        far = (data[0] + 100.0)[None, :]
        assert cache.delta_insert(far, np.vstack([data, far]), metric=EuclideanMetric()) == (3, 0)

    def test_pairwise_only_metric_matches_broadcasted_path(self):
        """The pairwise_many fast path and the per-row fallback agree."""

        class PairwiseOnly:
            name = "pairwise-only"

            def __init__(self):
                self._inner = EuclideanMetric()

            def pairwise(self, X, q, dims):
                return self._inner.pairwise(X, q, dims)

            def point(self, a, b, dims):
                return self._inner.point(a, b, dims)

            def mindist(self, q, lower, upper, dims):
                return self._inner.mindist(q, lower, upper, dims)

        data = self.data()
        rng = np.random.default_rng(11)
        batch = data[:3] + rng.normal(scale=4.0, size=(3, D))
        bounds = rng.uniform(0.5, 6.0, size=(8, 2))
        caches = [SharedODCache(), SharedODCache()]
        for cache in caches:
            for j, row in enumerate(range(4, 12)):
                cache.put(("row", row), self.MASK, 5.0, kth=float(bounds[j, 0]))
                cache.put(("row", row), 3, 2.0, kth=float(bounds[j, 1]))
        grown = np.vstack([data, batch])
        fast = caches[0].delta_insert(batch, grown, EuclideanMetric())
        slow = caches[1].delta_insert(batch, grown, PairwiseOnly())
        assert fast == slow
        assert caches[0]._values == caches[1]._values


# ----------------------------------------------------------------------
# extend() keeps invalidate-everything; insert() is the delta path
# ----------------------------------------------------------------------
class TestInvalidationModes:
    def warm_miner_with_cache(self, **overrides):
        warm, batches = drift_windows()
        miner = fitted(warm, stream_window=WINDOW, **overrides)
        miner.query_batch(list(range(6)))
        assert len(miner.od_cache_) > 0
        return miner, batches

    def test_extend_still_invalidates_everything(self):
        """The pre-streaming contract, pinned: extend drops every entry."""
        miner, batches = self.warm_miner_with_cache()
        miner.extend(batches[0])
        assert len(miner.od_cache_) == 0
        assert miner.od_cache_.delta_retained == 0  # never took the delta path

    def test_insert_takes_the_delta_path_by_default(self):
        miner, batches = self.warm_miner_with_cache()
        assert miner.config.cache_invalidation == "delta"
        far = batches[0] + 200.0  # can't reach any cached neighbourhood
        miner.insert(far)
        assert len(miner.od_cache_) > 0
        assert miner.od_cache_.delta_retained > 0

    def test_cache_invalidation_all_drops_everything_on_insert(self):
        miner, batches = self.warm_miner_with_cache(cache_invalidation="all")
        miner.insert(batches[0] + 200.0)
        assert len(miner.od_cache_) == 0
        assert miner.od_cache_.delta_retained == 0

    def test_delta_retention_never_changes_answers(self):
        """Retained entries replay the same floats a fresh fit computes."""
        warm, batches = drift_windows()
        threshold = float(fitted(warm).threshold_)
        miner = fitted(warm, threshold=threshold, stream_window=WINDOW)
        targets = list(range(6))
        miner.query_batch(targets)  # populate the cache
        engine = StreamEngine(miner)
        engine.push(batches[0] + 200.0)  # far rows: retention, not eviction
        assert miner.od_cache_.delta_retained > 0
        frame = np.vstack([warm, batches[0] + 200.0])[-WINDOW:]
        oracle = fitted(frame, threshold=threshold)
        assert_answers_identical(
            miner.query_batch(targets), oracle.query_batch(targets)
        )


# ----------------------------------------------------------------------
# The differential identity sweep
# ----------------------------------------------------------------------
class TestDifferentialIdentity:
    @pytest.mark.parametrize(
        "kernel,precision",
        [("exact", "float64"), ("gemm", "float64"), ("gemm", "float32")],
    )
    @pytest.mark.parametrize("index", ["linear", "vafile"])
    def test_stream_matches_fresh_fit_across_tiers(self, index, kernel, precision):
        warm, batches = drift_windows(cycles=4, drift=0.4)
        calibration = fitted(warm, index=index)
        threshold = float(calibration.threshold_)
        overrides = dict(
            index=index, kernel=kernel, precision=precision, threshold=threshold
        )
        rng = np.random.default_rng(29)
        probes = warm[rng.choice(WINDOW, 4, replace=False)] + 0.05
        miner = fitted(warm, **overrides)
        frame = warm
        with StreamEngine(miner, window=WINDOW) as engine:
            for cycle, rows in enumerate(batches):
                engine.push(rows)
                frame = np.vstack([frame, rows])[-WINDOW:]
                oracle = fitted(frame, **overrides)
                targets = [0, WINDOW - 1, *probes]
                context = f"{index}/{kernel}/{precision} cycle {cycle}"
                assert_answers_identical(
                    engine.query_batch(targets), oracle.query_batch(targets), context
                )
                np.testing.assert_array_equal(miner.backend_.data, frame)

    def test_stream_matches_fresh_fit_with_workers(self):
        """Live shard-pool propagation serves the same floats."""
        warm, batches = drift_windows(cycles=3, drift=0.4)
        threshold = float(fitted(warm).threshold_)
        miner = fitted(warm, threshold=threshold, stream_window=WINDOW)
        frame = warm
        with StreamEngine(miner) as engine:
            for cycle, rows in enumerate(batches):
                engine.push(rows)
                frame = np.vstack([frame, rows])[-WINDOW:]
                oracle = fitted(frame, threshold=threshold)
                targets = list(range(0, WINDOW, WINDOW // 6))
                got = engine.query_batch(targets, workers=2, shard="rows")
                assert_answers_identical(
                    got, oracle.query_batch(targets), f"workers=2 cycle {cycle}"
                )


# ----------------------------------------------------------------------
# Seeded randomized operation sequences (replayable on failure)
# ----------------------------------------------------------------------
def run_op_sequence(seed: int, index: str, n_ops: int = 10):
    """Random insert/expire/query interleaving, checked against oracles.

    The op list is materialised up front and carried in every assertion
    message together with the seed — a failing run prints the exact
    recipe needed to replay (and shrink) it by hand.
    """
    rng = np.random.default_rng(seed)
    warm, _ = drift_windows(seed=seed)
    threshold = float(fitted(warm, index=index).threshold_)
    ops = []
    occupancy = WINDOW
    for _ in range(n_ops):
        kind = rng.choice(["insert", "expire", "query"], p=[0.45, 0.25, 0.3])
        if kind == "insert":
            count = int(rng.integers(1, 8))
            ops.append(("insert", count, rng.normal(scale=0.4)))
            occupancy += count
        elif kind == "expire":
            count = int(rng.integers(1, min(8, occupancy - K - 1)))
            ops.append(("expire", count))
            occupancy -= count
        else:
            ops.append(("query",))
    recipe = f"seed={seed} index={index} ops={ops!r}"

    miner = fitted(warm, threshold=threshold, index=index)
    frame = warm
    engine = StreamEngine(miner, window=None)  # ops drive expiry explicitly
    for step, op in enumerate(ops):
        if op[0] == "insert":
            _, count, shift = op
            rows = rng.normal(loc=frame.mean(axis=0) + shift, size=(count, D))
            engine.push(rows)
            frame = np.vstack([frame, rows])
        elif op[0] == "expire":
            engine.miner.expire(op[1])
            frame = frame[op[1] :]
        else:
            targets = [0, frame.shape[0] - 1, frame[rng.integers(frame.shape[0])] + 0.1]
            oracle = fitted(frame, threshold=threshold, index=index)
            assert_answers_identical(
                engine.query_batch(targets),
                oracle.query_batch(targets),
                f"divergence at step {step}: {recipe}",
            )
        assert engine.occupancy == frame.shape[0], f"step {step}: {recipe}"
    # final state: one more full check so sequences ending in updates count
    oracle = fitted(frame, threshold=threshold, index=index)
    assert_answers_identical(
        engine.query_batch([0, frame.shape[0] - 1]),
        oracle.query_batch([0, frame.shape[0] - 1]),
        f"final state: {recipe}",
    )


class TestRandomizedOpSequences:
    @pytest.mark.parametrize("index", ["linear", "vafile"])
    @pytest.mark.parametrize("seed", [1701, 1702, 1703])
    def test_random_interleavings_stay_oracle_identical(self, seed, index):
        run_op_sequence(seed, index)

    def test_failure_messages_carry_the_replay_recipe(self, monkeypatch):
        """A divergence report must include seed and op list."""
        import repro.core.stream as stream_mod

        def broken_query_batch(self, targets, workers=None, shard=None):
            result = HOSMiner.query_batch(self.miner, targets, workers=workers, shard=shard)
            for r in result.results:
                r.total_outlying += 1  # corrupt every answer
            return result

        monkeypatch.setattr(stream_mod.StreamEngine, "query_batch", broken_query_batch)
        with pytest.raises(AssertionError, match=r"seed=1701 .*ops=\[") as excinfo:
            run_op_sequence(1701, "linear")
        assert "insert" in str(excinfo.value) or "query" in str(excinfo.value)

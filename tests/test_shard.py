"""Persistent sharded scatter-gather engine: exactness, lifecycle, wire.

The ``shard="rows"`` engine must be *indistinguishable* from the
sequential path in its answers — element-wise identical, including exact
OD floats — under every kernel/precision pair and any shard count. On
top of that contract sit the runtime guarantees: the pool persists
across batches, survives worker exceptions, tears down cleanly (no
leaked shared-memory segments, whether via ``close()``, garbage
collection or interpreter exit), and ships an ``n``-independent number
of bytes per round (masks + query rows + k-prefixes, never data rows).
"""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.core.exceptions import ConfigurationError
from repro.core.miner import HOSMiner
from repro.core.shard import (
    QuerySplitPool,
    ShardPool,
    merge_prefixes,
    shard_bounds,
)
from repro.data.synthetic import make_planted_outliers
from repro.index.topk import topk_prefix


@pytest.fixture(scope="module")
def dataset():
    return make_planted_outliers(
        n=240, d=5, n_outliers=3, subspace_dims=2, displacement=9.0, seed=31
    )


def assert_results_identical(sequential, batched):
    """Element-wise identity, down to exact OD floats."""
    assert len(sequential) == len(batched)
    for a, b in zip(sequential, batched):
        assert a.minimal == b.minimal
        assert a.total_outlying == b.total_outlying
        assert a.threshold == b.threshold
        assert a.od_values == b.od_values  # exact float equality
        assert a.stats.od_evaluations == b.stats.od_evaluations
        assert a.stats.level_schedule == b.stats.level_schedule


def assert_no_segments(names):
    """Every named shared-memory segment must be gone."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Building blocks: bounds and the exact k-way merge
# ----------------------------------------------------------------------
class TestShardBounds:
    def test_covers_every_row_once(self):
        for n, workers in [(10, 3), (7, 7), (100, 4), (5, 1), (3, 8)]:
            bounds = shard_bounds(n, workers)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, hi), (lo2, _) in zip(bounds, bounds[1:]):
                assert hi == lo2
            assert all(hi > lo for lo, hi in bounds)  # never empty

    def test_caps_at_n(self):
        assert len(shard_bounds(2, 8)) == 2
        assert len(shard_bounds(1, 8)) == 1


class TestMergePrefixes:
    def test_equals_global_topk(self, rng):
        k = 4
        # 3 shards with different candidate counts, inf-padded like the
        # workers pad short shards.
        widths = [6, 2, 5]
        parts = []
        pool = []
        for width in widths:
            values = np.sort(rng.normal(size=(3, 2, width)) ** 2, axis=-1)
            pool.append(values)
            padded = np.full((3, 2, k), np.inf)
            padded[..., : min(k, width)] = values[..., :k]
            parts.append(padded)
        merged = merge_prefixes(parts, k)
        everything = np.concatenate(pool, axis=-1)
        expected = topk_prefix(everything.reshape(6, -1), k, "partition").reshape(
            3, 2, k
        )
        np.testing.assert_array_equal(merged, expected)

    def test_single_part_passthrough(self, rng):
        part = np.sort(rng.normal(size=(2, 2, 3)) ** 2, axis=-1)
        np.testing.assert_array_equal(merge_prefixes([part], 3), part)


# ----------------------------------------------------------------------
# The headline contract: sharded answers are element-wise identical
# ----------------------------------------------------------------------
class TestShardedIdentity:
    @pytest.mark.parametrize(
        "kernel,precision",
        [("exact", "float64"), ("gemm", "float64"), ("gemm", "float32")],
    )
    def test_identity_across_shard_counts(self, dataset, kernel, precision, rng):
        """Property sweep: shard counts 1–4 × kernel × precision tier."""
        make = lambda: HOSMiner(  # noqa: E731
            k=4,
            sample_size=4,
            threshold_quantile=0.95,
            kernel=kernel,
            precision=precision,
        ).fit(dataset.X)
        reference = make()
        targets = list(range(10)) + [
            dataset.X[3] + 0.2,
            rng.normal(size=dataset.X.shape[1]),
        ]
        sequential = reference.query_batch(targets, workers=1)
        with make() as sharded:
            for workers in range(2, 5):  # workers=1 IS the sequential arm
                # Drop the previous count's primed ODs, else the next
                # batch is a pure cache replay and never scatters.
                sharded.od_cache_.invalidate()
                batched = sharded.query_batch(targets, workers=workers, shard="rows")
                assert batched.workers == workers
                assert batched.stats.shard_round_trips > 0
                assert batched.stats.bytes_shipped > 0
                assert_results_identical(sequential.results, batched.results)

    @pytest.mark.parametrize("index", ["vafile", "rstar"])
    def test_identity_other_backends(self, dataset, index):
        with HOSMiner(
            k=4, sample_size=4, threshold_quantile=0.95, index=index
        ).fit(dataset.X) as miner:
            rows = list(range(8))
            sequential = [miner.query_row(row) for row in rows]
            batched = miner.query_batch(rows, workers=3, shard="rows")
            assert_results_identical(sequential, batched.results)

    def test_single_query_rides_the_pool(self, dataset):
        """Satellite: a single-query batch is served by the persistent
        shard pool rather than silently dropping to in-process."""
        with HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(
            dataset.X
        ) as miner:
            # An external point: dataset rows have their full-space OD
            # pre-cached by calibration, which can settle the whole
            # lattice without any scatter.
            point = dataset.X[11] * 1.05
            single = miner.query_batch([point], workers=2, shard="rows")
            assert single.workers == 2
            assert single.stats.shard_round_trips >= 1
            assert_results_identical([miner.query_point(point)], single.results)

    def test_pool_persists_across_batches(self, dataset):
        with HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(
            dataset.X
        ) as miner:
            miner.query_batch(list(range(4)), workers=2, shard="rows")
            pool = miner._shard_pool
            assert pool is not None and not pool.closed
            miner.query_batch(list(range(4, 8)), workers=2, shard="rows")
            assert miner._shard_pool is pool  # reused, not respawned
            assert pool.round_trips > 0
            # A different worker count respawns.
            miner.query_batch(list(range(2)), workers=3, shard="rows")
            assert miner._shard_pool is not pool
            assert pool.closed


# ----------------------------------------------------------------------
# Lifecycle: close(), GC, worker crashes, staleness
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_double_close_is_idempotent(self, dataset):
        pool = ShardPool(dataset.X, 2)
        names = pool.segment_names
        pool.close()
        pool.close()  # second close is a no-op, not an error
        assert pool.closed
        assert_no_segments(names)

    def test_use_after_close_raises_loudly(self, dataset):
        pool = ShardPool(dataset.X, 2)
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.scatter_sums(
                dataset.X[:1],
                [np.array([0, 1], dtype=np.intp)],
                3,
                [None],
                "exact",
                "float64",
            )

    def test_pool_survives_worker_exception(self, dataset):
        with ShardPool(dataset.X, 3) as pool:
            with pytest.raises(Exception):
                pool.scatter_sums(
                    dataset.X[:1],
                    [np.array([dataset.X.shape[1] + 5], dtype=np.intp)],
                    3,
                    [None],
                    "exact",
                    "float64",
                )
            # Same pool, same workers: still serving.
            out = pool.scatter_sums(
                dataset.X[:2],
                [np.array([0, 1], dtype=np.intp)],
                3,
                [None, None],
                "exact",
                "float64",
            )
            assert out.shape == (2, 1) and np.all(np.isfinite(out))
            assert not pool.closed

    def test_gc_releases_segments(self, dataset):
        pool = ShardPool(dataset.X, 2)
        names = pool.segment_names
        del pool
        gc.collect()
        assert_no_segments(names)

    def test_miner_close_releases_and_respawns(self, dataset):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(dataset.X)
        first = miner.query_batch(list(range(4)), workers=2, shard="rows")
        names = miner._shard_pool.segment_names
        miner.close()
        miner.close()  # idempotent at the miner level too
        assert_no_segments(names)
        assert miner._shard_pool is None
        # The miner stays fully usable: the next batch spawns fresh.
        second = miner.query_batch(list(range(4)), workers=2, shard="rows")
        assert_results_identical(first.results, second.results)
        miner.close()

    def test_extend_closes_stale_pools(self, dataset):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(dataset.X)
        miner.query_batch(list(range(4)), workers=2, shard="rows")
        pool = miner._shard_pool
        miner.extend(dataset.X[:2] + 5.0)
        assert pool.closed and miner._shard_pool is None
        # Post-extend shard batches see the new rows (fresh shards).
        sequential = [miner.query_row(row) for row in range(4)]
        batched = miner.query_batch(list(range(4)), workers=2, shard="rows")
        assert_results_identical(sequential, batched.results)
        miner.close()

    def test_pickled_miner_drops_pools(self, dataset):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(dataset.X)
        miner.query_batch(list(range(2)), workers=2, shard="rows")
        clone = pickle.loads(pickle.dumps(miner))
        assert clone._shard_pool is None and clone._query_pool is None
        # The original's pool is untouched by pickling.
        assert not miner._shard_pool.closed
        miner.close()

    def test_invalid_workers_and_data(self, dataset):
        with pytest.raises(ConfigurationError, match="workers"):
            ShardPool(dataset.X, 0)
        with pytest.raises(ConfigurationError, match="non-empty"):
            ShardPool(np.empty((0, 3)), 2)


# ----------------------------------------------------------------------
# The wire: what crosses the pipe, and what never does
# ----------------------------------------------------------------------
class TestWire:
    def test_bytes_shipped_independent_of_n(self, rng):
        """The scatter ships masks + query rows + k-prefix replies; data
        rows live in shared memory. 10× the dataset, same bytes."""
        small = rng.normal(size=(120, 4))
        big = np.vstack([small, rng.normal(size=(1080, 4))])
        queries = rng.normal(size=(3, 4))
        dims_list = [np.array([0, 1], dtype=np.intp), np.array([2], dtype=np.intp)]
        shipped = []
        for X in (small, big):
            with ShardPool(X, 3) as pool:
                pool.scatter_sums(
                    queries, dims_list, 4, [None] * 3, "exact", "float64"
                )
                pool.scatter_sums(
                    queries, dims_list, 4, [None] * 3, "gemm", "float64"
                )
                shipped.append(pool.bytes_shipped)
                assert pool.round_trips == 2
        assert shipped[0] == shipped[1]

    def test_stats_surface_in_batch_result(self, dataset):
        with HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(
            dataset.X
        ) as miner:
            batched = miner.query_batch(list(range(6)), workers=2, shard="rows")
            assert batched.stats.shard_round_trips > 0
            assert batched.stats.bytes_shipped > 0
            assert "shard scatter" in batched.summary()
            as_dict = batched.stats.as_dict()
            assert as_dict["shard_round_trips"] == batched.stats.shard_round_trips
            assert as_dict["bytes_shipped"] == batched.stats.bytes_shipped
            # The in-process path reports zeros, not garbage.
            inproc = miner.query_batch(list(range(2)), workers=1)
            assert inproc.stats.shard_round_trips == 0
            assert inproc.stats.bytes_shipped == 0

    def test_scatter_prefixes_match_full_scan(self, rng):
        """Direct kernel check below the engine: merged prefixes equal
        a single-shard (full scan) pool's output for every kernel."""
        X = rng.normal(size=(90, 4))
        queries = rng.normal(size=(2, 4))
        dims_list = [np.array([0, 2], dtype=np.intp), np.array([1, 3], dtype=np.intp)]
        excludes = [5, None]
        with ShardPool(X, 1) as reference, ShardPool(X, 4) as sharded:
            for kernel, precision in [
                ("exact", "float64"),
                ("gemm", "float64"),
                ("gemm", "float32"),
            ]:
                ref = reference.scatter_prefixes(
                    queries, dims_list, 5, excludes, kernel, precision
                )
                got = sharded.scatter_prefixes(
                    queries, dims_list, 5, excludes, kernel, precision
                )
                np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# The query-split fallback: cached executor (satellite)
# ----------------------------------------------------------------------
class TestQuerySplitPool:
    def test_executor_cached_across_calls(self, dataset):
        with HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(
            dataset.X
        ) as miner:
            sequential = [miner.query_row(row) for row in range(6)]
            first = miner.query_batch(list(range(6)), workers=2, shard="queries")
            pool = miner._query_pool
            assert isinstance(pool, QuerySplitPool) and not pool.closed
            second = miner.query_batch(list(range(6)), workers=2, shard="queries")
            assert miner._query_pool is pool  # reused, not respawned
            assert_results_identical(sequential, first.results)
            assert_results_identical(sequential, second.results)

    def test_use_after_close_raises(self, dataset):
        miner = HOSMiner(k=4, sample_size=4, threshold_quantile=0.95).fit(dataset.X)
        pool = QuerySplitPool(miner, 2)
        pool.close()
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.submit(int, "3")
        miner.close()
